"""Helpers shared by the benchmark modules (see conftest.py for docs)."""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Case-count multiplier (1 = laptop-quick defaults).
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))

#: Base number of cases per topology for the quick benchmarks.
BASE_CASES = 120 * SCALE

#: Topologies used by the heavier per-figure benchmarks (a representative
#: sparse/dense pair plus AS209); Table II runs all eight.
QUICK_TOPOLOGIES = ("AS209", "AS1239", "AS3549")


def emit(name: str, text: str) -> None:
    """Print a regenerated table/series and persist it under results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_figure(name: str, svg: str) -> None:
    """Persist a rendered SVG figure under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.svg").write_text(svg)
    print(f"(figure written: benchmarks/results/{name}.svg)")
