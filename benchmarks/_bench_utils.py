"""Helpers shared by the benchmark modules (see conftest.py for docs)."""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict, Optional

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable perf trajectory, checked in and updated per PR.
#: Schema: bench name -> {wall_s, cases, sp_computations, python, git_sha}.
BENCH_JSON = Path(__file__).parent / "BENCH_core.json"

#: Traffic-weighted trajectory (written by ``bench_traffic_weighted.py``,
#: uploaded by CI next to the core file).
BENCH_TRAFFIC_JSON = Path(__file__).parent / "BENCH_traffic.json"

#: Case-count multiplier (1 = laptop-quick defaults).
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))

#: Base number of cases per topology for the quick benchmarks.
BASE_CASES = 120 * SCALE

#: Topologies used by the heavier per-figure benchmarks (a representative
#: sparse/dense pair plus AS209); Table II runs all eight.
QUICK_TOPOLOGIES = ("AS209", "AS1239", "AS3549")


def emit(name: str, text: str) -> None:
    """Print a regenerated table/series and persist it under results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_figure(name: str, svg: str) -> None:
    """Persist a rendered SVG figure under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.svg").write_text(svg)
    print(f"(figure written: benchmarks/results/{name}.svg)")


def _git_sha() -> str:
    """Short commit hash of the benchmarked tree (``-dirty`` suffixed)."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--abbrev=12"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


def load_bench_json(path: Optional[Path] = None) -> Dict[str, dict]:
    """A checked-in perf baseline (default core), or ``{}`` before the
    first record."""
    target = BENCH_JSON if path is None else path
    if target.exists():
        return json.loads(target.read_text())
    return {}


def record_bench(
    name: str,
    wall_s: float,
    cases: int,
    sp_computations: int,
    git_sha: Optional[str] = None,
    config_hash: Optional[str] = None,
    cache_hit_rate: Optional[float] = None,
    span_ms: Optional[Dict[str, float]] = None,
    path: Optional[Path] = None,
    extra: Optional[Dict[str, object]] = None,
    write_file: bool = True,
    **extra_fields: object,
) -> dict:
    """Merge one benchmark measurement into a trajectory JSON.

    Defaults to ``BENCH_core.json``; pass ``path`` for a separate
    trajectory file (the traffic bench keeps ``BENCH_traffic.json``) and
    ``extra`` — or any additional keyword — for bench-specific fields
    merged into the entry.

    ``write_file=False`` records the measurement *only* to the
    ``REPRO_STORE`` run store, leaving the checked-in trajectory file
    untouched — the gate mode of the CI benches, where ``repro query
    regress`` compares the stored measurement against the pinned
    baseline (rewriting the baseline first would make that comparison
    vacuous).

    When ``REPRO_STORE`` names a run-store path, the refreshed entry is
    also mirrored there (best-effort: the benchmark never fails because
    the store is locked or broken), so ``repro query trend/regress`` see
    every recorded point, not just the latest file state.

    Keyed by bench name so each run refreshes its own entry and leaves the
    rest of the trajectory untouched.  ``sp_computations`` is the process
    delta of :func:`repro.routing.dijkstra_run_count` — the denominator
    that makes wall-clock comparable across machines.  ``config_hash``
    ties the row to the run manifest (:func:`repro.obs.config_hash` of
    the bench parameters); ``cache_hit_rate`` and ``span_ms`` come from
    an instrumented harvest run, when one was performed.
    """
    target = BENCH_JSON if path is None else path
    data = load_bench_json(target)
    entry = {
        "wall_s": round(wall_s, 4),
        "cases": cases,
        "sp_computations": sp_computations,
        "python": platform.python_version(),
        "git_sha": git_sha if git_sha is not None else _git_sha(),
    }
    if config_hash is not None:
        entry["config_hash"] = config_hash
    if cache_hit_rate is not None:
        entry["cache_hit_rate"] = round(cache_hit_rate, 4)
    if span_ms is not None:
        entry["span_ms"] = {k: round(v, 3) for k, v in sorted(span_ms.items())}
    if extra:
        entry.update(extra)
    if extra_fields:
        entry.update(extra_fields)
    data[name] = entry
    if write_file:
        target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    _mirror_to_store(target.name, name, entry)
    return data[name]


def _mirror_to_store(bench_file: str, name: str, entry: dict) -> None:
    """Append the refreshed row to the ``REPRO_STORE`` store, if set."""
    store_path = os.environ.get("REPRO_STORE")
    if not store_path:
        return
    try:
        from repro.store import RunStore

        with RunStore(store_path) as store:
            store.record_bench_rows(bench_file, {name: entry})
    except Exception as exc:  # noqa: BLE001 — recording must not fail the bench
        print(f"warning: REPRO_STORE={store_path}: {exc}", file=sys.stderr)
