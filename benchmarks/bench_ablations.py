"""Ablations of RTR's design choices (DESIGN.md §4).

Not in the paper's evaluation, but each corresponds to a design decision
the paper argues for:

* Constraints 1-2 on vs off — §III-C's whole point: without them the
  general-graph walk misses failures and the optimal-recovery rate drops;
* sweep direction — the right-hand rule is direction-symmetric: the mirror
  sweep must preserve all guarantees;
* incremental vs full recomputation — §III-D picks incremental for speed;
  results must be identical.
"""

import random

from _bench_utils import BASE_CASES, emit

from repro.core import RTRConfig
from repro.eval import EvaluationRunner, generate_cases, summarize_recoverable
from repro.eval.report import format_table
from repro.topology import isp_catalog

TOPOLOGY = "AS209"


def _run_variant(case_set, config):
    runner = EvaluationRunner(
        case_set.topo,
        routing=case_set.routing,
        approaches=("RTR",),
        rtr_config=config,
    )
    records = runner.run(case_set)["RTR"]
    recs = [r for r in records if r.case.recoverable]
    return summarize_recoverable(recs)


def _case_set():
    topo = isp_catalog.build(TOPOLOGY, seed=0)
    return generate_cases(topo, random.Random(21), BASE_CASES, 0)


def test_ablation_constraints(run_once):
    case_set = _case_set()

    def experiment():
        on = _run_variant(case_set, RTRConfig(use_constraints=True))
        off = _run_variant(case_set, RTRConfig(use_constraints=False))
        return on, off

    on, off = run_once(experiment)
    rows = [
        {"variant": "constraints ON (paper)", **on.as_dict()},
        {"variant": "constraints OFF", **off.as_dict()},
    ]
    emit("ablation_constraints", format_table(rows))
    # Both variants remain loop-free and optimal-when-delivered (Theorem 2
    # does not depend on the constraints).  The constraints exist to make
    # the walk *enclose* the area on general graphs (Fig. 4) — per-sample
    # coverage can swing either way, so we assert the invariants, not a
    # direction; the Fig. 4 qualitative difference is pinned by
    # tests/core/test_paper_examples.py.
    assert on.recovery_rate == on.optimal_recovery_rate
    assert off.recovery_rate == off.optimal_recovery_rate
    assert on.max_sp_computations == off.max_sp_computations == 1
    assert abs(on.recovery_rate - off.recovery_rate) < 0.15


def test_ablation_sweep_direction(run_once):
    case_set = _case_set()

    def experiment():
        ccw = _run_variant(case_set, RTRConfig(clockwise=False))
        cw = _run_variant(case_set, RTRConfig(clockwise=True))
        return ccw, cw

    ccw, cw = run_once(experiment)
    rows = [
        {"variant": "counterclockwise (paper)", **ccw.as_dict()},
        {"variant": "clockwise (mirror)", **cw.as_dict()},
    ]
    emit("ablation_sweep_direction", format_table(rows))
    # The mirror sweep preserves the guarantees: loop-free, optimal paths,
    # one SP calculation, and a recovery rate in the same band.
    assert cw.recovery_rate == cw.optimal_recovery_rate
    assert cw.max_sp_computations == 1
    assert abs(cw.recovery_rate - ccw.recovery_rate) < 0.1


def test_ablation_exhaustive_collector(run_once):
    """The §III-C trade-off: complete collection vs the sweep.

    The exhaustive DFS collector recovers every recoverable case (its
    information is complete) but pays with much longer walks — which is
    exactly why the paper chose the boundary sweep.
    """
    case_set = _case_set()

    def experiment():
        def run_with(config):
            runner = EvaluationRunner(
                case_set.topo,
                routing=case_set.routing,
                approaches=("RTR",),
                rtr_config=config,
            )
            records = runner.run(case_set)["RTR"]
            recs = [r for r in records if r.case.recoverable]
            summary = summarize_recoverable(recs)
            hops = [r.result.phase1_hops for r in recs]
            return summary, sum(hops) / len(hops), max(hops)

        sweep = run_with(RTRConfig(collector="sweep"))
        exhaustive = run_with(RTRConfig(collector="exhaustive"))
        return sweep, exhaustive

    (s_sum, s_mean, s_max), (e_sum, e_mean, e_max) = run_once(experiment)
    rows = [
        {
            "variant": "sweep (paper)",
            "recovery_pct": round(100 * s_sum.recovery_rate, 1),
            "mean_walk_hops": round(s_mean, 1),
            "max_walk_hops": s_max,
        },
        {
            "variant": "exhaustive DFS",
            "recovery_pct": round(100 * e_sum.recovery_rate, 1),
            "mean_walk_hops": round(e_mean, 1),
            "max_walk_hops": e_max,
        },
    ]
    emit("ablation_exhaustive_collector", format_table(rows))
    # Complete information recovers every recoverable case...
    assert e_sum.recovery_rate == e_sum.optimal_recovery_rate == 1.0
    assert e_sum.recovery_rate >= s_sum.recovery_rate
    # ...at the cost of much longer walks (the paper's stated reason).
    assert e_mean > s_mean


def test_ablation_incremental_vs_full(run_once):
    case_set = _case_set()

    def experiment():
        inc = _run_variant(case_set, RTRConfig(use_incremental=True))
        full = _run_variant(case_set, RTRConfig(use_incremental=False))
        return inc, full

    inc, full = run_once(experiment)
    rows = [
        {"variant": "incremental SPT (paper)", **inc.as_dict()},
        {"variant": "full Dijkstra", **full.as_dict()},
    ]
    emit("ablation_incremental", format_table(rows))
    # §III-D: the engines must be behaviourally identical.
    assert inc.recovery_rate == full.recovery_rate
    assert inc.optimal_recovery_rate == full.optimal_recovery_rate
    assert inc.max_stretch == full.max_stretch
