"""Chaos resilience — hardened RTR under injected recovery-packet loss.

No paper figure corresponds to this benchmark: the paper's evaluation
world is ideal (§II-A).  This sweep measures how the hardened pipeline
degrades as that assumption is relaxed on the Sprintlink-like topology
(AS1239): per-hop recovery-packet loss from 0 to 20 % plus one mid-walk
secondary link failure, with the retry/re-invocation/fallback ladder
enabled.  Emitted curves (per loss rate):

* delivery ratio (including reconvergence-fallback deliveries) and RTR's
  own delivery ratio (protocol completions only);
* fallback and error counts — the acceptance bar is that every case ends
  in a CaseRecord, never an aborted sweep;
* mean retries per case and mean recovery clock, showing the latency
  price of each rung of the ladder.
"""

from __future__ import annotations

import random

from _bench_utils import emit

from repro.chaos import FaultPlan, SecondaryFailure
from repro.eval import EvaluationRunner, generate_cases, summarize_resilience
from repro.eval.report import format_table
from repro.topology import isp_catalog

TOPOLOGY = "AS1239"
LOSS_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
PLAN_SEED = 42
N_RECOVERABLE = 60
N_IRRECOVERABLE = 30


def chaos_resilience_sweep():
    topo = isp_catalog.build(TOPOLOGY, seed=0)
    case_set = generate_cases(
        topo, random.Random(9), N_RECOVERABLE, N_IRRECOVERABLE
    )
    rows = []
    for rate in LOSS_RATES:
        plan = FaultPlan(
            seed=PLAN_SEED,
            packet_loss_rate=rate,
            secondary_failures=(SecondaryFailure(at_hop=5),),
        )
        runner = EvaluationRunner(
            topo, routing=case_set.routing, approaches=("RTR",), fault_plan=plan
        )
        records = runner.run(case_set)["RTR"]
        assert len(records) == len(case_set.cases)
        summary = summarize_resilience(records)
        clocks = [r.result.accounting.clock for r in records]
        rows.append(
            {
                "loss_rate": rate,
                "cases": summary.cases,
                "delivery_ratio_pct": round(100.0 * summary.delivery_ratio, 1),
                "rtr_delivery_ratio_pct": round(
                    100.0 * summary.rtr_delivery_ratio, 1
                ),
                "fallbacks": summary.fallbacks,
                "errors": summary.errors,
                "mean_retries": round(summary.mean_retries, 2),
                "max_retries": summary.max_retries,
                "mean_clock_s": round(sum(clocks) / len(clocks), 4),
            }
        )
    return rows


def check_and_emit(rows) -> None:
    emit("chaos_resilience", format_table(rows))
    clean = rows[0]
    # The error-isolated sweep never loses a case to a crash.
    assert all(row["errors"] == 0 for row in rows)
    # With the fallback ladder on, total delivery stays at the clean level:
    # whatever RTR cannot complete, waiting out reconvergence finishes.
    assert all(
        row["delivery_ratio_pct"] >= clean["delivery_ratio_pct"] - 1.0
        for row in rows
    )
    # RTR's own completions shrink as loss grows, and the ladder works
    # visibly harder (monotone non-decreasing retries).
    assert rows[-1]["rtr_delivery_ratio_pct"] <= clean["rtr_delivery_ratio_pct"]
    retries = [row["mean_retries"] for row in rows]
    assert retries == sorted(retries)
    # The fallback rungs cost wall-clock: heavy loss is slower than none.
    assert rows[-1]["mean_clock_s"] >= clean["mean_clock_s"]


def test_chaos_resilience(run_once):
    check_and_emit(run_once(chaos_resilience_sweep))


if __name__ == "__main__":
    # CI smoke entry point: run the sweep without pytest-benchmark.
    check_and_emit(chaos_resilience_sweep())
