"""Congestion-aware recovery — the `repro.te` acceptance benchmark.

Sweeps four recovery variants over the pinned AS7018 traffic workload
(the exact configuration of ``bench_traffic_weighted.py``), crossed with
a packet-loss chaos ladder:

* **rtr** — the paper's protocol, congestion-blind (the 3.11x headline);
* **rtr+penalty** — congestion-aware phase 2 (`RTRConfig(congestion_aware)`,
  load-penalized selection + per-case feedback) with utilization-cap 1.5
  admission control;
* **r3** — precomputed protection routing (`repro.te.r3`) under the same
  live-load loop and cap;
* **ospf** — the reconvergence baseline, congestion-blind.

Asserted on every full run (the ISSUE acceptance bars):

* congestion-blind RTR drives max post-recovery utilization past 3x on
  the pinned sweep (the problem is real);
* rtr+penalty holds max utilization <= 1.5x on the same sweep;
* rtr+penalty loses at most 2 points of demand-recovery rate vs RTR
  (it currently *gains* — the SS III-D re-invocations recover more than
  admission control sheds).

Rows are merged into ``benchmarks/BENCH_congestion.json`` keyed by
``variant@topology+lossRATE`` and mirrored to ``REPRO_STORE`` when set,
so scheme-vs-utilization rankings are queryable with ``repro query
trend`` across PRs.

``REPRO_CONGESTION_SMOKE=1`` (the CI mode) keeps the full AS7018 cross
and its assertions but skips the heavier ``scale:10000`` sweep.

Usage::

    PYTHONPATH=src python benchmarks/bench_congestion.py
    REPRO_CONGESTION_SMOKE=1 PYTHONPATH=src python benchmarks/bench_congestion.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).parent))

from _bench_utils import emit, record_bench

from repro.chaos import FaultPlan
from repro.core import RTRConfig
from repro.eval.experiments import _build_topology, traffic_scenario_list
from repro.routing import dijkstra_run_count
from repro.traffic import (
    DEFAULT_TOTAL_DEMAND,
    TrafficEngine,
    aggregate_flows,
    generate_matrix,
    summarize_traffic,
)

BENCH_CONGESTION_JSON = Path(__file__).parent / "BENCH_congestion.json"

SMOKE = os.environ.get("REPRO_CONGESTION_SMOKE", "") not in ("", "0")

#: The pinned AS7018 workload — identical to bench_traffic_weighted.py.
AS7018 = dict(topology="AS7018", n_scenarios=10, seed=0, n_flows=1_000_000)

#: The internet-scale smoke sweep (full runs only; r3's offline planning
#: is one Dijkstra per link and is deliberately excluded at this size).
SCALE = dict(topology="scale:10000", n_scenarios=2, seed=0, n_flows=200_000)

#: Packet-loss chaos ladder crossed with every variant on AS7018.
LOSS_RATES = (0.0, 0.05)
PLAN_SEED = 42

#: The admission-control bound asserted by the acceptance bar.
UTILIZATION_CAP = 1.5

#: Allowed demand-recovery cost of congestion awareness (Table III points).
MAX_RECOVERY_COST_PCT = 2.0

#: variant -> (approach name, congestion-aware?).  The cap applies only
#: to the congestion-aware rows; the blind rows are the baselines whose
#: overload the te layer exists to fix.
VARIANTS = (
    ("rtr", "RTR", False),
    ("rtr+penalty", "RTR", True),
    ("r3", "r3", True),
    ("ospf", "OSPF", False),
)


def run_variant(
    topo,
    flow_set,
    scenarios,
    approach: str,
    congestion_aware: bool,
    loss_rate: float = 0.0,
) -> tuple:
    """One (variant, chaos rung) sweep -> (summary row dict, wall, sp)."""
    plan = (
        FaultPlan(seed=PLAN_SEED, packet_loss_rate=loss_rate)
        if loss_rate > 0.0
        else None
    )
    sp0 = dijkstra_run_count()
    t0 = time.perf_counter()
    engine = TrafficEngine(
        topo,
        flow_set,
        approaches=(approach,),
        rtr_config=RTRConfig(),
        fault_plan=plan,
        congestion_aware=congestion_aware,
        utilization_cap=UTILIZATION_CAP if congestion_aware else None,
    )
    records = engine.run_sweep(scenarios)
    wall = time.perf_counter() - t0
    sp = dijkstra_run_count() - sp0
    return summarize_traffic(records[approach]).as_dict(), wall, sp


def sweep_topology(pinned: dict, loss_rates, lines: list, variants=VARIANTS) -> dict:
    """All variants x chaos rungs on one topology; returns row dict."""
    name = pinned["topology"]
    topo = _build_topology(name, pinned["seed"])
    matrix = generate_matrix(
        topo, "gravity", total_demand=DEFAULT_TOTAL_DEMAND, seed=pinned["seed"]
    )
    flow_set = aggregate_flows(matrix, pinned["n_flows"])
    scenarios = traffic_scenario_list(topo, pinned["seed"], pinned["n_scenarios"])
    rows: dict = {}
    for loss_rate in loss_rates:
        for variant, approach, congestion_aware in variants:
            row, wall, sp = run_variant(
                topo, flow_set, scenarios, approach, congestion_aware, loss_rate
            )
            rows[(variant, loss_rate)] = row
            bench_name = f"congestion_{variant}@{name}+loss{loss_rate:g}"
            record_bench(
                bench_name,
                wall_s=wall,
                cases=pinned["n_scenarios"],
                sp_computations=sp,
                path=BENCH_CONGESTION_JSON,
                extra={
                    "topology": name,
                    "variant": variant,
                    "loss_rate": loss_rate,
                    "flows": pinned["n_flows"],
                    "utilization_cap": (
                        UTILIZATION_CAP if congestion_aware else None
                    ),
                    "demand_recovery_rate_pct": row["demand_recovery_rate_pct"],
                    "max_utilization": row["max_utilization"],
                    "utilization_p99": row["utilization_p99"],
                    "congestion_free_pct": row["congestion_free_pct"],
                    "admission_dropped_demand": row["admission_dropped_demand"],
                },
            )
            lines.append(
                f"{name:12s} loss={loss_rate:<5g} {variant:12s} "
                f"recovery {row['demand_recovery_rate_pct']:5.1f}%  "
                f"maxutil {row['max_utilization']:5.2f}x  "
                f"p99 {row['utilization_p99']:5.2f}  "
                f"cf {row['congestion_free_pct']:5.1f}%  "
                f"shed {row['admission_dropped_demand']:6.1f}  "
                f"wall {wall:5.1f}s"
            )
    return rows


def main(argv: list) -> int:
    failed = False
    lines: list = []

    rows = sweep_topology(AS7018, LOSS_RATES, lines)
    rtr = rows[("rtr", 0.0)]
    penalty = rows[("rtr+penalty", 0.0)]

    # Bar 1: the congestion problem is real on the pinned sweep.
    if rtr["max_utilization"] < 3.0:
        print(
            f"congestion-bench: FAIL — congestion-blind RTR max utilization "
            f"{rtr['max_utilization']}x is below the expected >=3x headline; "
            "the pinned workload changed"
        )
        failed = True
    # Bar 2: the te layer caps post-recovery utilization.
    if penalty["max_utilization"] > UTILIZATION_CAP + 1e-9:
        print(
            f"congestion-bench: FAIL — rtr+penalty max utilization "
            f"{penalty['max_utilization']}x exceeds the {UTILIZATION_CAP}x cap"
        )
        failed = True
    # Bar 3: congestion awareness costs <= 2 recovery points.
    floor = rtr["demand_recovery_rate_pct"] - MAX_RECOVERY_COST_PCT
    if penalty["demand_recovery_rate_pct"] < floor:
        print(
            f"congestion-bench: FAIL — rtr+penalty recovers "
            f"{penalty['demand_recovery_rate_pct']}% of demand, below the "
            f"{floor:.1f}% floor (rtr {rtr['demand_recovery_rate_pct']}% - "
            f"{MAX_RECOVERY_COST_PCT} points)"
        )
        failed = True

    if SMOKE:
        lines.append(
            f"{SCALE['topology']:12s} skipped (smoke mode; full runs "
            "record the scale rows)"
        )
    else:
        # r3 and OSPF are deliberately excluded at 10k nodes: r3's
        # offline planning is one Dijkstra per link, and the blind OSPF
        # row adds nothing to the scale story.  Logged, not silent.
        scale_variants = tuple(v for v in VARIANTS if v[0] in ("rtr", "rtr+penalty"))
        lines.append(
            f"{SCALE['topology']:12s} variants limited to "
            f"{[v[0] for v in scale_variants]} (r3 offline planning is "
            "O(links) Dijkstras at this size)"
        )
        sweep_topology(SCALE, (0.0,), lines, variants=scale_variants)

    emit("bench_congestion", "\n".join(lines))
    if failed:
        return 1
    print(f"congestion-bench: OK (trajectory: {BENCH_CONGESTION_JSON.name})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
