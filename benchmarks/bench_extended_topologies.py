"""Extended-catalog series: AS2914 and AS3356 (Figs. 12-13 labels).

The paper's Figs. 12-13 legends name two ASes that appear in no table
(AS2914, AS3356); the catalog carries them as documented-size *extended*
profiles (DESIGN.md §2).  This benchmark runs the irrecoverable-case
comparison on them so every AS the paper ever mentions has a regenerated
series.
"""

from _bench_utils import BASE_CASES, emit

from repro.eval import experiments
from repro.eval.report import format_cdf

EXTENDED = ("AS2914", "AS3356")


def test_extended_topologies_wasted_metrics(run_once):
    def experiment():
        comp = experiments.fig12_wasted_computation(
            topologies=EXTENDED, n_cases=BASE_CASES, seed=0
        )
        trans = experiments.fig13_wasted_transmission(
            topologies=EXTENDED, n_cases=BASE_CASES, seed=0
        )
        return comp, trans

    comp, trans = run_once(experiment)
    lines = []
    for name in EXTENDED:
        for approach, cdf in comp[name].items():
            lines.append(f"{name:8s} {approach:4s} wasted #SP   {format_cdf(cdf)}")
        for approach, cdf in trans[name].items():
            lines.append(f"{name:8s} {approach:4s} wasted bytes {format_cdf(cdf)}")
    emit("extended_topologies_wasted", "\n".join(lines))

    for name in EXTENDED:
        assert comp[name]["RTR"] == [(1.0, 1.0)]
        rtr_median = next(x for x, p in trans[name]["RTR"] if p >= 0.5)
        fcp_median = next(x for x, p in trans[name]["FCP"] if p >= 0.5)
        assert rtr_median <= fcp_median, name
