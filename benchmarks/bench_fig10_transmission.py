"""Fig. 10 — average transmission overhead over the first second.

Paper claims to reproduce (shape): RTR's overhead peaks while first-phase
packets carry the growing failed/cross-link lists, decreases as cases
enter the second phase, and converges within ~100 ms to a steady value
smaller than FCP's.
"""

from _bench_utils import BASE_CASES, emit, emit_figure

from repro.eval import experiments
from repro.eval.report import format_series
from repro.viz import line_chart

TOPOLOGIES = ("AS209", "AS1239")


def test_fig10_transmission_timeline(run_once):
    out = run_once(
        experiments.fig10_transmission_timeline,
        topologies=TOPOLOGIES,
        n_cases=BASE_CASES,
        seed=0,
        horizon=1.0,
        step=0.02,
    )
    lines = []
    for name, series in out.items():
        for approach, pts in series.items():
            lines.append(f"{name:8s} {approach:4s} bytes(t)  {format_series(pts)}")
    emit("fig10_transmission", "\n".join(lines))
    emit_figure(
        "fig10_transmission",
        line_chart(
            {
                f"{approach} ({name})": pts
                for name, per_approach in out.items()
                for approach, pts in per_approach.items()
            },
            title="Fig. 10 — average transmission overhead",
            x_label="time (s)",
            y_label="bytes",
        ),
    )

    for name in TOPOLOGIES:
        rtr = out[name]["RTR"]
        fcp = out[name]["FCP"]
        # Converged steady state: RTR below FCP (§IV-C).
        assert rtr[-1][1] <= fcp[-1][1]
        # All first phases end within ~110 ms: by 200 ms RTR is steady.
        steady = [v for t, v in rtr if t >= 0.2]
        assert max(steady) - min(steady) < 1e-9
