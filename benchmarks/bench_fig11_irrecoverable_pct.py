"""Fig. 11 — percentage of failed routing paths that are irrecoverable.

Paper claims to reproduce (shape): even tiny failure areas (radius 20,
0.03 % of the plane) strand over 20 % of failed paths; at radius 300 the
share exceeds 45 % — motivating the wasted-resource metrics of §IV-D.
"""

from _bench_utils import SCALE, emit, emit_figure

from repro.eval import experiments
from repro.eval.report import format_series
from repro.viz import line_chart

TOPOLOGIES = ("AS209", "AS1239", "AS3549", "AS7018")
RADII = [20, 60, 100, 140, 180, 220, 260, 300]


def test_fig11_irrecoverable_fraction(run_once):
    out = run_once(
        experiments.fig11_irrecoverable_fraction,
        topologies=TOPOLOGIES,
        radii=RADII,
        n_areas_per_radius=40 * SCALE,
        seed=0,
    )
    lines = [
        f"{name:8s} radius:pct  {format_series(series)}"
        for name, series in out.items()
    ]
    emit("fig11_irrecoverable_pct", "\n".join(lines))
    emit_figure(
        "fig11_irrecoverable_pct",
        line_chart(
            out,
            title="Fig. 11 — irrecoverable share of failed routing paths",
            x_label="failure radius",
            y_label="percentage (%)",
        ),
    )

    for name, series in out.items():
        # The share grows with the radius (ends of the sweep ordered) and
        # large areas strand a substantial share of failed paths.
        assert series[-1][1] > series[0][1], name
        assert series[-1][1] > 15.0, name
        assert all(0 <= pct <= 100 for _, pct in series)
