"""Fig. 12 — CDF of wasted computation on irrecoverable test cases.

Paper claims to reproduce (shape): RTR's wasted computation is exactly 1
shortest-path calculation per case; FCP's is several, with long tails on
dense topologies (the paper shows >10 calculations in ~80 % of AS3549
cases).
"""

from _bench_utils import BASE_CASES, QUICK_TOPOLOGIES, emit, emit_figure

from repro.eval import experiments
from repro.eval.report import format_cdf
from repro.viz import cdf_chart


def test_fig12_wasted_computation(run_once):
    out = run_once(
        experiments.fig12_wasted_computation,
        topologies=QUICK_TOPOLOGIES,
        n_cases=BASE_CASES,
        seed=0,
    )
    lines = []
    for name, series in out.items():
        for approach, cdf in series.items():
            lines.append(f"{name:8s} {approach:4s} wasted #SP  {format_cdf(cdf)}")
    emit("fig12_wasted_computation", "\n".join(lines))
    emit_figure(
        "fig12_wasted_computation",
        cdf_chart(
            {
                f"{approach} ({name})": cdf
                for name, per_approach in out.items()
                for approach, cdf in per_approach.items()
            },
            title="Fig. 12 — wasted computation (irrecoverable)",
            x_label="number of shortest-path calculations",
        ),
    )

    for name in QUICK_TOPOLOGIES:
        assert out[name]["RTR"] == [(1.0, 1.0)]
        assert out[name]["FCP"][-1][0] > 1.0
