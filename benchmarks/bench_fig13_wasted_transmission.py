"""Fig. 13 — CDF of wasted transmission on irrecoverable test cases.

Paper claims to reproduce (shape): RTR outperforms FCP in every topology;
RTR discards packets toward unreachable destinations at the initiator
(wasting nothing) except in the rare missed-failure cases, while FCP tries
every possible link before giving up.
"""

from _bench_utils import BASE_CASES, QUICK_TOPOLOGIES, emit, emit_figure

from repro.eval import cdf_at
from repro.eval import experiments
from repro.eval.report import format_cdf
from repro.viz import cdf_chart


def test_fig13_wasted_transmission(run_once):
    out = run_once(
        experiments.fig13_wasted_transmission,
        topologies=QUICK_TOPOLOGIES,
        n_cases=BASE_CASES,
        seed=0,
    )
    lines = []
    for name, series in out.items():
        for approach, cdf in series.items():
            lines.append(f"{name:8s} {approach:4s} wasted bytes*hops  {format_cdf(cdf)}")
    emit("fig13_wasted_transmission", "\n".join(lines))
    emit_figure(
        "fig13_wasted_transmission",
        cdf_chart(
            {
                f"{approach} ({name})": cdf
                for name, per_approach in out.items()
                for approach, cdf in per_approach.items()
            },
            title="Fig. 13 — wasted transmission (irrecoverable)",
            x_label="wasted transmission (bytes x hops)",
        ),
    )

    for name in QUICK_TOPOLOGIES:
        rtr_values = [x for x, _ in out[name]["RTR"]]
        fcp_values = [x for x, _ in out[name]["FCP"]]
        # At every probe point RTR's CDF dominates (is left of) FCP's.
        rtr_median = next(x for x, p in out[name]["RTR"] if p >= 0.5)
        fcp_median = next(x for x, p in out[name]["FCP"] if p >= 0.5)
        assert rtr_median <= fcp_median, name
        assert max(rtr_values) <= max(fcp_values) * 2, name
