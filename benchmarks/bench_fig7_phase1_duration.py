"""Fig. 7 — cumulative distribution of the duration of RTR's first phase.

Paper claims to reproduce (shape): the first phase is short — under
110 ms in every case, under 75 ms for more than 90 % of cases; the
tree-heavy AS7018 has the longest walks.
"""

from _bench_utils import BASE_CASES, emit, emit_figure

from repro.eval import experiments
from repro.eval.report import format_cdf
from repro.viz import cdf_chart

TOPOLOGIES = ("AS209", "AS1239", "AS3549", "AS7018")


def test_fig7_phase1_duration(run_once):
    out = run_once(
        experiments.fig7_phase1_duration,
        topologies=TOPOLOGIES,
        n_recoverable=BASE_CASES,
        n_irrecoverable=BASE_CASES // 2,
        seed=0,
    )
    lines = []
    for name, data in out.items():
        lines.append(
            f"{name:8s}  duration ms  {format_cdf(data['cdf'])}  "
            f"mean={data['summary']['mean']:.1f} max={data['summary']['max']:.1f}"
        )
    emit("fig7_phase1_duration", "\n".join(lines))
    emit_figure(
        "fig7_phase1_duration",
        cdf_chart(
            {name: data["cdf"] for name, data in out.items()},
            title="Fig. 7 — duration of the first phase",
            x_label="duration (ms)",
        ),
    )

    from repro.topology import isp_catalog

    for name, data in out.items():
        # Theorem 1's bound: a walk never exceeds 2*|links| hops, i.e.
        # 2 * links * 1.8 ms.  (Our synthetic AS7018 has more tree branches
        # than Rocketfuel's, so its absolute maximum exceeds the paper's
        # 110 ms; see EXPERIMENTS.md.)
        bound_ms = 2 * isp_catalog.profile(name).n_links * 1.8
        assert data["summary"]["max"] <= bound_ms, name
        assert data["summary"]["max"] < 300.0, name
    # Tree branches make AS7018's walks the longest on average (§IV-B).
    assert out["AS7018"]["summary"]["mean"] >= out["AS3549"]["summary"]["mean"]
