"""Fig. 8 — cumulative distribution of the stretch of recovery paths.

Paper claims to reproduce (shape): RTR's stretch is exactly 1 for every
recovered path (one step in the CDF); FCP's stretch is small in most cases
but reaches several times optimal in the tail.
"""

from _bench_utils import BASE_CASES, QUICK_TOPOLOGIES, emit, emit_figure

from repro.eval import experiments
from repro.eval.report import format_cdf
from repro.viz import cdf_chart


def test_fig8_stretch(run_once):
    out = run_once(
        experiments.fig8_stretch,
        topologies=QUICK_TOPOLOGIES,
        n_cases=BASE_CASES,
        seed=0,
    )
    lines = []
    for name, series in out.items():
        for approach, cdf in series.items():
            lines.append(f"{name:8s} {approach:4s} stretch  {format_cdf(cdf)}")
    emit("fig8_stretch", "\n".join(lines))
    emit_figure(
        "fig8_stretch",
        cdf_chart(
            {
                f"{approach} ({name})": cdf
                for name, per_approach in out.items()
                for approach, cdf in per_approach.items()
            },
            title="Fig. 8 — stretch of recovery paths",
            x_label="stretch",
        ),
    )

    for name in QUICK_TOPOLOGIES:
        rtr = out[name]["RTR"]
        assert rtr == [(1.0, 1.0)], f"{name}: RTR stretch must be exactly 1"
        fcp = out[name]["FCP"]
        assert fcp[-1][0] >= 1.0
