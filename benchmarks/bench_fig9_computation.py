"""Fig. 9 — CDF of computational overhead on recoverable test cases.

Paper claims to reproduce (shape): RTR calculates the shortest path
exactly once in every test case; FCP recalculates whenever the packet
meets a failure not in its header, so its CDF has a long tail.
"""

from _bench_utils import BASE_CASES, QUICK_TOPOLOGIES, emit, emit_figure

from repro.eval import experiments
from repro.eval.report import format_cdf
from repro.viz import cdf_chart


def test_fig9_sp_computations(run_once):
    out = run_once(
        experiments.fig9_sp_computations,
        topologies=QUICK_TOPOLOGIES,
        n_cases=BASE_CASES,
        seed=0,
    )
    lines = []
    for name, series in out.items():
        for approach, cdf in series.items():
            lines.append(f"{name:8s} {approach:4s} #SP-calcs  {format_cdf(cdf)}")
    emit("fig9_sp_computations", "\n".join(lines))
    emit_figure(
        "fig9_sp_computations",
        cdf_chart(
            {
                f"{approach} ({name})": cdf
                for name, per_approach in out.items()
                for approach, cdf in per_approach.items()
            },
            title="Fig. 9 — shortest-path calculations (recoverable)",
            x_label="number of calculations",
        ),
    )

    for name in QUICK_TOPOLOGIES:
        assert out[name]["RTR"] == [(1.0, 1.0)]
        fcp_max = out[name]["FCP"][-1][0]
        assert fcp_max >= 1.0
