"""Header-compression extension (§III-E's mapping-technique note).

Measures, on real phase-1 headers collected across many failure
scenarios, how many bytes the sorted-delta varint coding saves over the
raw 2-bytes-per-id representation the evaluation charges.
"""

import random

from _bench_utils import emit

from repro.core import RTR
from repro.eval.report import format_table
from repro.failures import FailureScenario, LocalView, random_circle
from repro.simulator import RecoveryHeader
from repro.simulator.compression import compressed_header_bytes, raw_header_bytes
from repro.topology import isp_catalog

TOPOLOGIES = ("AS209", "AS3549")
N_SCENARIOS = 25


def collect_headers(name: str):
    topo = isp_catalog.build(name, seed=0)
    rng = random.Random(11)
    headers = []
    for _ in range(N_SCENARIOS):
        scenario = FailureScenario.from_region(topo, random_circle(rng))
        if not scenario.failed_links:
            continue
        rtr = RTR(topo, scenario)
        view = LocalView(scenario)
        for initiator in sorted(scenario.live_nodes()):
            unreachable = view.unreachable_neighbors(initiator)
            if not unreachable:
                continue
            phase1 = rtr.phase1_for(initiator, unreachable[0])
            if not (phase1.collected_failed_links or phase1.cross_links):
                continue
            headers.append(
                RecoveryHeader(
                    failed_links=list(phase1.collected_failed_links),
                    cross_links=list(phase1.cross_links),
                )
            )
    return topo, headers


def test_header_compression(run_once):
    def experiment():
        rows = []
        for name in TOPOLOGIES:
            topo, headers = collect_headers(name)
            raw = sum(raw_header_bytes(h) for h in headers)
            compressed = sum(compressed_header_bytes(topo, h) for h in headers)
            rows.append(
                {
                    "topology": name,
                    "headers": len(headers),
                    "raw_bytes": raw,
                    "compressed_bytes": compressed,
                    "saved_pct": round(100.0 * (1 - compressed / raw), 1) if raw else 0.0,
                }
            )
        return rows

    rows = run_once(experiment)
    emit("header_compression", format_table(rows))
    for row in rows:
        assert row["headers"] > 0
        assert row["compressed_bytes"] < row["raw_bytes"]
        assert row["saved_pct"] > 10.0
