"""Microbenchmarks of the performance-critical substrate pieces.

These use pytest-benchmark's statistical timing (many rounds), unlike the
per-figure experiments.  They document the §III-D claim that incremental
recomputation is cheap, and track the costs of the phase-1 walk and the
cross-link precomputation routers perform offline.
"""

import random

import pytest

from repro.core import run_phase1
from repro.failures import FailureScenario, LocalView, random_circle
from repro.geometry import compute_cross_links
from repro.routing import shortest_path_tree, updated_tree
from repro.simulator import ForwardingEngine
from repro.topology import isp_catalog


@pytest.fixture(scope="module")
def big_topo():
    return isp_catalog.build("AS7018", seed=0)


@pytest.fixture(scope="module")
def failure_setting(big_topo):
    rng = random.Random(3)
    scenario = FailureScenario.from_region(big_topo, random_circle(rng))
    while not scenario.failed_links:
        scenario = FailureScenario.from_region(big_topo, random_circle(rng))
    return scenario


def test_bench_full_dijkstra(benchmark, big_topo):
    benchmark(shortest_path_tree, big_topo, 0)


def test_bench_incremental_update(benchmark, big_topo, failure_setting):
    tree = shortest_path_tree(big_topo, 0)
    removed = set(failure_setting.failed_links)
    benchmark(updated_tree, big_topo, tree, removed)


def test_bench_phase1_walk(benchmark, big_topo, failure_setting):
    view = LocalView(failure_setting)
    initiators = [
        n
        for n in sorted(failure_setting.live_nodes())
        if view.unreachable_neighbors(n)
    ]
    initiator = initiators[0]
    trigger = view.unreachable_neighbors(initiator)[0]

    def walk():
        engine = ForwardingEngine(big_topo, view)
        return run_phase1(big_topo, view, initiator, trigger, engine)

    result = benchmark(walk)
    assert result.walk[0] == result.walk[-1] == initiator


def test_bench_cross_link_precompute(benchmark, big_topo):
    pairs = [(link, big_topo.segment(link)) for link in big_topo.links()]
    benchmark(compute_cross_links, pairs)


def test_bench_scenario_application(benchmark, big_topo):
    rng = random.Random(9)
    circle = random_circle(rng)
    benchmark(FailureScenario.from_region, big_topo, circle)
