"""The §I motivation, quantified: packet loss during IGP convergence.

Not a table or figure of the paper's evaluation, but its opening
arithmetic ("disconnection of an OC-192 link for 10 seconds can lead to
about 12 million packets being dropped"): measures per-flow outage with
and without RTR and the packets a 10 Gb/s aggregate would drop.
"""

from _bench_utils import emit

from repro.eval.motivation import availability_timeline, packet_loss_during_convergence


def test_motivation_packet_loss(run_once):
    report = run_once(
        packet_loss_during_convergence, "AS209", seed=2, max_flows=300
    )
    timeline = availability_timeline(report, step=0.25)
    lines = [
        f"failed flows: {report.flows} ({report.recoverable_flows} recoverable)",
        f"IGP convergence: {report.network_converged_at:.2f} s",
        f"mean outage without RTR: {report.mean_outage_without_rtr * 1000:.0f} ms",
        f"mean outage with RTR   : {report.mean_outage_with_rtr * 1000:.0f} ms",
        f"packets dropped (10 Gb/s aggregate per flow): "
        f"{report.packets_dropped_without_rtr / 1e6:.2f} M -> "
        f"{report.packets_dropped_with_rtr / 1e6:.2f} M with RTR",
        "availability over time (t: without / with RTR): "
        + "  ".join(f"{t:g}:{w:.2f}/{r:.2f}" for t, w, r in timeline),
    ]
    emit("motivation_packet_loss", "\n".join(lines))

    assert report.mean_outage_with_rtr < report.mean_outage_without_rtr / 5
    assert report.packets_saved() > 0
