"""Multi-area recovery (§III-E) — quantifying the extension.

The paper sketches multi-area recovery but does not evaluate it.  This
benchmark does: on scenarios with two disjoint failure areas, chained
RTR (header carries earlier areas' failure information, §III-E) is
compared against naive single-shot RTR, which treats the first failure
it meets as the only one and discards on the second.
"""

import random

from _bench_utils import SCALE, emit

from repro.core import MultiAreaRTR, RTR
from repro.errors import SimulationError
from repro.eval.report import format_table
from repro.failures import multi_area_scenario
from repro.routing import RoutingTable
from repro.topology import isp_catalog

TOPOLOGY = "AS701"
N_SCENARIOS = 6 * SCALE
FLOWS_PER_SCENARIO = 80


def _run() -> dict:
    topo = isp_catalog.build(TOPOLOGY, seed=2)
    routing = RoutingTable(topo)
    rng = random.Random(17)
    totals = {
        "flows": 0,
        "chained_delivered": 0,
        "single_delivered": 0,
        "multi_recovery_flows": 0,
    }
    for _ in range(N_SCENARIOS):
        scenario = multi_area_scenario(topo, rng, n_areas=2, min_separation=900)
        if not scenario.failed_links:
            continue
        chained = MultiAreaRTR(topo, scenario, routing=routing)
        single = RTR(topo, scenario, routing=routing)
        live = sorted(scenario.live_nodes())
        flows = 0
        for src in live:
            for dst in reversed(live):
                if src == dst or flows >= FLOWS_PER_SCENARIO:
                    continue
                try:
                    result = chained.deliver(src, dst)
                except SimulationError:
                    continue
                if not result.initiators:
                    continue  # the default path survived
                if not scenario.reachable(src, dst):
                    continue  # only recoverable flows are comparable
                flows += 1
                totals["flows"] += 1
                if result.delivered:
                    totals["chained_delivered"] += 1
                if result.recovery_count >= 2:
                    totals["multi_recovery_flows"] += 1
                try:
                    if single.recover_flow(src, dst).delivered:
                        totals["single_delivered"] += 1
                except SimulationError:
                    pass
    return totals


def test_multiarea_recovery(run_once):
    totals = run_once(_run)
    flows = max(totals["flows"], 1)
    rows = [
        {
            "variant": "chained multi-area RTR (§III-E)",
            "flows": totals["flows"],
            "delivered_pct": round(100.0 * totals["chained_delivered"] / flows, 1),
        },
        {
            "variant": "single-recovery RTR",
            "flows": totals["flows"],
            "delivered_pct": round(100.0 * totals["single_delivered"] / flows, 1),
        },
    ]
    text = format_table(rows) + (
        f"\n\nflows needing two or more recoveries: "
        f"{totals['multi_recovery_flows']}"
    )
    emit("multiarea_recovery", text)

    assert totals["flows"] > 0
    assert totals["chained_delivered"] >= totals["single_delivered"]
