"""Internet-scale curves — the numpy kernel and `scale:` acceptance bench.

Times three workloads on `scale:` topologies of growing size (1k / 10k /
50k nodes by default):

* **single-source Dijkstra** under both kernel backends (the pure-Python
  reference and the vectorized CSR kernel), parity-checked per root;
* **batched multi-source Dijkstra** (`batched_dijkstra_arrays`), the
  array-level path the traffic engine's `RoutingTable.warm` rides;
* **traffic-weighted Table III** (`scale:50000` only) — the end-to-end
  sweep: demand matrix, 1M flows, circular failures, RTR/FCP recovery.

Asserted on every run: numpy and Python single-source trees are
bit-identical at every size (a correctness bar, not a perf one).  The
former in-script speedup and wall-clock bars are retired — the perf gate
is ``repro query regress``, run by CI against the checked-in trajectory
after this bench records its measurements (to the ``REPRO_STORE`` run
store in gate mode; into ``BENCH_scale.json`` itself with ``--update``).
The measured batched-vs-python speedup is still printed and recorded on
every row.

Rows are merged into ``benchmarks/BENCH_scale.json`` keyed by
``workload@nodes``, each carrying the kernel backend, node/link counts,
and the ``config_hash`` of its parameters.

Usage::

    REPRO_STORE=scale.sqlite PYTHONPATH=src python benchmarks/bench_scale.py
    PYTHONPATH=src python -m repro query --store scale.sqlite regress
    PYTHONPATH=src python benchmarks/bench_scale.py --update  # rebaseline
    REPRO_SCALE_SIZES=1000,10000 PYTHONPATH=src python benchmarks/bench_scale.py
"""

from __future__ import annotations

import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_utils import emit, record_bench

from repro.obs import config_hash
from repro.routing import dijkstra_run_count, shortest_path_tree
from repro.routing.kernels import (
    batched_dijkstra_arrays,
    numpy_available,
    select_backend,
)
from repro.topology.scale import scale_topology

BENCH_SCALE_JSON = Path(__file__).parent / "BENCH_scale.json"

SIZES = tuple(
    int(s)
    for s in os.environ.get("REPRO_SCALE_SIZES", "1000,10000,50000").split(",")
    if s.strip()
)

#: Roots per size for the per-tree timings (spread over the node range).
N_ROOTS = 8

#: Route walks per timed walk-plane batch (one convergence window's worth
#: at internet scale), and the topology size the acceptance row pins.
WALK_PLANE_ROUTES = 4096
WALK_PLANE_NODES = 10_000

TRAFFIC_PINNED = dict(
    topologies=("scale:50000",),
    n_scenarios=2,
    seed=0,
    model="gravity",
    n_flows=1_000_000,
)


def fingerprint(tree) -> tuple:
    """Bit-exact tree identity: float distances by hex, parent order."""
    return (
        tuple((n, float(d).hex()) for n, d in sorted(tree.dist.items())),
        tuple(sorted(tree.parent.items())),
    )


def spread_roots(topo, count: int) -> list:
    nodes = sorted(topo.nodes())
    step = max(1, len(nodes) // count)
    return nodes[::step][:count]


def time_single_source(topo, roots, backend: str) -> tuple:
    """(wall seconds, fingerprints) for one backend over ``roots``."""
    os.environ["REPRO_KERNEL"] = backend
    try:
        t0 = time.perf_counter()
        trees = [shortest_path_tree(topo, r) for r in roots]
        wall = time.perf_counter() - t0
    finally:
        del os.environ["REPRO_KERNEL"]
    return wall, [fingerprint(t) for t in trees]


def walk_plane_routes(topo, count: int, seed: int) -> list:
    """``count`` shortest-path source routes toward one hub destination.

    One tree, many sources — the shape of a convergence window's
    deliveries funneling to a destination.  Compiled once; both backends
    replay the same routes.
    """
    nodes = sorted(topo.nodes())
    dest = nodes[len(nodes) // 2]
    tree = shortest_path_tree(topo, dest)
    rng = random.Random(seed)
    # Farthest sources first: long walks are where a sweep spends its
    # hops, and ties are shuffled so the batch is not one subtree.
    ranked = sorted(
        (s for s in tree.dist if s != dest),
        key=lambda s: (-tree.dist[s], rng.random()),
    )
    routes = []
    for source in ranked[: count * 2]:
        route = [source]
        while route[-1] != dest:
            route.append(tree.parent[route[-1]])
        routes.append(route)
        if len(routes) == count:
            break
    return routes


def time_walk_plane(topo, routes, mode: str) -> tuple:
    """(wall seconds, outcome fingerprints) for one walk backend.

    Packets, accountings, and the request queue are built outside the
    timed region; the clock covers only ``WalkBatch.execute``.
    """
    from repro.failures import FailureScenario, LocalView
    from repro.simulator import (
        ForwardingEngine,
        Packet,
        RecoveryAccounting,
        WalkBatch,
    )

    engine = ForwardingEngine(topo, LocalView(FailureScenario(topo)))
    os.environ["REPRO_WALK"] = mode
    try:
        if mode == "numpy":
            # Warm the per-topology arc index (built once, cached on the
            # CSR view) so the timed region measures steady-state batches.
            warm = WalkBatch(engine)
            warm.add_route(
                Packet(source=routes[0][0], destination=routes[0][-1]),
                routes[0],
                RecoveryAccounting(),
            )
            warm.execute()
        packets = [Packet(source=r[0], destination=r[-1]) for r in routes]
        accs = [RecoveryAccounting() for _ in routes]
        batch = WalkBatch(engine)
        handles = [
            batch.add_route(p, r, a) for p, r, a in zip(packets, routes, accs)
        ]
        t0 = time.perf_counter()
        batch.execute()
        wall = time.perf_counter() - t0
        prints = [
            (
                batch.result(h).delivered,
                p.at,
                a.hops_traveled,
                a.clock.hex(),
            )
            for h, p, a in zip(handles, packets, accs)
        ]
    finally:
        del os.environ["REPRO_WALK"]
    return wall, prints


def bench_walk_plane(write: bool, lines: list) -> bool:
    """The 10k-node walk-plane microbench; returns True on parity failure.

    Runs on a 100x100 grid rather than the ``scale:`` expander: both are
    10k nodes, but the expander's hop diameter is ~6 while the grid's is
    ~200 — recovery walks long enough to show what batching the walk
    phase buys (the expander amortizes nothing over 5-hop walks).
    """
    from repro.topology import grid_topology

    n = WALK_PLANE_NODES
    side = int(round(n**0.5))
    topo = grid_topology(side, side)
    assert topo.node_count == n
    routes = walk_plane_routes(topo, WALK_PLANE_ROUTES, seed=1)
    hops = sum(len(r) - 1 for r in routes)
    params = dict(nodes=n, seed=0, routes=len(routes), hops=hops)

    wall_py, prints_py = time_walk_plane(topo, routes, "python")
    record_bench(
        f"walk_plane_python@{n}",
        wall_py,
        len(routes),
        0,
        config_hash=config_hash(dict(params, backend="python")),
        path=BENCH_SCALE_JSON,
        extra=dict(nodes=n, links=topo.link_count, hops=hops, kernel="python"),
        write_file=write,
    )
    if not numpy_available():
        lines.append(
            f"{n:>7} nodes  walk plane: {len(routes)} routes / {hops} hops  "
            f"python {wall_py * 1e3:8.2f} ms  (numpy unavailable)"
        )
        return False

    wall_np, prints_np = time_walk_plane(topo, routes, "numpy")
    failed = prints_np != prints_py
    if failed:
        print(f"scale-bench: FAIL — walk-plane backend mismatch at {n} nodes")
    speedup = wall_py / wall_np if wall_np > 0 else float("inf")
    record_bench(
        f"walk_plane_numpy@{n}",
        wall_np,
        len(routes),
        0,
        config_hash=config_hash(dict(params, backend="numpy")),
        path=BENCH_SCALE_JSON,
        extra=dict(
            nodes=n,
            links=topo.link_count,
            hops=hops,
            kernel="numpy",
            speedup_vs_python=round(speedup, 2),
        ),
        write_file=write,
    )
    lines.append(
        f"{n:>7} nodes  walk plane: {len(routes)} routes / {hops} hops  "
        f"python {wall_py * 1e3:8.2f} ms  numpy {wall_np * 1e3:8.2f} ms  "
        f"({speedup:.1f}x)"
    )
    return failed


def main(argv: list) -> int:
    failed = False
    lines = []
    # Gate mode records to the REPRO_STORE run store only; --update (or a
    # missing trajectory) refreshes the checked-in BENCH_scale.json.
    write = "--update" in argv or not BENCH_SCALE_JSON.exists()

    for n in SIZES:
        t0 = time.perf_counter()
        topo = scale_topology(n, seed=0)
        build_s = time.perf_counter() - t0
        roots = spread_roots(topo, N_ROOTS)
        params = dict(nodes=n, seed=0, roots=len(roots))
        base_extra = dict(
            nodes=n,
            links=topo.link_count,
            build_s=round(build_s, 4),
        )

        wall_py, prints_py = time_single_source(topo, roots, "python")
        record_bench(
            f"dijkstra_python@{n}",
            wall_py,
            len(roots),
            len(roots),
            config_hash=config_hash(dict(params, backend="python")),
            path=BENCH_SCALE_JSON,
            extra=dict(base_extra, kernel="python"),
            write_file=write,
        )

        if numpy_available():
            wall_np, prints_np = time_single_source(topo, roots, "numpy")
            if prints_np != prints_py:
                print(f"scale-bench: FAIL — backend mismatch at {n} nodes")
                failed = True
            record_bench(
                f"dijkstra_numpy@{n}",
                wall_np,
                len(roots),
                len(roots),
                config_hash=config_hash(dict(params, backend="numpy")),
                path=BENCH_SCALE_JSON,
                extra=dict(base_extra, kernel="numpy"),
                write_file=write,
            )

            os.environ["REPRO_KERNEL"] = "numpy"
            try:
                backend, view = select_backend(topo.csr())
                assert backend == "numpy"
                t0 = time.perf_counter()
                batched_dijkstra_arrays(topo, roots, view=view)
                wall_batch = time.perf_counter() - t0
            finally:
                del os.environ["REPRO_KERNEL"]
            speedup = (wall_py / len(roots)) / (wall_batch / len(roots))
            record_bench(
                f"dijkstra_batched@{n}",
                wall_batch,
                len(roots),
                len(roots),
                config_hash=config_hash(dict(params, backend="numpy-batched")),
                path=BENCH_SCALE_JSON,
                extra=dict(
                    base_extra,
                    kernel="numpy-batched",
                    speedup_vs_python=round(speedup, 2),
                ),
                write_file=write,
            )
            lines.append(
                f"{n:>7} nodes  build {build_s:6.2f}s  "
                f"python {wall_py / len(roots) * 1e3:8.2f} ms/root  "
                f"numpy {wall_np / len(roots) * 1e3:8.2f} ms/root  "
                f"batched {wall_batch / len(roots) * 1e3:8.2f} ms/root  "
                f"({speedup:.1f}x)"
            )
        else:
            lines.append(
                f"{n:>7} nodes  build {build_s:6.2f}s  "
                f"python {wall_py / len(roots) * 1e3:8.2f} ms/root  "
                f"(numpy unavailable)"
            )

    if WALK_PLANE_NODES in SIZES:
        failed = bench_walk_plane(write, lines) or failed

    if 50_000 in SIZES:
        from repro.eval.experiments import traffic_weighted_table3

        sp0 = dijkstra_run_count()
        t0 = time.perf_counter()
        table = traffic_weighted_table3(**TRAFFIC_PINNED)
        wall = time.perf_counter() - t0
        sp = dijkstra_run_count() - sp0
        row = table["scale:50000"]["RTR"]
        record_bench(
            "traffic_weighted_table3@50000",
            wall,
            TRAFFIC_PINNED["n_scenarios"],
            sp,
            config_hash=config_hash(
                {k: list(v) if isinstance(v, tuple) else v for k, v in TRAFFIC_PINNED.items()}
            ),
            path=BENCH_SCALE_JSON,
            extra=dict(
                nodes=50_000,
                kernel="numpy" if numpy_available() else "python",
                disrupted_flows=row["disrupted_flows"],
                demand_recovery_rate_pct=row["demand_recovery_rate_pct"],
            ),
            write_file=write,
        )
        lines.append(
            f"  50000 nodes  traffic-weighted Table III "
            f"({TRAFFIC_PINNED['n_flows']:,} flows, "
            f"{TRAFFIC_PINNED['n_scenarios']} scenarios): {wall:.1f}s  "
            f"[{sp} SP computations]"
        )

    emit("bench_scale", "\n".join(lines))
    if failed:
        return 1
    mode = "trajectory refreshed" if write else "gate with: repro query regress"
    print(f"scale-bench: OK ({BENCH_SCALE_JSON.name}; {mode})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
