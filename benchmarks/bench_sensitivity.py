"""Sensitivity sweeps: RTR's behaviour vs failure-area radius.

Extends the paper's Fig. 11 radius axis to the headline metrics: recovery
rate (with Wilson confidence intervals) and phase-1 walk length.
"""

from _bench_utils import SCALE, emit

from repro.eval.report import format_table
from repro.eval.sweeps import recovery_rate_vs_radius, walk_length_vs_radius

TOPOLOGIES = ("AS209", "AS1239")


def test_sensitivity_recovery_rate_vs_radius(run_once):
    out = run_once(
        recovery_rate_vs_radius,
        topologies=TOPOLOGIES,
        n_cases=80 * SCALE,
        seed=0,
    )
    text = "\n\n".join(
        f"{name}\n{format_table(rows)}" for name, rows in out.items()
    )
    emit("sensitivity_recovery_vs_radius", text)

    for name, rows in out.items():
        for row in rows:
            assert row["cases"] > 0
            assert 0.0 <= row["recovery_rate_pct"] <= 100.0
            assert row["ci_lo_pct"] <= row["recovery_rate_pct"] <= row["ci_hi_pct"]
        # Larger areas cannot be easier: the smallest radius's rate must
        # be at least the largest radius's, within CI slack.
        assert rows[0]["ci_hi_pct"] >= rows[-1]["ci_lo_pct"], name


def test_sensitivity_walk_length_vs_radius(run_once):
    out = run_once(
        walk_length_vs_radius,
        topologies=TOPOLOGIES,
        n_initiators=60 * SCALE,
        seed=0,
    )
    text = "\n\n".join(
        f"{name}\n{format_table(rows)}" for name, rows in out.items()
    )
    emit("sensitivity_walk_length", text)

    for name, rows in out.items():
        # Bigger areas have longer boundaries: the walk grows end to end.
        assert rows[-1]["mean_walk_hops"] > rows[0]["mean_walk_hops"], name
