"""Table II — summary of topologies used in the simulation.

Regenerates the paper's topology table (AS name, #nodes, #links) from the
catalog and verifies each build against it.
"""

from _bench_utils import emit

from repro.eval import experiments
from repro.eval.report import format_table


def test_table2_topologies(run_once):
    rows = run_once(experiments.table2_topologies)
    emit("table2_topologies", format_table(rows))
    assert len(rows) == 8
    assert all(r["built_nodes"] == r["nodes"] for r in rows)
    assert all(r["built_links"] == r["links"] for r in rows)
