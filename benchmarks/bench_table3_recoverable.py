"""Table III — RTR vs FCP vs MRC on recoverable test cases.

Paper claims to reproduce (shape):
* RTR's recovery rate is high (97.7-99.2 % per topology in the paper) and
  *identical* to its optimal recovery rate (Theorem 2);
* FCP recovers 100 % but with a lower optimal rate and stretch > 1;
* MRC's rates collapse under large-scale failures;
* RTR uses exactly 1 shortest-path calculation, FCP several.
"""

from _bench_utils import BASE_CASES, QUICK_TOPOLOGIES, emit

from repro.eval import experiments
from repro.eval.report import format_nested_table


def test_table3_recoverable(run_once):
    table = run_once(
        experiments.table3_recoverable,
        topologies=QUICK_TOPOLOGIES,
        n_cases=BASE_CASES,
        seed=0,
    )
    emit("table3_recoverable", format_nested_table(table))

    for name in QUICK_TOPOLOGIES:
        rtr = table[name]["RTR"]
        fcp = table[name]["FCP"]
        mrc = table[name]["MRC"]
        assert rtr["recovery_rate_pct"] == rtr["optimal_recovery_rate_pct"]
        assert rtr["recovery_rate_pct"] >= 90.0
        assert rtr["max_stretch"] <= 1.0
        assert rtr["max_sp_computations"] == 1
        assert fcp["recovery_rate_pct"] == 100.0
        assert fcp["max_sp_computations"] >= 1
        assert mrc["recovery_rate_pct"] < rtr["recovery_rate_pct"]
        assert rtr["optimal_recovery_rate_pct"] > fcp["optimal_recovery_rate_pct"]
