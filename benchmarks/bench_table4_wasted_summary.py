"""Table IV — wasted computation and transmission, RTR vs FCP.

Paper claims to reproduce (shape): RTR's wasted computation is exactly 1
everywhere; averaged across topologies RTR saves on the order of the
paper's headline 83.1 % of computation and 75.6 % of transmission
relative to FCP on irrecoverable cases.
"""

from _bench_utils import BASE_CASES, QUICK_TOPOLOGIES, emit

from repro.eval import experiments
from repro.eval.report import format_nested_table


def test_table4_wasted_summary(run_once):
    table = run_once(
        experiments.table4_wasted_summary,
        topologies=QUICK_TOPOLOGIES,
        n_cases=BASE_CASES,
        seed=0,
    )
    text = format_nested_table(
        {k: v for k, v in table.items() if k != "Savings"}
    )
    savings = table["Savings"]
    text += (
        f"\n\nOverall savings vs FCP: computation "
        f"{savings['computation_saved_pct']}%  transmission "
        f"{savings['transmission_saved_pct']}%"
        f"\n(paper: 83.1% computation, 75.6% transmission)"
    )
    emit("table4_wasted_summary", text)

    for name in QUICK_TOPOLOGIES:
        rtr = table[name]["RTR"]
        fcp = table[name]["FCP"]
        assert rtr["avg_wasted_computation"] == 1.0
        assert rtr["max_wasted_computation"] == 1
        assert fcp["avg_wasted_computation"] > 1.0
        assert rtr["avg_wasted_transmission"] < fcp["avg_wasted_transmission"]
    assert savings["computation_saved_pct"] > 50.0
    assert savings["transmission_saved_pct"] > 50.0
