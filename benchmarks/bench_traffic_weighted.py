"""Traffic-weighted Table III — the demand-driven workload benchmark.

Pins the ISSUE-level acceptance bar: a sweep that apportions >= 1,000,000
synthetic flows over a gravity demand matrix on the largest Table II
topology (AS7018, 115 nodes) must finish in under 30 s single-process —
possible only because the engine batches flows into OD pairs and pairs
into (initiator, destination) recovery cases instead of simulating flows
one by one.

Also asserted on every run:

* repeating the sweep is bit-identical (seeded, RNG-free aggregation);
* the scenario-sharded parallel path produces the identical table;
* RTR's weighted recovery equals its weighted optimal rate (Theorem 2
  survives demand weighting).

The measurement is recorded to the ``REPRO_STORE`` run store in gate
mode (where ``repro query regress`` compares it against the checked-in
``benchmarks/BENCH_traffic.json``) and merged into the trajectory file
itself with ``--update``.

Usage::

    REPRO_STORE=perf.sqlite PYTHONPATH=src python benchmarks/bench_traffic_weighted.py
    PYTHONPATH=src python benchmarks/bench_traffic_weighted.py --update
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_utils import BENCH_TRAFFIC_JSON, emit, record_bench

from repro.eval.experiments import traffic_weighted_table3
from repro.eval.parallel import parallel_traffic
from repro.eval.report import format_nested_table
from repro.routing import dijkstra_run_count

BENCH_NAME = "traffic_weighted_table3"
PINNED = dict(
    topologies=("AS7018",),
    n_scenarios=10,
    seed=0,
    model="gravity",
    n_flows=1_000_000,
)

#: The acceptance bar: one full sweep, single process, on the largest
#: Table II topology.
TIME_LIMIT_S = float(os.environ.get("REPRO_TRAFFIC_TIME_LIMIT", "30"))


def main(argv: list) -> int:
    write = "--update" in argv or not BENCH_TRAFFIC_JSON.exists()
    sp_before = dijkstra_run_count()
    t0 = time.perf_counter()
    table = traffic_weighted_table3(**PINNED)
    wall_s = time.perf_counter() - t0
    sp = dijkstra_run_count() - sp_before
    print(
        f"traffic-bench: {PINNED['n_flows']:,} flows / "
        f"{PINNED['n_scenarios']} scenarios on AS7018 in {wall_s:.3f}s "
        f"({sp} SP computations)"
    )
    emit("traffic_weighted_table3", format_nested_table(table))

    failed = False
    if wall_s > TIME_LIMIT_S:
        print(
            f"traffic-bench: FAIL — wall {wall_s:.3f}s exceeds the "
            f"{TIME_LIMIT_S:.0f}s single-process bar"
        )
        failed = True

    # Determinism: the identical call must reproduce the table bit-for-bit.
    if traffic_weighted_table3(**PINNED) != table:
        print("traffic-bench: FAIL — repeated sweep is not bit-identical")
        failed = True

    # Parity: the scenario-sharded parallel path is the same experiment.
    par = parallel_traffic(
        PINNED["topologies"],
        PINNED["n_scenarios"],
        seed=PINNED["seed"],
        model=PINNED["model"],
        n_flows=PINNED["n_flows"],
        jobs=2,
        shards_per_topology=2,
    )
    if par != table:
        print("traffic-bench: FAIL — parallel sweep differs from serial")
        failed = True

    rtr = table["AS7018"]["RTR"]
    if rtr["demand_recovery_rate_pct"] != rtr["demand_optimal_rate_pct"]:
        print(
            "traffic-bench: FAIL — RTR weighted recovery "
            f"({rtr['demand_recovery_rate_pct']}) != weighted optimal "
            f"({rtr['demand_optimal_rate_pct']}); Theorem 2 should survive "
            "demand weighting"
        )
        failed = True

    entry = record_bench(
        BENCH_NAME,
        wall_s=wall_s,
        cases=PINNED["n_scenarios"],
        sp_computations=sp,
        path=BENCH_TRAFFIC_JSON,
        extra={
            "flows": PINNED["n_flows"],
            "model": PINNED["model"],
            "topology": "AS7018",
            "disrupted_flows": rtr["disrupted_flows"],
            "demand_recovery_rate_pct": rtr["demand_recovery_rate_pct"],
            "weighted_stretch": rtr["weighted_stretch"],
            "max_utilization": rtr["max_utilization"],
        },
        write_file=write,
    )
    where = BENCH_TRAFFIC_JSON if write else "run store (repro query regress gates)"
    print(f"traffic-bench: recorded to {where}: {entry}")
    if failed:
        return 1
    print("traffic-bench: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
