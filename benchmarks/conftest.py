"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's §IV and
emits the rows/series in paper form.  Output goes both to stdout (visible
with ``pytest -s``) and to ``benchmarks/results/<name>.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` run leaves the regenerated tables
on disk.  Every ``run_once`` measurement is also merged into the
machine-readable ``benchmarks/BENCH_core.json`` (wall seconds, case count,
Dijkstra kernel runs, interpreter, commit) so the perf trajectory is
tracked across PRs.

Scale knob: set ``REPRO_BENCH_SCALE`` (default 1) to multiply case counts;
the paper-scale run (10,000 cases per topology) is
``examples/full_evaluation.py --paper-scale``.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import BASE_CASES, record_bench

from repro.obs import config_hash
from repro.routing import dijkstra_run_count


@pytest.fixture
def run_once(benchmark, request):
    """Run the experiment exactly once under the benchmark timer.

    The per-figure experiments are seconds-long end-to-end simulations;
    statistical repetition belongs to the microbenchmarks, not here.
    Besides the pytest-benchmark timing, the run is recorded into
    ``BENCH_core.json`` under the test's name (minus the ``test_`` prefix).
    """

    def runner(fn, *args, **kwargs):
        name = request.node.name
        if name.startswith("test_"):
            name = name[len("test_") :]
        sp_before = dijkstra_run_count()
        t0 = time.perf_counter()
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        wall_s = time.perf_counter() - t0
        record_bench(
            name,
            wall_s=wall_s,
            cases=int(kwargs.get("n_cases", BASE_CASES)),
            sp_computations=dijkstra_run_count() - sp_before,
            config_hash=config_hash({"bench": name, "args": args, **kwargs}),
        )
        return result

    return runner
