"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's §IV and
emits the rows/series in paper form.  Output goes both to stdout (visible
with ``pytest -s``) and to ``benchmarks/results/<name>.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` run leaves the regenerated tables
on disk.

Scale knob: set ``REPRO_BENCH_SCALE`` (default 1) to multiply case counts;
the paper-scale run (10,000 cases per topology) is
``examples/full_evaluation.py --paper-scale``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under the benchmark timer.

    The per-figure experiments are seconds-long end-to-end simulations;
    statistical repetition belongs to the microbenchmarks, not here.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
