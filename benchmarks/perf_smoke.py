"""CI perf smoke: pinned small sweep vs the checked-in baseline.

Runs the exact configuration of ``bench_table3_recoverable`` (the
``table3_recoverable`` entry of ``BENCH_core.json``), then fails when the
measured wall clock regresses by more than ``REPRO_PERF_TOLERANCE``
(default 30%) against the checked-in number.  The shortest-path kernel
count is compared exactly — it is deterministic for a pinned seed, so a
drift there means the algorithm changed, not the machine.

The timed run executes with instrumentation off (exactly what the gate
has always measured); a second *harvest* run repeats the sweep under
``repro.obs`` to collect the SPT-cache hit rate and per-span totals into
the baseline row, and writes manifest/JSONL artifacts (uploaded by CI).

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py            # compare
    PYTHONPATH=src python benchmarks/perf_smoke.py --update   # rebaseline
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_utils import BENCH_JSON, load_bench_json, record_bench

from repro import obs
from repro.eval.experiments import table3_recoverable
from repro.routing import dijkstra_run_count

BENCH_NAME = "table3_recoverable"
PINNED = dict(topologies=("AS209", "AS1239", "AS3549"), n_cases=120, seed=0)
#: Registered schemes the pinned sweep runs (the driver's default set).
SCHEMES = ["RTR", "FCP", "MRC"]
TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.30"))


def _harvest_obs() -> dict:
    """Repeat the pinned sweep instrumented; return the extra bench fields.

    Not the timed run — the gate measures the uninstrumented path.  The
    run's manifest/JSONL/Prometheus artifacts land under ``REPRO_OBS_DIR``
    (default ./obs-runs) for the CI upload step.
    """
    prior = obs.enabled()
    obs.enable()
    try:
        with obs.run_context(
            f"perf-smoke-{BENCH_NAME}",
            seed=PINNED["seed"],
            config={"bench": BENCH_NAME, **PINNED},
            topologies=PINNED["topologies"],
        ) as manifest:
            table3_recoverable(**PINNED)
        snap = obs.snapshot()
    finally:
        if not prior:
            obs.disable()
    counters = snap["metrics"]["counters"]
    hits = counters.get("spt_cache.hits", 0)
    misses = counters.get("spt_cache.misses", 0)
    probes = hits + misses
    span_ms = {}
    for path, agg in snap["span_aggregates"].items():
        leaf = path.rsplit("/", 1)[-1]
        span_ms[leaf] = span_ms.get(leaf, 0.0) + 1000.0 * agg["total_s"]
    print(f"perf-smoke: obs artifacts in {manifest.artifacts_dir}")
    return {
        "config_hash": manifest.config_hash,
        "cache_hit_rate": hits / probes if probes else 0.0,
        "span_ms": span_ms,
    }


def main(argv: list) -> int:
    update = "--update" in argv

    sp_before = dijkstra_run_count()
    t0 = time.perf_counter()
    table3_recoverable(**PINNED)
    wall_s = time.perf_counter() - t0
    sp = dijkstra_run_count() - sp_before
    print(f"perf-smoke: {BENCH_NAME} wall={wall_s:.4f}s sp_computations={sp}")

    baseline = load_bench_json().get(BENCH_NAME)
    if update or baseline is None:
        entry = record_bench(
            BENCH_NAME,
            wall_s=wall_s,
            cases=PINNED["n_cases"],
            sp_computations=sp,
            schemes=SCHEMES,
            **_harvest_obs(),
        )
        print(f"perf-smoke: baseline written to {BENCH_JSON}: {entry}")
        if baseline is None and not update:
            print("perf-smoke: no baseline existed; recorded one (not a pass/fail run)")
        return 0

    # Harvest pass: not timed, but CI uploads its manifest/JSONL artifacts
    # and the printed hit rate contextualizes any wall-clock drift.
    harvest = _harvest_obs()
    print(
        f"perf-smoke: cache_hit_rate={harvest['cache_hit_rate']:.4f} "
        f"config_hash={harvest['config_hash']}"
    )

    limit = baseline["wall_s"] * (1.0 + TOLERANCE)
    print(
        f"perf-smoke: baseline wall={baseline['wall_s']:.4f}s "
        f"(git {baseline['git_sha']}), limit={limit:.4f}s (+{TOLERANCE:.0%})"
    )
    failed = False
    if sp != baseline["sp_computations"]:
        print(
            f"perf-smoke: FAIL — sp_computations {sp} != baseline "
            f"{baseline['sp_computations']}: the pinned sweep is deterministic, "
            "so the routing workload itself changed; rerun with --update if intended"
        )
        failed = True
    if wall_s > limit:
        print(f"perf-smoke: FAIL — wall {wall_s:.4f}s exceeds limit {limit:.4f}s")
        failed = True
    if failed:
        return 1
    print("perf-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
