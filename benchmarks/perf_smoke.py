"""CI perf smoke: measure the pinned small sweep; ``repro query regress``
is the gate.

Runs the exact configuration of ``bench_table3_recoverable`` (the
``table3_recoverable`` entry of ``BENCH_core.json``) and records the
measurement — to the ``REPRO_STORE`` run store in gate mode (leaving the
checked-in ``BENCH_core.json`` baseline untouched), or into the baseline
file itself with ``--update``.

This script no longer compares anything: the single perf gate is
``repro query regress``, run by CI after the bench, which checks the
stored measurement against the pinned baseline under the store's
thresholds (30% wall clock; *any* drift of the deterministic
shortest-path kernel count).

The timed run executes with instrumentation off (exactly what the gate
has always measured); a second *harvest* run repeats the sweep under
``repro.obs`` to collect the SPT-cache hit rate and per-span totals into
the recorded row, and writes manifest/JSONL artifacts (uploaded by CI).

Usage::

    REPRO_STORE=perf.sqlite PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python -m repro query --store perf.sqlite regress
    PYTHONPATH=src python benchmarks/perf_smoke.py --update   # rebaseline
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_utils import BENCH_JSON, load_bench_json, record_bench

from repro import obs
from repro.eval.experiments import table3_recoverable
from repro.routing import dijkstra_run_count

BENCH_NAME = "table3_recoverable"
PINNED = dict(topologies=("AS209", "AS1239", "AS3549"), n_cases=120, seed=0)
#: Registered schemes the pinned sweep runs (the driver's default set).
SCHEMES = ["RTR", "FCP", "MRC"]


def _harvest_obs() -> dict:
    """Repeat the pinned sweep instrumented; return the extra bench fields.

    Not the timed run — the gate measures the uninstrumented path.  The
    run's manifest/JSONL/Prometheus artifacts land under ``REPRO_OBS_DIR``
    (default ./obs-runs) for the CI upload step.
    """
    prior = obs.enabled()
    obs.enable()
    try:
        with obs.run_context(
            f"perf-smoke-{BENCH_NAME}",
            seed=PINNED["seed"],
            config={"bench": BENCH_NAME, **PINNED},
            topologies=PINNED["topologies"],
        ) as manifest:
            table3_recoverable(**PINNED)
        snap = obs.snapshot()
    finally:
        if not prior:
            obs.disable()
    counters = snap["metrics"]["counters"]
    hits = counters.get("spt_cache.hits", 0)
    misses = counters.get("spt_cache.misses", 0)
    probes = hits + misses
    span_ms = {}
    for path, agg in snap["span_aggregates"].items():
        leaf = path.rsplit("/", 1)[-1]
        span_ms[leaf] = span_ms.get(leaf, 0.0) + 1000.0 * agg["total_s"]
    print(f"perf-smoke: obs artifacts in {manifest.artifacts_dir}")
    return {
        "config_hash": manifest.config_hash,
        "cache_hit_rate": hits / probes if probes else 0.0,
        "span_ms": span_ms,
    }


def main(argv: list) -> int:
    update = "--update" in argv

    sp_before = dijkstra_run_count()
    t0 = time.perf_counter()
    table3_recoverable(**PINNED)
    wall_s = time.perf_counter() - t0
    sp = dijkstra_run_count() - sp_before
    print(f"perf-smoke: {BENCH_NAME} wall={wall_s:.4f}s sp_computations={sp}")

    baseline = load_bench_json().get(BENCH_NAME)
    rebaseline = update or baseline is None
    entry = record_bench(
        BENCH_NAME,
        wall_s=wall_s,
        cases=PINNED["n_cases"],
        sp_computations=sp,
        schemes=SCHEMES,
        write_file=rebaseline,
        **_harvest_obs(),
    )
    if rebaseline:
        print(f"perf-smoke: baseline written to {BENCH_JSON}: {entry}")
        if baseline is None and not update:
            print("perf-smoke: no baseline existed; recorded one")
    else:
        print(
            f"perf-smoke: measurement recorded "
            f"(baseline wall={baseline['wall_s']:.4f}s, git "
            f"{baseline['git_sha']}); gate with: repro query regress"
        )
        if not os.environ.get("REPRO_STORE"):
            print(
                "perf-smoke: warning — REPRO_STORE unset, so the "
                "measurement was not stored and regress has nothing to gate"
            )
    print("perf-smoke: OK (measurement only; repro query regress is the gate)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
