"""CI proof of the run-store regression gate (``repro query regress``).

Builds a throwaway store from the checked-in fixtures — every
``benchmarks/BENCH_*.json`` plus the tracked instrumented-run fixture
under ``tests/store/fixtures/obs-runs/`` (live ``obs-runs/`` dirs stay
gitignored, so a fresh checkout always has this copy) — then asserts
the two halves of the gate's contract:

1. against the pinned baselines themselves, ``regress`` exits 0
   (every metric changed by exactly 0%);
2. after ingesting a copy of ``BENCH_core.json`` with every ``span_ms``
   doubled (a synthetic 2x slowdown), ``regress`` exits nonzero and
   names the regressed metrics in one-line verdicts.

Run from the repo root: ``PYTHONPATH=src python benchmarks/query_smoke.py``.
Exits nonzero on any contract violation, so CI can gate on it directly.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIXTURE_RUNS = REPO / "tests" / "store" / "fixtures" / "obs-runs"


def _cli(store: Path, *argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "query", "--store", str(store), *argv],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def _check(condition: bool, label: str, detail: str = "") -> None:
    if condition:
        print(f"ok    {label}")
    else:
        print(f"FAIL  {label}  {detail}", file=sys.stderr)
        sys.exit(1)


def main() -> int:
    baselines = sorted((REPO / "benchmarks").glob("BENCH_*.json"))
    _check(len(baselines) >= 3, f"found {len(baselines)} BENCH baselines")

    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        store = tmp / "store.sqlite"

        # -- ingest everything checked in -----------------------------
        ingest = _cli(
            store, "ingest", str(FIXTURE_RUNS), *[str(p) for p in baselines]
        )
        _check(ingest.returncode == 0, "ingest fixtures", ingest.stderr)

        # -- lossless round-trip of the obs-runs fixture --------------
        from repro import obs  # noqa: E402 — after PYTHONPATH check
        from repro.store import RunStore  # noqa: E402

        run_dirs = [
            d
            for d in sorted(FIXTURE_RUNS.iterdir())
            if (d / "manifest.json").exists()
        ]
        _check(len(run_dirs) >= 1, f"found {len(run_dirs)} fixture run dir(s)")
        show = _cli(store, "show", "1")
        _check(show.returncode == 0, "show run 1", show.stderr)
        stored = json.loads(show.stdout)
        reference = obs.load_run(run_dirs[0])
        _check(stored == reference, "run round-trips losslessly through show")

        # -- bench files reconstruct byte-equal payloads --------------
        for baseline in baselines:
            doc = _cli(store, "show", "--bench-file", baseline.name)
            _check(doc.returncode == 0, f"show --bench-file {baseline.name}")
            _check(
                json.loads(doc.stdout) == json.loads(baseline.read_text()),
                f"{baseline.name} reconstructs losslessly",
            )

        # -- gate half 1: pinned baselines pass -----------------------
        clean = _cli(store, "regress")
        print(clean.stdout.splitlines()[-1])
        _check(
            clean.returncode == 0,
            "regress exits 0 against pinned baselines",
            clean.stdout + clean.stderr,
        )

        # -- gate half 2: a 2x span_ms slowdown fails -----------------
        core = json.loads((REPO / "benchmarks" / "BENCH_core.json").read_text())
        for entry in core.values():
            if "span_ms" in entry:
                entry["span_ms"] = {
                    k: 2.0 * v for k, v in entry["span_ms"].items()
                }
        # Same filename: the slowed payload lands as the *latest*
        # version of each entry on the BENCH_core.json trajectory.
        slowed = tmp / "BENCH_core.json"
        slowed.write_text(json.dumps(core, indent=2, sort_keys=True))
        ingest2 = _cli(store, "ingest", str(slowed))
        _check(ingest2.returncode == 0, "ingest 2x span_ms slowdown")

        regressed = _cli(store, "regress")
        print(regressed.stdout.splitlines()[-1])
        _check(
            regressed.returncode != 0,
            "regress exits nonzero after the injected slowdown",
        )
        verdicts = [
            line
            for line in regressed.stdout.splitlines()
            if line.startswith("REG") and "span_ms" in line
        ]
        _check(
            len(verdicts) >= 1,
            f"{len(verdicts)} one-line span_ms REG verdict(s)",
            regressed.stdout,
        )

        # -- store file stays consistent under the WAL --------------
        with RunStore(store) as s:
            counts = s.counts()
        _check(counts["bench_rows"] > len(baselines), f"store counts {counts}")

    print("query_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
