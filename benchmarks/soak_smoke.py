#!/usr/bin/env python
"""Soak crash-recovery smoke: run, `kill -9` mid-run, resume, compare.

Three phases over one small, fully-seeded soak configuration:

1. **reference** — an uninterrupted `repro soak` run;
2. **kill/resume** — the same run in a fresh directory, SIGKILLed (whole
   process group) the instant its first checkpoint lands, then resumed
   with `repro soak --resume`;
3. **requeued shard** — the same run again with
   ``REPRO_SOAK_CHAOS_KILL`` making a pool worker SIGKILL itself
   mid-shard, exercising the hardened pool's rebuild + requeue path.

The resumed and requeue summaries must be **byte-identical** to the
reference `summary.json`; any drift exits non-zero.  Run directories
land under ``benchmarks/results/soak-smoke/`` (``--out`` to override)
so CI can upload them as artifacts.

The victim runs in its own session with output on DEVNULL: a plain
``kill`` would orphan the pool's fork workers, which inherit any output
pipe and hold it open forever.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

FLAGS = [
    "--topology", "grid:5x5:400",
    "--seed", "7",
    "--duration", "600",
    "--failures", "2",
    "--flapping-links", "1",
    "--flap-period", "30",
    "--flap-cycles", "2",
    "--flows", "2000",
    "--checkpoint-every", "1",
    "--workers", "2",
]


def _env(**extra) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    env.update(extra)
    return env


def _soak(args: list, env: dict | None = None) -> int:
    return subprocess.run(
        [sys.executable, "-m", "repro", "soak"] + args,
        env=env or _env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    ).returncode


def _run_reference(run_dir: Path) -> bytes:
    rc = _soak(FLAGS + ["--run-dir", str(run_dir)])
    if rc != 0:
        raise SystemExit(f"reference soak run failed with exit {rc}")
    return (run_dir / "summary.json").read_bytes()


def _run_killed_then_resumed(run_dir: Path) -> bytes:
    p = subprocess.Popen(
        [sys.executable, "-m", "repro", "soak"]
        + FLAGS
        + ["--run-dir", str(run_dir)],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if (run_dir / "checkpoint.json").exists():
                break
            if p.poll() is not None:
                raise SystemExit("victim exited before its first checkpoint")
            time.sleep(0.005)
        else:
            raise SystemExit("victim produced no checkpoint within 120s")
        mid_run = not (run_dir / "summary.json").exists()
        os.killpg(p.pid, signal.SIGKILL)
    finally:
        p.wait()
    if not mid_run:
        raise SystemExit("victim finished before the kill landed")
    print(f"  killed mid-run (pgid {p.pid}); resuming ...")
    rc = _soak(["--resume", str(run_dir)])
    if rc != 0:
        raise SystemExit(f"resume failed with exit {rc}")
    return (run_dir / "summary.json").read_bytes()


def _run_with_worker_kill(run_dir: Path, marker: Path) -> bytes:
    env = _env(REPRO_SOAK_CHAOS_KILL=f"{marker}:2")
    rc = _soak(FLAGS + ["--run-dir", str(run_dir)], env=env)
    if rc != 0:
        raise SystemExit(f"requeue soak run failed with exit {rc}")
    if not marker.exists():
        raise SystemExit("the worker chaos-kill hook never fired")
    return (run_dir / "summary.json").read_bytes()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results" / "soak-smoke"),
        help="directory for the three run dirs (wiped first)",
    )
    args = parser.parse_args()
    out = Path(args.out)
    shutil.rmtree(out, ignore_errors=True)
    out.mkdir(parents=True)

    print("[1/3] uninterrupted reference run ...")
    reference = _run_reference(out / "reference")

    print("[2/3] kill -9 mid-run, then resume ...")
    resumed = _run_killed_then_resumed(out / "killed")
    if resumed != reference:
        print("FAIL: resumed summary differs from the reference", file=sys.stderr)
        return 1
    print("  resumed summary is byte-identical")

    print("[3/3] pool worker SIGKILLed mid-shard (requeue path) ...")
    requeued = _run_with_worker_kill(out / "requeued", out / "killed.marker")
    if requeued != reference:
        print("FAIL: requeue summary differs from the reference", file=sys.stderr)
        return 1
    print("  requeued-shard summary is byte-identical")

    print(f"OK — soak crash-recovery smoke passed; runs in {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
