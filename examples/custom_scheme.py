#!/usr/bin/env python3
"""Add your own recovery scheme in under 50 lines.

``DetourScheme`` below is a complete, registered recovery scheme: the
initiator excludes the failed links it can *locally* see and
source-routes along the shortest detour around them.  It knows nothing
about the rest of the failure area, so detours that run back into it are
lost — a nice contrast to RTR, which collects the failure boundary
before rerouting.

Registration is the whole integration: the generic
:class:`~repro.eval.EvaluationRunner` sweep at the bottom runs the new
scheme next to RTR with zero edits to runner, sharding, or traffic code.
The CLI and parallel workers pick it up the same way:

    REPRO_SCHEME_MODULES=examples.custom_scheme \\
        python -m repro eval table3 --topos AS209 --approaches RTR,Detour

    python examples/custom_scheme.py [topology] [n_cases]
"""

import random
import sys

from repro.errors import SimulationError
from repro.schemes import RecoveryScheme, SchemeInstance, register_scheme
from repro.simulator import RecoveryAccounting, RecoveryResult

# ---- the scheme: everything between these rules is the <50-line ask ----


class _DetourRouter:
    """Per-scenario state: one local view, one shared SPT cache."""

    def __init__(self, scheme: "DetourScheme", scenario) -> None:
        from repro.failures import LocalView

        self.scheme = scheme
        self.scenario = scenario
        self.view = LocalView(scenario)

    def recover(self, initiator, destination, trigger_neighbor) -> RecoveryResult:
        if initiator in self.scenario.failed_nodes:
            raise SimulationError(f"initiator {initiator} failed in this scenario")
        accounting = RecoveryAccounting()
        accounting.count_sp(1)
        known = set(self.view.locally_failed_links(initiator))
        path = self.scheme.sp_cache.shortest_path_or_none(
            self.scheme.topo, initiator, destination, excluded_links=known
        )
        # The detour survives only if it dodges the failures the
        # initiator could not see.
        from repro.topology import Link

        delivered = path is not None and not (
            self.scenario.failed_nodes.intersection(path.nodes)
            or any(Link.of(a, b) in self.scenario.failed_links for a, b in path.hops())
        )
        return RecoveryResult(
            approach=DetourScheme.name,
            delivered=delivered,
            path=path if delivered else None,
            accounting=accounting,
        )


@register_scheme
class DetourScheme(RecoveryScheme):
    """Local detour: source-route around the locally visible failures."""

    name = "Detour"

    def _instantiate(self, scenario) -> SchemeInstance:
        return SchemeInstance(self.name, _DetourRouter(self, scenario))


# ------------------------------------------------------------------------


def main(topology: str = "AS209", n_cases: int = 40) -> None:
    from repro.eval import EvaluationRunner, generate_cases, summarize_recoverable
    from repro.eval.report import format_table
    from repro.topology import isp_catalog

    topo = isp_catalog.build(topology, seed=0)
    case_set = generate_cases(topo, random.Random(5), n_cases, 0)
    runner = EvaluationRunner(
        topo, routing=case_set.routing, approaches=("RTR", "Detour")
    )
    records = runner.run(case_set)
    rows = []
    for name, recs in records.items():
        summary = summarize_recoverable([r for r in recs if r.case.recoverable])
        rows.append({"approach": name, **summary.as_dict()})
    print(f"registered scheme 'Detour' vs RTR on {topology} ({n_cases} cases)")
    print(format_table(rows))


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "AS209",
        int(sys.argv[2]) if len(sys.argv) > 2 else 40,
    )
