#!/usr/bin/env python3
"""Disaster scenario: a hurricane-sized failure during IGP convergence.

The motivation of the paper's §I: events like Hurricane Katrina destroy a
large region of the network, and the IGP takes seconds to reconverge —
during which packets toward valid destinations are dropped.  This example
quantifies that window on an ISP topology and shows RTR restoring
connectivity inside it:

    python examples/disaster_recovery.py [seed]
"""

import random
import sys

from repro import (
    FailureScenario,
    LinkStateProtocol,
    Oracle,
    RTR,
    isp_catalog,
)
from repro.failures import LocalView
from repro.geometry import Circle, Point


def main(seed: int = 3) -> None:
    topo = isp_catalog.build("AS209", seed=seed)
    rng = random.Random(seed)

    # A large disaster area (radius 400: bigger than the paper's worst
    # case) somewhere in the middle of the deployment region.
    area = Circle(Point(rng.uniform(600, 1400), rng.uniform(600, 1400)), 400.0)
    scenario = FailureScenario.from_region(topo, area)
    print(f"disaster area: {area}")
    print(
        f"destroyed: {len(scenario.failed_nodes)}/{topo.node_count} routers, "
        f"{len(scenario.failed_links)}/{topo.link_count} links"
    )

    # 1. How long is the outage without RTR?
    proto = LinkStateProtocol(topo)
    report = proto.apply_failure(
        set(scenario.failed_nodes), set(scenario.failed_links)
    )
    print(
        f"\nIGP convergence finishes after {report.network_converged_at:.2f} s "
        f"({len(report.detectors)} routers detected failures)"
    )
    # The paper's §I arithmetic: packets dropped on a 10 Gb/s link during
    # the outage, at 1000-byte packets.
    dropped = report.network_converged_at * 10e9 / 8 / 1000
    print(
        f"an OC-192 link drops ~{dropped / 1e6:.1f} million packets in that "
        f"window without fast reroute"
    )

    # 2. What does RTR do inside the window?
    rtr = RTR(topo, scenario, routing=proto.before)
    oracle = Oracle(topo, scenario)
    view = LocalView(scenario)

    recovered = optimal = irrecoverable = failed_cases = 0
    worst_phase1 = 0.0
    for initiator in sorted(scenario.live_nodes()):
        unreachable = set(view.unreachable_neighbors(initiator))
        if not unreachable:
            continue
        for destination in sorted(topo.nodes()):
            if destination == initiator:
                continue
            next_hop = proto.before.next_hop(initiator, destination)
            if next_hop not in unreachable:
                continue
            failed_cases += 1
            result = rtr.recover(initiator, destination, next_hop)
            worst_phase1 = max(worst_phase1, result.phase1_duration)
            if oracle.is_recoverable(initiator, destination):
                if result.delivered:
                    recovered += 1
                    if result.path.cost == oracle.optimal_cost(
                        initiator, destination
                    ):
                        optimal += 1
            else:
                irrecoverable += 1

    reachable = failed_cases - irrecoverable
    print(f"\nfailed routing cases at recovery initiators: {failed_cases}")
    print(f"  destination unreachable (nothing can help): {irrecoverable}")
    if reachable:
        print(
            f"  recovered by RTR: {recovered}/{reachable} "
            f"({100.0 * recovered / reachable:.1f} %), "
            f"{optimal} with provably shortest paths"
        )
    print(
        f"  worst phase-1 duration: {worst_phase1 * 1000:.1f} ms — "
        f"{report.network_converged_at / max(worst_phase1, 1e-9):.0f}x faster "
        f"than IGP convergence"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
