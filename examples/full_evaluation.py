#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation (§IV).

Runs Table II, Fig. 7, Table III, Figs. 8-13, and Table IV in sequence and
prints them in paper form.  By default this is a quick (minutes) run at
reduced scale; ``--paper-scale`` uses the paper's full counts (10,000
recoverable + 10,000 irrecoverable cases per topology, 1,000 areas per
radius) and takes hours:

    python examples/full_evaluation.py [--paper-scale] [--cases N] [--topos AS209,AS1239]
"""

import argparse
import time

from repro.eval import experiments
from repro.eval.report import (
    format_cdf,
    format_nested_table,
    format_series,
    format_table,
)
from repro.topology import isp_catalog


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full case counts (slow: hours)",
    )
    parser.add_argument("--cases", type=int, default=300, help="cases per topology")
    parser.add_argument(
        "--areas", type=int, default=100, help="failure areas per radius (Fig. 11)"
    )
    parser.add_argument(
        "--topos",
        type=str,
        default=",".join(isp_catalog.names()),
        help="comma-separated AS names",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool size for Tables III/IV (1 = serial)",
    )
    args = parser.parse_args()

    n_cases = 10_000 if args.paper_scale else args.cases
    n_areas = 1_000 if args.paper_scale else args.areas
    topologies = tuple(args.topos.split(","))
    started = time.time()

    banner("Table II — topologies")
    print(format_table(experiments.table2_topologies(seed=args.seed)))

    banner("Fig. 7 — CDF of the duration of the first phase (ms)")
    out = experiments.fig7_phase1_duration(
        topologies, n_recoverable=n_cases, n_irrecoverable=n_cases, seed=args.seed
    )
    for name, data in out.items():
        print(f"{name:8s} {format_cdf(data['cdf'])}")

    banner("Table III — recoverable test cases")
    if args.jobs > 1:
        from repro.eval.parallel import parallel_table3

        table3 = parallel_table3(topologies, n_cases, args.seed, jobs=args.jobs)
    else:
        table3 = experiments.table3_recoverable(topologies, n_cases, args.seed)
    print(format_nested_table(table3))

    banner("Fig. 8 — CDF of stretch")
    out = experiments.fig8_stretch(topologies, n_cases, args.seed)
    for name, series in out.items():
        for approach, cdf in series.items():
            print(f"{name:8s} {approach:4s} {format_cdf(cdf)}")

    banner("Fig. 9 — CDF of shortest-path calculations (recoverable)")
    out = experiments.fig9_sp_computations(topologies, n_cases, args.seed)
    for name, series in out.items():
        for approach, cdf in series.items():
            print(f"{name:8s} {approach:4s} {format_cdf(cdf)}")

    banner("Fig. 10 — transmission overhead over the first second (bytes)")
    out = experiments.fig10_transmission_timeline(
        topologies, min(n_cases, 500), args.seed
    )
    for name, series in out.items():
        for approach, pts in series.items():
            print(f"{name:8s} {approach:4s} {format_series(pts)}")

    banner("Fig. 11 — % of failed routing paths that are irrecoverable")
    out = experiments.fig11_irrecoverable_fraction(
        topologies, n_areas_per_radius=n_areas, seed=args.seed
    )
    for name, series in out.items():
        print(f"{name:8s} {format_series(series)}")

    banner("Fig. 12 — CDF of wasted computation (irrecoverable)")
    out = experiments.fig12_wasted_computation(topologies, n_cases, args.seed)
    for name, series in out.items():
        for approach, cdf in series.items():
            print(f"{name:8s} {approach:4s} {format_cdf(cdf)}")

    banner("Fig. 13 — CDF of wasted transmission (irrecoverable)")
    out = experiments.fig13_wasted_transmission(topologies, n_cases, args.seed)
    for name, series in out.items():
        for approach, cdf in series.items():
            print(f"{name:8s} {approach:4s} {format_cdf(cdf)}")

    banner("Table IV — wasted computation and transmission (irrecoverable)")
    table = experiments.table4_wasted_summary(topologies, n_cases, args.seed)
    print(format_nested_table({k: v for k, v in table.items() if k != "Savings"}))
    savings = table["Savings"]
    print(
        f"\nRTR saves {savings['computation_saved_pct']} % computation and "
        f"{savings['transmission_saved_pct']} % transmission vs FCP "
        f"(paper: 83.1 % / 75.6 %)"
    )

    print(f"\ntotal wall time: {time.time() - started:.1f} s")


if __name__ == "__main__":
    main()
