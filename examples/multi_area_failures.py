#!/usr/bin/env python3
"""Coordinated attacks: recovery across multiple failure areas (§III-E).

Two separate failure areas hit the network at once (e.g. simultaneous
link-cut attacks).  A packet that bypasses the first area can run into the
second; the node that detects it becomes a new recovery initiator and
reuses the failure information already carried in the packet header:

    python examples/multi_area_failures.py [seed]
"""

import random
import sys

from repro import MultiAreaRTR, isp_catalog
from repro.errors import SimulationError
from repro.failures import multi_area_scenario


def main(seed: int = 4) -> None:
    topo = isp_catalog.build("AS701", seed=seed)
    rng = random.Random(seed)

    scenario = multi_area_scenario(topo, rng, n_areas=2, min_separation=900)
    print(f"topology {topo.name}: {topo.node_count} nodes")
    for i, circle in enumerate(scenario.region.regions, 1):
        print(f"  area {i}: {circle}")
    print(
        f"  destroyed {len(scenario.failed_nodes)} routers, "
        f"{len(scenario.failed_links)} links"
    )

    rtr = MultiAreaRTR(topo, scenario)
    live = sorted(scenario.live_nodes())

    stats = {"delivered": 0, "dropped": 0, "attempted": 0}
    chained_example = None
    for src in live:
        for dst in reversed(live):
            if src == dst:
                continue
            try:
                result = rtr.deliver(src, dst)
            except SimulationError:
                continue
            if not result.initiators:
                continue  # path did not fail; not interesting here
            stats["attempted"] += 1
            if result.delivered:
                stats["delivered"] += 1
            else:
                stats["dropped"] += 1
            if result.recovery_count >= 2 and chained_example is None:
                chained_example = (src, dst, result)
        if stats["attempted"] > 400:
            break

    print(
        f"\nflows needing recovery: {stats['attempted']} "
        f"(delivered {stats['delivered']}, dropped {stats['dropped']})"
    )

    if chained_example is None:
        print("no flow crossed both areas; try another seed")
        return
    src, dst, result = chained_example
    print(f"\na flow that crossed both areas: v{src} -> v{dst}")
    print(
        "  recovery initiators in order: "
        + ", ".join(f"v{i}" for i in result.initiators)
    )
    print(f"  failed links accumulated in the header: {len(result.known_failed_links)}")
    print(f"  total travel: {len(result.traveled) - 1} hops")
    print(
        "  route taken: "
        + " -> ".join(f"v{n}" for n in result.traveled[:20])
        + (" ..." if len(result.traveled) > 20 else "")
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
