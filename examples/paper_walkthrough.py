#!/usr/bin/env python3
"""The paper's running example (Figs. 1/2/4/6 and Table I), reproduced.

Replays the scenario the paper uses throughout §III: router v10 dies, the
area cuts e6,11 and e4,11, the default path v7 -> v6 -> v11 -> v15 -> v17
breaks, and v6 initiates recovery.  Prints the Table I per-hop header
trace and the Fig. 6 recovery path:

    python examples/paper_walkthrough.py
"""

from repro import RTR, FailureScenario
from repro.failures import LocalView
from repro.topology.examples import PAPER_FAILURE_REGION, paper_figure_topology


def main() -> None:
    topo = paper_figure_topology()
    scenario = FailureScenario.from_region(topo, PAPER_FAILURE_REGION)
    view = LocalView(scenario)

    print("the example of Figs. 1/4/6:")
    print(f"  failed router : v10")
    print(
        "  failed links  : "
        + ", ".join(sorted(str(l) for l in scenario.failed_links))
    )
    print(
        "  v11's local view: neighbors "
        + ", ".join(f"v{n}" for n in sorted(view.unreachable_neighbors(11)))
        + " unreachable (it cannot tell node from link failures)"
    )

    rtr = RTR(topo, scenario)
    default = rtr.routing.path(7, 17)
    print(f"\ndefault path v7 -> v17: {default}")
    initiator, trigger = rtr.find_initiator(7, 17)
    print(f"disconnected at {initiator}-{trigger}: v{initiator} invokes RTR")

    result = rtr.recover(initiator, 17, trigger)
    phase1 = rtr.phase1_for(initiator, trigger)

    print("\nTable I — the first phase, hop by hop:")
    print(f"{'hop':>4}  {'at':>4}  {'failed_link':<42}  cross_link")
    for hop, (node, failed, cross) in enumerate(phase1.field_trace):
        print(
            f"{hop:>4}  v{node:<3}  "
            f"{', '.join(str(l) for l in failed):<42}  "
            f"{', '.join(str(l) for l in cross)}"
        )

    print(f"\nfirst phase: {phase1.hops} hops, {phase1.duration * 1000:.1f} ms")
    print(f"recovery path (Fig. 6 dashed): {result.path}")
    print(f"shortest-path calculations: {result.sp_computations}")


if __name__ == "__main__":
    main()
