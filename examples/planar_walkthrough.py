#!/usr/bin/env python3
"""The planar-graph case (Fig. 2): the bare sweeping rule, no constraints.

On a plane embedding no two links cross, so Constraints 1-2 never fire
and the right-hand rule alone walks the packet around the failure area.
This script planarizes the paper's example topology (as §III-C warns,
this is safe only for building *fixtures* — planarizing a live network
can wrongly partition it) and replays the recovery:

    python examples/planar_walkthrough.py
"""

from repro import RTR, RTRConfig, FailureScenario
from repro.failures import LocalView
from repro.topology.examples import (
    PAPER_FAILURE_REGION,
    paper_figure_topology,
    paper_planar_topology,
)


def main() -> None:
    general = paper_figure_topology()
    planar = paper_planar_topology()
    removed = set(general.links()) - set(planar.links())
    print(f"planarized the example topology: removed {sorted(str(l) for l in removed)}")
    print(f"crossing-free: {planar.is_planar_embedding()}")

    scenario = FailureScenario.from_region(planar, PAPER_FAILURE_REGION)
    view = LocalView(scenario)
    print(
        "failed links on the planar variant: "
        + ", ".join(sorted(str(l) for l in scenario.failed_links))
    )

    unreachable = view.unreachable_neighbors(6)
    if not unreachable:
        print("v6 has no failed adjacency on the planar variant; done")
        return
    trigger = unreachable[0]

    # Run once with and once without the constraint machinery: on a planar
    # graph they must behave identically (the Fig. 2 premise).
    with_constraints = RTR(planar, scenario, config=RTRConfig(use_constraints=True))
    without_constraints = RTR(
        planar, scenario, config=RTRConfig(use_constraints=False)
    )
    walk_a = with_constraints.phase1_for(6, trigger)
    walk_b = without_constraints.phase1_for(6, trigger)
    print(f"\nphase-1 walk ({walk_a.hops} hops):")
    print("  " + " -> ".join(f"v{n}" for n in walk_a.walk))
    print(f"identical without constraints: {walk_a.walk == walk_b.walk}")
    print(f"cross_link field stayed empty: {not walk_a.cross_links}")

    result = with_constraints.recover(6, 17, trigger)
    if result.delivered:
        print(f"\nrecovery path: {result.path}")
    else:
        print("\ndestination unreachable on the planar variant")


if __name__ == "__main__":
    main()
