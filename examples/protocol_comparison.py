#!/usr/bin/env python3
"""RTR vs FCP vs MRC, head to head (a miniature Table III + Table IV).

Runs the paper's §IV comparison at adjustable scale on one topology and
prints both tables:

    python examples/protocol_comparison.py [AS209] [cases=300]
"""

import random
import sys

from repro.eval import (
    EvaluationRunner,
    generate_cases,
    savings_ratio,
    summarize_irrecoverable,
    summarize_recoverable,
)
from repro.eval.report import format_table
from repro.topology import isp_catalog


def main(name: str = "AS209", n_cases: int = 300) -> None:
    topo = isp_catalog.build(name, seed=0)
    print(f"topology {name}: {topo.node_count} nodes, {topo.link_count} links")
    print(f"generating {n_cases} recoverable + {n_cases} irrecoverable cases...")
    case_set = generate_cases(topo, random.Random(1), n_cases, n_cases)
    print(f"  ({len(case_set.scenarios)} failure areas needed)")

    runner = EvaluationRunner(topo, routing=case_set.routing)
    records = runner.run(case_set)

    rows = []
    for approach, recs in records.items():
        recoverable = [r for r in recs if r.case.recoverable]
        rows.append(
            {"approach": approach, **summarize_recoverable(recoverable).as_dict()}
        )
    print("\nrecoverable test cases (Table III):")
    print(format_table(rows))

    rows = []
    summaries = {}
    for approach in ("RTR", "FCP"):
        irrecoverable = [r for r in records[approach] if not r.case.recoverable]
        summary = summarize_irrecoverable(irrecoverable)
        summaries[approach] = summary
        rows.append({"approach": approach, **summary.as_dict()})
    print("\nirrecoverable test cases (Table IV):")
    print(format_table(rows))
    print(
        "\nRTR saves "
        f"{100 * savings_ratio(summaries['FCP'].avg_wasted_computation, summaries['RTR'].avg_wasted_computation):.1f} % "
        "of wasted computation and "
        f"{100 * savings_ratio(summaries['FCP'].avg_wasted_transmission, summaries['RTR'].avg_wasted_transmission):.1f} % "
        "of wasted transmission vs FCP "
        "(paper: 83.1 % and 75.6 %)"
    )


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "AS209"
    n_cases = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    main(name, n_cases)
