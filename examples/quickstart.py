#!/usr/bin/env python3
"""Quickstart: recover one failed routing path with RTR.

Builds an ISP topology from the Table II catalog, drops a random circular
failure area on it (the paper's §IV-A setup), finds a broken default path,
and runs Reactive Two-phase Rerouting end to end:

    python examples/quickstart.py [seed]
"""

import random
import sys

from repro import FailureScenario, Oracle, RTR, isp_catalog, random_circle
from repro.failures import LocalView


def main(seed: int = 7) -> None:
    rng = random.Random(seed)
    topo = isp_catalog.build("AS1239", seed=seed)
    print(f"topology: {topo.name} ({topo.node_count} nodes, {topo.link_count} links)")

    # A random large-scale failure that actually breaks something.
    scenario = FailureScenario.from_region(topo, random_circle(rng))
    while not scenario.failed_links:
        scenario = FailureScenario.from_region(topo, random_circle(rng))
    print(
        f"failure area: {scenario.region}, "
        f"{len(scenario.failed_nodes)} routers and "
        f"{len(scenario.failed_links)} links down"
    )

    rtr = RTR(topo, scenario)
    view = LocalView(scenario)
    oracle = Oracle(topo, scenario)

    # Find some broken default path with a live source.
    for source in sorted(scenario.live_nodes()):
        for destination in sorted(scenario.live_nodes()):
            if source == destination:
                continue
            path = rtr.routing.path(source, destination)
            if path is None:
                continue
            broken = any(
                not view.is_neighbor_reachable(a, b) for a, b in path.hops()
            )
            if broken:
                demo(rtr, oracle, source, destination, path)
                return
    print("this failure broke no routing path; rerun with another seed")


def demo(rtr: RTR, oracle: Oracle, source: int, destination: int, path) -> None:
    print(f"\nbroken default path: {path}")
    initiator, trigger = rtr.find_initiator(source, destination)
    print(f"recovery initiator: v{initiator} (next hop v{trigger} unreachable)")

    result = rtr.recover_flow(source, destination)
    phase1 = rtr.phase1_for(initiator, trigger)
    print(f"\nphase 1 walk ({phase1.hops} hops, {phase1.duration * 1000:.1f} ms):")
    print("  " + " -> ".join(f"v{n}" for n in phase1.walk))
    print(
        "  collected failed links: "
        + (", ".join(str(l) for l in phase1.collected_failed_links) or "(none)")
    )

    if result.delivered:
        print(f"\nphase 2 recovery path: {result.path}")
        optimal = oracle.optimal_cost(initiator, destination)
        print(
            f"optimal cost (oracle, G-E2): {optimal:g} -> "
            f"stretch {result.path.cost / optimal:.2f}"
        )
    else:
        print("\ndestination unreachable: packets discarded at the initiator")
    print(f"shortest-path calculations used: {result.sp_computations}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
