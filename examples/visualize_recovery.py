#!/usr/bin/env python3
"""Render a recovery episode as SVG (like the paper's Figs. 2 and 6).

Draws the paper's worked example — failure area, failed elements, the
default path, the phase-1 walk, and the recovery path — plus one random
ISP scenario, into ``out/``:

    python examples/visualize_recovery.py [outdir]
"""

import random
import sys
from pathlib import Path

from repro import RTR, FailureScenario, isp_catalog, random_circle
from repro.topology.examples import PAPER_FAILURE_REGION, paper_figure_topology
from repro.viz import render_topology, save_svg


def render_paper_example(outdir: Path) -> None:
    topo = paper_figure_topology()
    scenario = FailureScenario.from_region(topo, PAPER_FAILURE_REGION)
    rtr = RTR(topo, scenario)
    result = rtr.recover(6, 17, 11)
    phase1 = rtr.phase1_for(6, 11)
    default = rtr.routing.path(7, 17)
    svg = render_topology(
        topo,
        scenario=scenario,
        walk=phase1.walk,
        recovery_path=list(result.path.nodes) if result.path else None,
        default_path=list(default.nodes) if default else None,
        title="RTR on the paper's Fig. 6 example",
    )
    path = save_svg(svg, outdir / "paper_example.svg")
    print(f"wrote {path} (walk dotted green, recovery dashed purple)")


def render_random_isp(outdir: Path, seed: int = 5) -> None:
    rng = random.Random(seed)
    topo = isp_catalog.build("AS1239", seed=seed)
    scenario = FailureScenario.from_region(topo, random_circle(rng))
    while not scenario.failed_links:
        scenario = FailureScenario.from_region(topo, random_circle(rng))
    rtr = RTR(topo, scenario)
    from repro.failures import LocalView

    view = LocalView(scenario)
    walk = recovery = None
    for initiator in sorted(scenario.live_nodes()):
        unreachable = view.unreachable_neighbors(initiator)
        if not unreachable:
            continue
        for destination in sorted(scenario.live_nodes()):
            nh = rtr.routing.next_hop(initiator, destination)
            if nh not in unreachable:
                continue
            result = rtr.recover(initiator, destination, nh)
            if result.delivered:
                walk = rtr.phase1_for(initiator, nh).walk
                recovery = list(result.path.nodes)
                break
        if walk:
            break
    svg = render_topology(
        topo,
        scenario=scenario,
        walk=walk,
        recovery_path=recovery,
        labels=False,
        title="RTR on a random AS1239 failure",
    )
    path = save_svg(svg, outdir / "as1239_recovery.svg")
    print(f"wrote {path}")


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("out")
    outdir.mkdir(parents=True, exist_ok=True)
    render_paper_example(outdir)
    render_random_isp(outdir)


if __name__ == "__main__":
    main()
