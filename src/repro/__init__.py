"""repro — a full reimplementation of RTR (Reactive Two-phase Rerouting).

Reproduction of *"Optimal Recovery from Large-Scale Failures in IP
Networks"* (Zheng, Cao, La Porta, Swami — ICDCS 2012), including every
substrate the paper depends on: embedded ISP topologies, link-state
routing with incremental SPT recomputation, geometric failure areas with
local-only detection, a packet-level simulator, the FCP and MRC baselines,
and an evaluation harness regenerating every table and figure of §IV.

Quickstart::

    import random
    from repro import FailureScenario, RTR, isp_catalog, random_circle

    topo = isp_catalog.build("AS1239", seed=1)
    scenario = FailureScenario.from_region(
        topo, random_circle(random.Random(7))
    )
    rtr = RTR(topo, scenario)
    # pick any failed default path and recover it:
    # result = rtr.recover_flow(source, destination)
"""

from .errors import (
    ChaosError,
    ConfigurationError,
    EvaluationError,
    ForwardingLoopError,
    NoPathError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from .geometry import (
    Circle,
    FailureRegion,
    HalfPlane,
    Point,
    Polygon,
    Segment,
    UnionRegion,
)
from .topology import (
    Link,
    Topology,
    geometric_isp,
    grid_topology,
    isp_catalog,
    ring_topology,
)
from .routing import (
    ConvergenceConfig,
    LinkStateProtocol,
    Path,
    RoutingTable,
    ShortestPathTree,
    shortest_path,
    shortest_path_or_none,
    shortest_path_tree,
    updated_tree,
)
from .failures import (
    FailureScenario,
    LocalView,
    circle_scenarios,
    multi_area_scenario,
    random_circle,
)
from .simulator import (
    ForwardingEngine,
    Packet,
    PaperDelayModel,
    RecoveryAccounting,
    RecoveryHeader,
    RecoveryResult,
)
from .chaos import DegradedLocalView, FaultPlan, SecondaryFailure
from .core import MultiAreaRTR, RTR, RTRConfig
from .baselines import FCP, MRC, Oracle

__version__ = "1.0.0"

__all__ = [
    "ChaosError",
    "ConfigurationError",
    "EvaluationError",
    "ForwardingLoopError",
    "NoPathError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "TopologyError",
    "Circle",
    "FailureRegion",
    "HalfPlane",
    "Point",
    "Polygon",
    "Segment",
    "UnionRegion",
    "Link",
    "Topology",
    "geometric_isp",
    "grid_topology",
    "isp_catalog",
    "ring_topology",
    "ConvergenceConfig",
    "LinkStateProtocol",
    "Path",
    "RoutingTable",
    "ShortestPathTree",
    "shortest_path",
    "shortest_path_or_none",
    "shortest_path_tree",
    "updated_tree",
    "FailureScenario",
    "LocalView",
    "circle_scenarios",
    "multi_area_scenario",
    "random_circle",
    "ForwardingEngine",
    "Packet",
    "PaperDelayModel",
    "RecoveryAccounting",
    "RecoveryHeader",
    "RecoveryResult",
    "DegradedLocalView",
    "FaultPlan",
    "SecondaryFailure",
    "RTR",
    "MultiAreaRTR",
    "RTRConfig",
    "FCP",
    "MRC",
    "Oracle",
    "__version__",
]
