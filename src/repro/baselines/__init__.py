"""Baseline recovery approaches the paper compares against."""

from .fcp import FCP
from .mrc import MRC, BackupConfiguration, generate_configurations, unprotected_nodes
from .oracle import Oracle

__all__ = [
    "FCP",
    "MRC",
    "BackupConfiguration",
    "generate_configurations",
    "unprotected_nodes",
    "Oracle",
]
