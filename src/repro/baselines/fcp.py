"""FCP — Failure-Carrying Packets (Lakshminarayanan et al., SIGCOMM 2007).

The reactive baseline the paper compares against (§IV-A), in its
**source-routing variant**, "which reduces the computational overhead of
the original FCP".

Behaviour: the packet header carries the list of failed links the packet
has *encountered*.  A node holding the packet computes a shortest path to
the destination on the topology minus the header's failed links (and minus
its own locally detected failures — a router always knows its neighbors'
reachability), writes it as a source route, and forwards.  When the route
runs into another failure, the detecting node appends that link to the
header and recomputes.  The packet is dropped only when the computing node
finds no path at all — which is why FCP "has to try every possible link to
reach the destination before discarding packets" (§IV-D) and burns many
shortest-path calculations on irrecoverable destinations.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..errors import SimulationError
from ..failures import FailureScenario, LocalView
from ..routing import Path, RoutingTable, SPTCache
from ..simulator import (
    DEFAULT_DELAY_MODEL,
    DEFAULT_PAYLOAD_BYTES,
    DelayModel,
    ForwardingEngine,
    Mode,
    Packet,
    RecoveryAccounting,
    RecoveryHeader,
    RecoveryResult,
    WalkBatch,
)
from ..topology import Link, Topology

APPROACH_NAME = "FCP"


class FCP:
    """FCP (source-routing variant) over one failure scenario."""

    def __init__(
        self,
        topo: Topology,
        scenario: FailureScenario,
        routing: Optional[RoutingTable] = None,
        delay_model: DelayModel = DEFAULT_DELAY_MODEL,
        max_recomputations: int = 10_000,
        cache: Optional[SPTCache] = None,
    ) -> None:
        self.topo = topo
        self.scenario = scenario
        self.view = LocalView(scenario)
        self.routing = routing if routing is not None else RoutingTable(topo)
        self.engine = ForwardingEngine(topo, self.view, delay_model)
        self.max_recomputations = max_recomputations
        # Recomputations from the same node with the same carried failure
        # set recur across destinations of one scenario; the cached tree is
        # result-identical and each recomputation is still charged one SP
        # calculation in the §IV accounting below.
        self.cache = cache if cache is not None else SPTCache()

    def recover(
        self,
        initiator: int,
        destination: int,
        trigger_neighbor: Optional[int] = None,
    ) -> RecoveryResult:
        """Deliver one packet from ``initiator`` with failure-carrying headers."""
        if not self.scenario.is_node_live(initiator):
            raise SimulationError(f"initiator {initiator} has failed")
        if trigger_neighbor is None:
            trigger_neighbor = self.routing.next_hop(initiator, destination)
            if trigger_neighbor is None:
                raise SimulationError(
                    f"{initiator} has no pre-failure route toward {destination}"
                )
        if self.view.is_neighbor_reachable(initiator, trigger_neighbor):
            raise SimulationError(
                f"default next hop {trigger_neighbor} is reachable; FCP is "
                f"invoked on failure only"
            )

        accounting = RecoveryAccounting()
        header = RecoveryHeader(mode=Mode.SOURCE_ROUTED, rec_init=initiator)
        # The initiator *encountered* the failed default next hop: that link
        # is the first entry carried in the header.
        header.record_failed(Link.of(initiator, trigger_neighbor))
        packet = Packet(source=initiator, destination=destination, header=header)

        current = initiator
        traveled_path: List[int] = [initiator]
        # Each attempt's route runs through the walk plane — but only on a
        # plain engine.  FCP's wandering historically forwards with bare
        # ``forward_one_hop`` calls and never samples the per-hop loss
        # stream; the plane's route walk would, so chaos engines keep the
        # inline loop to stay seed-identical.
        plain_engine = type(self.engine) is ForwardingEngine
        for _ in range(self.max_recomputations):
            carried: Set[Link] = set(header.failed_links)
            local = set(self.view.locally_failed_links(current))
            accounting.count_sp(1)
            route = self.cache.shortest_path_or_none(
                self.topo, current, destination, excluded_links=carried | local
            )
            if route is None:
                # Out of options: discard here (§IV-D's late discard).
                return self._dropped(
                    accounting, packet, traveled_path, drop_node=current
                )
            header.source_route = list(route.nodes)

            if plain_engine:
                hops_before = accounting.hops_traveled
                batch = WalkBatch(self.engine)
                handle = batch.add_route(packet, list(route.nodes), accounting)
                outcome = batch.execute().result(handle)
                hops = accounting.hops_traveled - hops_before
                traveled_path.extend(route.nodes[1 : 1 + hops])
                if not outcome.delivered:
                    header.record_failed(
                        Link.of(outcome.drop_node, route.nodes[hops + 1])
                    )
                    current = outcome.drop_node
                    continue
            else:
                hit_failure = False
                for node, nxt in route.hops():
                    if not self.view.is_neighbor_reachable(node, nxt):
                        header.record_failed(Link.of(node, nxt))
                        current = node
                        hit_failure = True
                        break
                    self.engine.forward_one_hop(packet, nxt, accounting)
                    traveled_path.append(nxt)
                if hit_failure:
                    continue
            return RecoveryResult(
                approach=APPROACH_NAME,
                delivered=True,
                path=Path(
                    tuple(traveled_path),
                    _hop_cost(self.topo, traveled_path),
                ),
                accounting=accounting,
            )
        raise SimulationError(
            f"FCP exceeded {self.max_recomputations} recomputations"
        )

    def recover_flow(self, source: int, destination: int) -> RecoveryResult:
        """Recover the failed default path, like :meth:`RTR.recover_flow`."""
        initiator, trigger = self.find_initiator(source, destination)
        return self.recover(initiator, destination, trigger)

    def find_initiator(self, source: int, destination: int) -> tuple:
        """First node on the pre-failure path whose next hop is unreachable."""
        if not self.scenario.is_node_live(source):
            raise SimulationError(f"source {source} has failed")
        path = self.routing.path(source, destination)
        if path is None:
            raise SimulationError(f"no pre-failure route {source} -> {destination}")
        for node, nxt in path.hops():
            if not self.view.is_neighbor_reachable(node, nxt):
                return node, nxt
        raise SimulationError(f"default path {source} -> {destination} did not fail")

    def _dropped(
        self,
        accounting: RecoveryAccounting,
        packet: Packet,
        traveled_path: List[int],
        drop_node: int,
    ) -> RecoveryResult:
        return RecoveryResult(
            approach=APPROACH_NAME,
            delivered=False,
            path=None,
            accounting=accounting,
            drop_hops=accounting.hops_traveled,
            drop_packet_bytes=DEFAULT_PAYLOAD_BYTES
            + packet.header.recovery_bytes(),
        )


def _hop_cost(topo: Topology, nodes: List[int]) -> float:
    """Total directed cost along a traveled node sequence."""
    return sum(topo.cost(a, b) for a, b in zip(nodes[:-1], nodes[1:]))
