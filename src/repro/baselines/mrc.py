"""MRC — Multiple Routing Configurations (Kvalbein et al., INFOCOM 2006).

The proactive baseline of §IV-A.  MRC precomputes a small set of *backup
configurations*; in configuration ``c`` a subset of nodes is **isolated**:
all their links carry infinite weight except one *restricted* link that
keeps them attached, so no transit traffic crosses an isolated node.  Every
node (and thereby every link) is isolated in at least one configuration.

On a failure, the detecting router switches the packet into a
configuration where the failed next hop is isolated and forwards on that
configuration's shortest paths; the packet is marked and may switch only
once, so MRC handles any *single* failure.  Under large-scale failures a
path and its backup configurations fail together — which is exactly why
the paper reports low MRC recovery rates (Table III).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..errors import SimulationError, UnknownNodeError
from ..failures import FailureScenario, LocalView
from ..routing import Path, RoutingTable
from ..simulator import (
    DEFAULT_DELAY_MODEL,
    DelayModel,
    ForwardingEngine,
    Packet,
    RecoveryAccounting,
    RecoveryResult,
    TableWalkSpec,
    WalkBatch,
    WalkPlan,
    table_walk_hop_budget,
)
from ..topology import Link, Topology

APPROACH_NAME = "MRC"

#: Weight of a restricted link: traffic uses it only to enter/leave the
#: isolated node itself, never in transit.
RESTRICTED_WEIGHT = 100_000.0


class BackupConfiguration:
    """One backup configuration: isolated nodes and link weights."""

    def __init__(
        self,
        topo: Topology,
        index: int,
        isolated_nodes: Set[int],
        restricted_links: Set[Link],
    ) -> None:
        self.topo = topo
        self.index = index
        self.isolated_nodes = isolated_nodes
        self.restricted_links = restricted_links
        # Isolated links: every link of an isolated node except its
        # restricted attachment(s).
        isolated: Set[Link] = set()
        for node in isolated_nodes:
            for link in topo.incident_links(node):
                if link not in restricted_links:
                    isolated.add(link)
        self.isolated_links = isolated
        self._trees: Dict[int, object] = {}
        self._weight_cache: Optional[Tuple[int, List[float]]] = None

    def _csr_weights(self, csr) -> List[float]:
        """Per-link-id config weights for the CSR kernel (-1 = unusable)."""
        cached = self._weight_cache
        if cached is not None and cached[0] == csr.version:
            return cached[1]
        weights = [-1.0] * csr.lid_size
        for link in self.topo.links():
            w = self.link_weight(link)
            weights[self.topo.link_index(link)] = -1.0 if w is None else w
        self._weight_cache = (csr.version, weights)
        return weights

    def link_weight(self, link: Link) -> Optional[float]:
        """Config weight of ``link``: None means unusable (isolated)."""
        if link in self.isolated_links:
            return None
        if link in self.restricted_links:
            return RESTRICTED_WEIGHT
        return self.topo.cost(link.u, link.v)

    def tree(self, destination: int) -> Dict[int, int]:
        """The (cached) next-hop map toward ``destination``.

        This is the table the batched walk plane consumes directly: a
        :class:`~repro.simulator.TableWalkSpec` over it is equivalent to
        per-hop :meth:`next_hop` calls, because the table-walk semantics
        check the destination *before* the lookup.
        """
        tree = self._trees.get(destination)
        if tree is None:
            tree = _weighted_reverse_tree(self.topo, destination, self)
            self._trees[destination] = tree
        return tree

    def next_hop(self, node: int, destination: int) -> Optional[int]:
        """Next hop of ``node`` toward ``destination`` in this configuration."""
        tree = self.tree(destination)
        if node == destination or node not in tree:
            return None
        return tree[node]


def _weighted_reverse_tree(
    topo: Topology, destination: int, config: BackupConfiguration
) -> Dict[int, int]:
    """Next-hop map toward ``destination`` under the config's weights.

    Runs on the CSR view with a per-config weight array over interned link
    ids (cached on the configuration); node-index comparisons equal id
    comparisons, so the smaller-next-hop tie-break is unchanged.
    """
    if not obs.enabled():
        return _weighted_reverse_tree_kernel(topo, destination, config)
    with obs.span("mrc.weighted_tree"):
        obs.inc("mrc.weighted_tree_runs")
        return _weighted_reverse_tree_kernel(topo, destination, config)


def _weighted_reverse_tree_kernel(
    topo: Topology, destination: int, config: BackupConfiguration
) -> Dict[int, int]:
    import heapq

    csr = topo.csr()
    root = csr.pos.get(destination)
    if root is None:
        raise UnknownNodeError(destination)
    weights = config._csr_weights(csr)
    isolated = csr.node_flags(config.isolated_nodes)
    indptr, nbr, lid, ids = csr.indptr, csr.nbr, csr.lid, csr.ids

    inf = float("inf")
    n = csr.n
    dist = [inf] * n
    next_hop = [-1] * n
    settled = bytearray(n)
    dist[root] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, root)]
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        # Transit never crosses an isolated node: an isolated node may be
        # the destination or the source, not an intermediate hop.
        if isolated[u] and u != root:
            continue
        for i in range(indptr[u], indptr[u + 1]):
            v = nbr[i]
            if settled[v]:
                continue
            weight = weights[lid[i]]
            if weight < 0.0:
                continue
            candidate = d + weight
            known = dist[v]
            if candidate < known - 1e-9:
                dist[v] = candidate
                next_hop[v] = u
                heapq.heappush(heap, (candidate, v))
            elif known != inf and abs(candidate - known) <= 1e-9 and u < next_hop[v]:
                next_hop[v] = u
    return {ids[v]: ids[next_hop[v]] for v in range(n) if next_hop[v] >= 0}


def generate_configurations(
    topo: Topology, n_configs: int = 4, seed: int = 0, max_attempts: int = 6
) -> List[BackupConfiguration]:
    """Generate backup configurations isolating as many nodes as possible.

    Greedy variant of Kvalbein's algorithm: nodes are assigned round-robin
    to configurations; a node joins a configuration only if isolating it
    (keeping one restricted attachment) leaves that configuration's
    backbone — the graph without isolated links — connected.  If some node
    cannot be placed, the configuration count grows and generation retries,
    as the original paper does.

    Full coverage requires a biconnected topology (Kvalbein's assumption):
    an articulation point disconnects every backbone it leaves, so it can
    never be isolated.  Real ISP topologies (and the Table II catalog) have
    cut vertices and leaves, so this generator keeps the best attempt and
    leaves such nodes *unprotected* — failures of unprotected elements are
    simply unrecoverable for MRC, one reason its recovery rate collapses
    under large-scale failures (Table III).
    """
    with obs.span("mrc.generate_configurations"):
        return _generate_configurations(topo, n_configs, seed, max_attempts)


def _generate_configurations(
    topo: Topology, n_configs: int, seed: int, max_attempts: int
) -> List[BackupConfiguration]:
    rng = random.Random(seed)
    best: Optional[List[BackupConfiguration]] = None
    best_unprotected = None
    for attempt in range(max_attempts):
        count = n_configs + attempt
        configs = _try_generate(topo, count, rng)
        uncovered = len(unprotected_nodes(topo, configs))
        if best_unprotected is None or uncovered < best_unprotected:
            best, best_unprotected = configs, uncovered
        if uncovered == 0:
            break
    assert best is not None
    return best


def unprotected_nodes(
    topo: Topology, configurations: List[BackupConfiguration]
) -> Set[int]:
    """Nodes not isolated in any configuration (MRC cannot protect them)."""
    covered: Set[int] = set()
    for config in configurations:
        covered |= config.isolated_nodes
    return {n for n in topo.nodes() if n not in covered}


def _backbone_connected(
    topo: Topology, isolated_nodes: Set[int], restricted: Set[Link]
) -> bool:
    """Whether non-isolated nodes stay mutually reachable and isolated
    nodes keep a restricted attachment to the backbone."""
    backbone = [n for n in topo.nodes() if n not in isolated_nodes]
    if not backbone:
        return False
    # BFS over backbone using only links between non-isolated nodes.
    seen = {backbone[0]}
    stack = [backbone[0]]
    while stack:
        u = stack.pop()
        for v in topo.neighbors(u):
            if v in isolated_nodes or v in seen:
                continue
            stack.append(v)
            seen.add(v)
    if len(seen) != len(backbone):
        return False
    # Every isolated node needs a restricted link to a backbone node.
    for node in isolated_nodes:
        if not any(
            link in restricted and link.other(node) not in isolated_nodes
            for link in topo.incident_links(node)
        ):
            return False
    return True


def _try_generate(
    topo: Topology, count: int, rng: random.Random
) -> List[BackupConfiguration]:
    """One greedy generation pass; unplaceable nodes stay unprotected."""
    nodes = list(topo.nodes())
    rng.shuffle(nodes)
    isolated_in: List[Set[int]] = [set() for _ in range(count)]
    restricted_in: List[Set[Link]] = [set() for _ in range(count)]

    for i, node in enumerate(nodes):
        placed = False
        for offset in range(count):
            c = (i + offset) % count
            candidate_isolated = isolated_in[c] | {node}
            # Choose a restricted attachment to a non-isolated neighbor.
            attachments = [
                nb
                for nb in topo.neighbors(node)
                if nb not in candidate_isolated
            ]
            for attach in attachments:
                candidate_restricted = restricted_in[c] | {Link.of(node, attach)}
                if _backbone_connected(topo, candidate_isolated, candidate_restricted):
                    isolated_in[c] = candidate_isolated
                    restricted_in[c] = candidate_restricted
                    placed = True
                    break
            if placed:
                break
    return [
        BackupConfiguration(topo, c, isolated_in[c], restricted_in[c])
        for c in range(count)
    ]


class MRC:
    """MRC forwarding over one failure scenario."""

    def __init__(
        self,
        topo: Topology,
        scenario: FailureScenario,
        configurations: Optional[List[BackupConfiguration]] = None,
        routing: Optional[RoutingTable] = None,
        delay_model: DelayModel = DEFAULT_DELAY_MODEL,
        seed: int = 0,
    ) -> None:
        self.topo = topo
        self.scenario = scenario
        self.view = LocalView(scenario)
        self.routing = routing if routing is not None else RoutingTable(topo)
        self.configurations = (
            configurations
            if configurations is not None
            else generate_configurations(topo, seed=seed)
        )
        self.engine = ForwardingEngine(topo, self.view, delay_model)

    def _config_isolating(self, node: int) -> Optional[BackupConfiguration]:
        for config in self.configurations:
            if node in config.isolated_nodes:
                return config
        return None

    def _config_isolating_link(self, link: Link) -> Optional[BackupConfiguration]:
        for config in self.configurations:
            if link in config.isolated_links:
                return config
        return None

    def recover(
        self,
        initiator: int,
        destination: int,
        trigger_neighbor: Optional[int] = None,
    ) -> RecoveryResult:
        """Forward one packet with at most one configuration switch."""
        plan = self.plan_recovery(initiator, destination, trigger_neighbor)
        if plan.immediate is not None:
            return plan.immediate
        batch = WalkBatch(self.engine)
        handle = batch.add(plan.spec, plan.packet, plan.accounting)
        return plan.finish(batch.execute().result(handle))

    def plan_supported(self) -> bool:
        """MRC cases always compile to one table walk.

        Safe even under a chaos engine/view swap: compilation touches only
        static state (routing table, ground-truth liveness, the
        configurations), so deferring the walk never reorders the seeded
        fault draws — those happen inside the walk itself, in batch
        insertion order.
        """
        return True

    def plan_recovery(
        self,
        initiator: int,
        destination: int,
        trigger_neighbor: Optional[int] = None,
    ) -> "WalkPlan":
        """Compile one MRC case into a table-walk :class:`WalkPlan`."""
        if not self.scenario.is_node_live(initiator):
            raise SimulationError(f"initiator {initiator} has failed")
        if trigger_neighbor is None:
            trigger_neighbor = self.routing.next_hop(initiator, destination)
            if trigger_neighbor is None:
                raise SimulationError(
                    f"{initiator} has no pre-failure route toward {destination}"
                )

        accounting = RecoveryAccounting()
        packet = Packet(source=initiator, destination=destination)

        # Pick the backup configuration for the failed element: the one
        # isolating the failed next-hop node — or, when the next hop is the
        # destination itself, the one isolating the failed link.
        if trigger_neighbor == destination:
            config = self._config_isolating_link(Link.of(initiator, trigger_neighbor))
            if config is None:
                config = self._config_isolating(trigger_neighbor)
        else:
            config = self._config_isolating(trigger_neighbor)
        if config is None:
            return WalkPlan(immediate=self._dropped(accounting, [initiator]))

        # Degenerate delivered-on-the-spot case: skip building the tree
        # (the historical loop never built it either).
        table = {} if initiator == destination else config.tree(destination)
        spec = TableWalkSpec(
            next_hops=table,
            destination=destination,
            budget=table_walk_hop_budget(self.topo.node_count),
        )

        def finish(outcome) -> RecoveryResult:
            if outcome.reached:
                return RecoveryResult(
                    approach=APPROACH_NAME,
                    delivered=True,
                    path=Path(
                        tuple(outcome.visited), float(len(outcome.visited) - 1)
                    ),
                    accounting=accounting,
                )
            # Stuck, blocked (second failure on the backup configuration:
            # MRC gives up — packets may switch configurations only once),
            # or out of budget: all drop.
            return self._dropped(accounting, outcome.visited)

        return WalkPlan(
            spec=spec, packet=packet, accounting=accounting, finish=finish
        )

    def recover_flow(self, source: int, destination: int) -> RecoveryResult:
        """Recover the failed default path, like :meth:`RTR.recover_flow`."""
        path = self.routing.path(source, destination)
        if path is None:
            raise SimulationError(f"no pre-failure route {source} -> {destination}")
        for node, nxt in path.hops():
            if not self.view.is_neighbor_reachable(node, nxt):
                return self.recover(node, destination, nxt)
        raise SimulationError(f"default path {source} -> {destination} did not fail")

    def _dropped(
        self, accounting: RecoveryAccounting, traveled: List[int]
    ) -> RecoveryResult:
        from ..simulator import DEFAULT_PAYLOAD_BYTES

        return RecoveryResult(
            approach=APPROACH_NAME,
            delivered=False,
            path=None,
            accounting=accounting,
            drop_hops=accounting.hops_traveled,
            drop_packet_bytes=DEFAULT_PAYLOAD_BYTES,
        )
