"""Oracle recovery: ground-truth shortest paths in ``G - E2``.

Not a deployable protocol — the oracle sees the exact failure set, which no
router has during IGP convergence (§I).  It defines:

* **recoverability**: a failed routing path is recoverable iff the oracle
  finds any path (§IV-A case 2 vs case 3),
* **optimality**: the denominator of the stretch metric (§IV-C) and the
  reference for the *optimal recovery rate*.

Theorem 2 says RTR's recovered paths always match the oracle's length;
tests and the Table III benchmark check exactly that.
"""

from __future__ import annotations

from typing import Optional

from ..failures import FailureScenario
from ..routing import Path, SPTCache
from ..topology import Topology

APPROACH_NAME = "Oracle"


class Oracle:
    """Ground-truth shortest-path recovery for one failure scenario.

    Queries go through an :class:`~repro.routing.SPTCache` (a private one
    unless a shared cache is passed in), so classifying every destination
    of one initiator costs a single full Dijkstra on ``G - E2`` instead of
    one early-terminated run per destination.
    """

    def __init__(
        self,
        topo: Topology,
        scenario: FailureScenario,
        cache: Optional[SPTCache] = None,
    ) -> None:
        self.topo = topo
        self.scenario = scenario
        self.cache = cache if cache is not None else SPTCache()
        self._excluded_nodes = set(scenario.failed_nodes)
        self._excluded_links = set(scenario.failed_links)

    def recovery_path(self, initiator: int, destination: int) -> Optional[Path]:
        """The true shortest initiator -> destination path in ``G - E2``."""
        if destination in self._excluded_nodes or initiator in self._excluded_nodes:
            return None
        return self.cache.shortest_path_or_none(
            self.topo,
            initiator,
            destination,
            excluded_nodes=self._excluded_nodes,
            excluded_links=self._excluded_links,
        )

    def is_recoverable(self, initiator: int, destination: int) -> bool:
        """Whether any live path exists (§IV-A's case 2)."""
        return self.recovery_path(initiator, destination) is not None

    def optimal_cost(self, initiator: int, destination: int) -> Optional[float]:
        """Cost of the optimal recovery path, or ``None`` if irrecoverable."""
        path = self.recovery_path(initiator, destination)
        return path.cost if path is not None else None
