"""Deterministic fault injection for degraded-mode experiments.

The idealized evaluation world of §II-A (instant perfect detection,
lossless recovery packets, a frozen failure set) is exactly what this
package lets experiments relax.  Compose a :class:`FaultPlan` out of the
four injector families, hand it to :class:`~repro.core.rtr.RTR` or
:class:`~repro.eval.runner.EvaluationRunner`, and the recovery pipeline
runs against per-hop packet loss, missed/late failure detection,
mid-walk secondary link failures, and truncated recovery headers — all
seeded, so every chaotic run is exactly reproducible.
"""

from .plan import FaultPlan, SecondaryFailure, SecondaryRepair
from .runtime import ChaosRuntime
from .degraded import DegradedLocalView
from .engine import ChaosForwardingEngine
from .lowering import (
    NULL_STEP_MASKS,
    NullStepMasks,
    RuntimeStepMasks,
    lower_walk_faults,
    walk_context_vector_safe,
)

__all__ = [
    "FaultPlan",
    "SecondaryFailure",
    "SecondaryRepair",
    "ChaosRuntime",
    "DegradedLocalView",
    "ChaosForwardingEngine",
    "NULL_STEP_MASKS",
    "NullStepMasks",
    "RuntimeStepMasks",
    "lower_walk_faults",
    "walk_context_vector_safe",
]
