"""Degraded local failure detection.

:class:`DegradedLocalView` wraps the idealized
:class:`~repro.failures.detection.LocalView` with the detection faults of
a :class:`~repro.chaos.plan.FaultPlan`, while staying behind the exact
same interface — protocol code cannot tell (and must not care) whether
its view is ideal or degraded:

* **missed detections** — a seeded fraction of failed directed
  adjacencies permanently read as reachable (false negatives, the
  hardest case of §III-D: phase 1 cannot collect what no router knows);
* **delayed detections** — another fraction reads reachable until the
  network-wide hop clock passes ``detection_delay_hops``;
* **secondary failures** — links flapped down mid-recovery by the shared
  :class:`~repro.chaos.runtime.ChaosRuntime` read unreachable from the
  instant they activate (both ends detect a flap immediately);
* **secondary repairs** — scenario-failed links the runtime restores
  mid-recovery read reachable again from the instant the repair
  activates, letting a packet race the repair crew.

Because answers change as the runtime clock advances, this view never
caches neighbor lists.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..failures import FailureScenario, LocalView
from .plan import FaultPlan
from .runtime import ChaosRuntime


class DegradedLocalView(LocalView):
    """A :class:`LocalView` with seeded false-negative/late detection."""

    def __init__(
        self,
        scenario: FailureScenario,
        plan: FaultPlan,
        runtime: Optional[ChaosRuntime] = None,
    ) -> None:
        super().__init__(scenario)
        self.plan = plan
        self.runtime = runtime if runtime is not None else ChaosRuntime(plan, scenario)
        self._missed: Set[Tuple[int, int]] = set()
        self._delayed: Set[Tuple[int, int]] = set()
        if plan.detection_miss_rate > 0 or plan.detection_delay_rate > 0:
            rng = plan.rng("detection")
            truth = LocalView(scenario)
            for node in sorted(scenario.live_nodes()):
                for neighbor in sorted(truth.unreachable_neighbors(node)):
                    draw = rng.random()
                    if draw < plan.detection_miss_rate:
                        self._missed.add((node, neighbor))
                    elif draw < plan.detection_miss_rate + plan.detection_delay_rate:
                        self._delayed.add((node, neighbor))

    # ------------------------------------------------------------------

    def is_neighbor_reachable(self, node: int, neighbor: int) -> bool:
        """Reachability as *this* degraded router currently believes it."""
        truly_reachable = super().is_neighbor_reachable(node, neighbor)
        # super() proved the adjacency exists, so the interned id is present;
        # probe it instead of constructing a Link per call.
        if self.runtime.flapped_lids and self.runtime.is_link_id_flapped(
            self.topo.csr().pair_lid[(node, neighbor)]
        ):
            return False
        if truly_reachable:
            return True
        if self.runtime.repaired_lids and self.runtime.is_link_id_repaired(
            self.topo.csr().pair_lid[(node, neighbor)]
        ):
            return True
        key = (node, neighbor)
        if key in self._missed:
            return True
        if key in self._delayed and self.runtime.hops < self.plan.detection_delay_hops:
            return True
        return False

    def unreachable_neighbors(self, node: int) -> List[int]:
        """Recomputed on every call — degraded answers drift with the clock."""
        return [
            nb
            for nb in self.topo.neighbors(node)
            if not self.is_neighbor_reachable(node, nb)
        ]

    def missed_adjacencies(self) -> Set[Tuple[int, int]]:
        """Directed adjacencies whose failure is never locally detected."""
        return set(self._missed)

    def delayed_adjacencies(self) -> Set[Tuple[int, int]]:
        """Directed adjacencies whose failure is detected late."""
        return set(self._delayed)
