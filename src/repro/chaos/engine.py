"""Forwarding engine with fault injection.

:class:`ChaosForwardingEngine` is a drop-in
:class:`~repro.simulator.engine.ForwardingEngine` that consults the
shared :class:`~repro.chaos.runtime.ChaosRuntime` on every transmission:

* before a hop, the per-hop loss stream may drop the packet — walks and
  source-routed deliveries then report ``lost=True`` through the
  engine's outcome types instead of silently continuing;
* after a hop, the network hop clock advances (activating due secondary
  failures) and the corruption stream may truncate a collecting-mode
  recovery header, discarding its most recently recorded entries — the
  on-the-wire analogue of a damaged option field.

Header truncation only ever *removes* information, so a corrupted phase-1
result is indistinguishable from an honest walk that missed failures —
which is exactly the degraded input the §III-D hardening must absorb.
"""

from __future__ import annotations

from typing import Optional

from .. import obs
from ..failures import LocalView
from ..simulator import DEFAULT_DELAY_MODEL, Mode, Packet
from ..simulator.delays import DelayModel
from ..simulator.engine import ForwardingEngine
from ..simulator.stats import RecoveryAccounting
from ..simulator.trace import ForwardingTrace
from ..topology import Topology
from .lowering import RuntimeStepMasks
from .runtime import ChaosRuntime

log = obs.get_logger(__name__)


class ChaosForwardingEngine(ForwardingEngine):
    """A forwarding engine whose links misbehave per a fault plan."""

    def __init__(
        self,
        topo: Topology,
        view: LocalView,
        runtime: ChaosRuntime,
        delay_model: DelayModel = DEFAULT_DELAY_MODEL,
        trace: Optional[ForwardingTrace] = None,
    ) -> None:
        super().__init__(topo, view, delay_model, trace)
        self.runtime = runtime
        # The injected-loss decision (and its message) lives in the walk
        # plane's lowering so batch and per-packet paths share it.
        self._step_masks = RuntimeStepMasks(runtime)

    def _chaos_check(self, packet: Packet, next_node: int) -> Optional[str]:
        return self._step_masks.drop_reason(packet, next_node)

    def forward_one_hop(
        self, packet: Packet, next_node: int, accounting: RecoveryAccounting
    ) -> None:
        super().forward_one_hop(packet, next_node, accounting)
        self.runtime.on_hop()
        if (
            packet.header.mode == Mode.COLLECTING
            and self.runtime.sample_header_corruption()
        ):
            _truncate_header(packet)


def _truncate_header(packet: Packet) -> None:
    """Drop the most recently recorded variable header entry, if any.

    Failed-link entries are the freshest (and most valuable) information,
    so they are corrupted first; cross-link entries second.  Fixed fields
    (mode, rec_init) are assumed covered by the IP header checksum.
    """
    header = packet.header
    if header.failed_links:
        dropped = header.failed_links.pop()
        kind = "failed-link"
    elif header.cross_links:
        dropped = header.cross_links.pop()
        kind = "cross-link"
    else:
        return
    log.warning(
        "chaos truncated %s entry %s from recovery header at node %s "
        "(packet %s -> %s)",
        kind,
        dropped,
        packet.at,
        packet.source,
        packet.destination,
    )
