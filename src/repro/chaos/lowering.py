"""Lowering fault plans onto the walk plane.

The batched forwarding plane (:mod:`repro.simulator.batch`) advances many
packets per step; a :class:`~repro.chaos.FaultPlan` perturbs walks
per *transmission*: a loss draw before every hop, a shared hop clock (and
corruption draw) after every hop, and detection state in the
:class:`~repro.chaos.DegradedLocalView` that evolves with that clock.
This module is the single authority on how those faults meet the plane:

* :func:`lower_walk_faults` lowers an engine's fault machinery into a
  per-step mask object the scalar walk loops consult before each hop —
  :class:`NullStepMasks` for the clean engine (no draw, vector-safe) and
  :class:`RuntimeStepMasks` for a chaos engine (one seeded RNG draw per
  step, in walk order).
* :func:`walk_context_vector_safe` answers whether a context may run on
  the vectorized backend at all.  The loss/corruption streams are
  *order-dependent* — each walk's draws must interleave exactly as the
  per-packet reference would interleave them, and detection divert state
  advances with the global hop clock — so any degraded context pins to
  the sequential reference backend.  That is what keeps degraded walks
  seed-identical no matter what ``REPRO_WALK`` says.

:class:`~repro.chaos.ChaosForwardingEngine` itself consults its lowered
masks, so the injected-loss decision (and its message) has exactly one
implementation whether a walk runs standalone or through a batch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..failures import LocalView
from ..simulator.engine import ForwardingEngine
from ..simulator.packet import Packet
from ..topology import Link

if TYPE_CHECKING:
    from .runtime import ChaosRuntime


class NullStepMasks:
    """The clean-engine lowering: no per-step faults, vector-safe."""

    vector_safe = True

    def drop_reason(self, packet: Packet, next_node: int) -> Optional[str]:
        return None


class RuntimeStepMasks:
    """Per-step drop masks drawn from a seeded :class:`ChaosRuntime`.

    One loss draw per prospective transmission, consumed in walk order —
    the defining property the batch plane must preserve, hence
    ``vector_safe = False``.
    """

    vector_safe = False

    def __init__(self, runtime: "ChaosRuntime") -> None:
        self.runtime = runtime

    def drop_reason(self, packet: Packet, next_node: int) -> Optional[str]:
        if self.runtime.sample_packet_loss():
            return (
                f"recovery packet lost on link "
                f"{Link.of(packet.at, next_node)} (injected loss)"
            )
        return None


#: Shared instance — the null lowering carries no state.
NULL_STEP_MASKS = NullStepMasks()


def lower_walk_faults(engine: ForwardingEngine):
    """The per-step fault masks of ``engine``'s walk context.

    A plain :class:`ForwardingEngine` lowers to the shared null masks; an
    engine exposing a chaos ``runtime`` lowers to seeded per-step draws.
    Engines that override ``_chaos_check`` without a runtime (custom
    subclasses) fall back to an adapter over that hook so the plane honors
    them too.
    """
    if type(engine) is ForwardingEngine:
        return NULL_STEP_MASKS
    runtime = getattr(engine, "runtime", None)
    if runtime is not None:
        return RuntimeStepMasks(runtime)
    return _HookStepMasks(engine)


class _HookStepMasks:
    """Adapter lowering a custom ``_chaos_check`` override."""

    vector_safe = False

    def __init__(self, engine: ForwardingEngine) -> None:
        self.engine = engine

    def drop_reason(self, packet: Packet, next_node: int) -> Optional[str]:
        return self.engine._chaos_check(packet, next_node)


def walk_context_vector_safe(engine: Optional[ForwardingEngine]) -> bool:
    """Whether walks under ``engine`` may execute on the numpy backend.

    Requires the exact reference engine (no chaos hooks, no subclass) and
    the exact ground-truth :class:`LocalView` (no detection diverts): any
    degraded surface makes per-step draws or divert state order-dependent,
    which only the sequential reference backend reproduces.
    """
    if engine is None or type(engine) is not ForwardingEngine:
        return False
    return type(engine.view) is LocalView
