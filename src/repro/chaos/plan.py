"""Composable, deterministic fault-injection plans.

The reproduction's default world is the idealized one of §II-A: every
router detects its failed neighbors instantly and perfectly, and recovery
packets are never lost.  A :class:`FaultPlan` describes how far a chaos
experiment departs from that world:

* **recovery-packet loss** — each hop transmission of a recovery packet
  is dropped with probability ``packet_loss_rate``;
* **degraded detection** — a fraction of failed adjacencies are *never*
  locally detected (``detection_miss_rate``) or detected only *late*
  (``detection_delay_rate`` + ``detection_delay_hops``), the uncertainty
  driving the wireless-RRR and multiple-failure-MRC lines of work;
* **secondary failures** — links that flap mid-recovery, after a given
  number of network-wide forwarded hops (:class:`SecondaryFailure`);
* **secondary repairs** — failed links coming back up mid-recovery
  (:class:`SecondaryRepair`), the other half of the flap oscillation and
  the mechanism :mod:`repro.timeline` uses to let a packet race a repair
  crew;
* **header corruption** — recovery headers that lose their most recent
  entries in flight with probability ``header_corruption_rate``.

Plans are plain frozen dataclasses: hashable, comparable, and fully
determined by their ``seed`` — running the same plan over the same
scenario twice yields bit-identical fault sequences.  Independent random
streams are derived per injector (:meth:`FaultPlan.rng`) so, e.g.,
changing the loss rate does not re-shuffle which adjacencies go
undetected.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ChaosError

_RATE_FIELDS = (
    "packet_loss_rate",
    "detection_miss_rate",
    "detection_delay_rate",
    "header_corruption_rate",
)


@dataclass(frozen=True)
class SecondaryFailure:
    """One link failing *during* recovery (a mid-walk flap).

    The failure activates once the network has forwarded ``at_hop``
    recovery hops in total.  ``link`` names the endpoints explicitly, or
    is ``None`` to pick a seeded-random live link of the scenario.
    """

    at_hop: int = 1
    link: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.at_hop < 1:
            raise ChaosError(
                f"secondary failure must activate at hop >= 1, got {self.at_hop}"
            )


@dataclass(frozen=True)
class SecondaryRepair:
    """One down link coming back up *during* recovery (a mid-walk repair).

    The repair activates once the network has forwarded ``at_hop``
    recovery hops in total.  ``link`` names the endpoints explicitly, or
    is ``None`` to pick a seeded-random repairable failed link of the
    scenario (a cut link between two live routers).  A repair may also
    target a link this plan's :class:`SecondaryFailure` takes down first
    — that pairing is exactly one flap oscillation.
    """

    at_hop: int = 1
    link: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.at_hop < 1:
            raise ChaosError(
                f"secondary repair must activate at hop >= 1, got {self.at_hop}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, composable description of injected faults."""

    seed: int = 0
    #: Per-hop probability that a recovery packet transmission is lost.
    packet_loss_rate: float = 0.0
    #: Fraction of failed adjacencies whose detection never happens.
    detection_miss_rate: float = 0.0
    #: Fraction of failed adjacencies whose detection is delayed.
    detection_delay_rate: float = 0.0
    #: Network hops after which delayed detections become visible.
    detection_delay_hops: int = 0
    #: Per-hop probability that a collecting-mode header is truncated.
    header_corruption_rate: float = 0.0
    #: Links flapping mid-recovery, in activation order.
    secondary_failures: Tuple[SecondaryFailure, ...] = field(default_factory=tuple)
    #: Down links repaired mid-recovery, in activation order.
    secondary_repairs: Tuple[SecondaryRepair, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ChaosError(f"{name} must be in [0, 1], got {value}")
        if self.detection_miss_rate + self.detection_delay_rate > 1.0:
            raise ChaosError(
                "detection_miss_rate + detection_delay_rate cannot exceed 1"
            )
        if self.detection_delay_hops < 0:
            raise ChaosError(
                f"detection_delay_hops must be >= 0, got {self.detection_delay_hops}"
            )
        if self.detection_delay_rate > 0 and self.detection_delay_hops == 0:
            raise ChaosError(
                "detection_delay_rate needs detection_delay_hops >= 1 "
                "(a zero-hop delay is no delay)"
            )
        # Normalize to tuples so plans built with lists stay hashable.
        object.__setattr__(
            self, "secondary_failures", tuple(self.secondary_failures)
        )
        object.__setattr__(
            self, "secondary_repairs", tuple(self.secondary_repairs)
        )

    def rng(self, stream: str) -> random.Random:
        """An independent deterministic RNG for one injector ``stream``."""
        salt = zlib.crc32(stream.encode("utf-8"))
        return random.Random((self.seed & 0xFFFFFFFF) * 0x1_0000_0000 + salt)

    def is_null(self) -> bool:
        """Whether this plan injects nothing (the idealized world)."""
        return (
            all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
            and not self.secondary_failures
            and not self.secondary_repairs
        )
