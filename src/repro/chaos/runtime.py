"""Shared per-scenario state of one chaos experiment.

One :class:`ChaosRuntime` binds a :class:`~repro.chaos.plan.FaultPlan` to
one failure scenario: it owns the network-wide hop clock that paces
secondary failures and delayed detections, the per-injector random
streams, and the tallies the resilience metrics read back out.  The
degraded view and the chaos engine of one RTR instance share a single
runtime so all injectors observe one consistent timeline.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .. import obs
from ..errors import ChaosError
from ..failures import FailureScenario
from ..topology import Link
from .plan import FaultPlan


class ChaosRuntime:
    """Mutable clock, activation state, and counters of one experiment."""

    def __init__(self, plan: FaultPlan, scenario: FailureScenario) -> None:
        self.plan = plan
        self.scenario = scenario
        #: Total recovery hops forwarded anywhere in the network.
        self.hops = 0
        #: Packets lost to injected per-hop loss.
        self.packets_lost = 0
        #: Headers truncated in flight.
        self.headers_corrupted = 0
        #: Secondary repairs activated so far.
        self.repairs_activated = 0
        #: Secondary-failure links currently active (flapped down).
        self.flapped_links: Set[Link] = set()
        #: The same set as interned link ids — the degraded view's hot
        #: probe checks ids instead of constructing ``Link`` objects.
        self.flapped_lids: Set[int] = set()
        #: Scenario-failed links physically restored mid-recovery.
        self.repaired_links: Set[Link] = set()
        #: The same set as interned link ids.
        self.repaired_lids: Set[int] = set()
        self._loss_rng = plan.rng("packet-loss")
        self._corruption_rng = plan.rng("header-corruption")
        self._pending: List[Tuple[int, Link]] = self._resolve_secondary(plan, scenario)
        self._pending_repairs: List[Tuple[int, Link]] = self._resolve_repairs(
            plan, scenario
        )

    @staticmethod
    def _resolve_secondary(
        plan: FaultPlan, scenario: FailureScenario
    ) -> List[Tuple[int, Link]]:
        """Bind each secondary-failure spec to a concrete live link."""
        topo = scenario.topo
        rng = plan.rng("secondary-failures")
        live_links = sorted(
            link
            for link in topo.links()
            if scenario.is_link_live(link)
            and scenario.is_node_live(link.u)
            and scenario.is_node_live(link.v)
        )
        chosen: Set[Link] = set()
        resolved: List[Tuple[int, Link]] = []
        for spec in plan.secondary_failures:
            if spec.link is not None:
                u, v = spec.link
                if not topo.has_link(u, v):
                    raise ChaosError(
                        f"secondary failure names missing link {u}-{v}"
                    )
                link = Link.of(u, v)
                if not scenario.is_link_live(link):
                    raise ChaosError(
                        f"secondary failure targets already-failed link {link}"
                    )
            else:
                candidates = [l for l in live_links if l not in chosen]
                if not candidates:
                    raise ChaosError(
                        "no live link left to assign to a secondary failure"
                    )
                link = candidates[rng.randrange(len(candidates))]
            chosen.add(link)
            resolved.append((spec.at_hop, link))
        resolved.sort(key=lambda pair: pair[0])
        return resolved

    def _resolve_repairs(
        self, plan: FaultPlan, scenario: FailureScenario
    ) -> List[Tuple[int, Link]]:
        """Bind each secondary-repair spec to a concrete down link.

        A repair may target a scenario-failed cut link between two live
        routers (the repair crew fixed the fiber) or a link this plan's
        secondary failures flap down first (the up half of an
        oscillation).  Links incident to a failed *router* are not
        repairable — the router is still dead.
        """
        if not plan.secondary_repairs:
            return []
        topo = scenario.topo
        rng = plan.rng("secondary-repairs")
        flap_targets = {link for _, link in self._pending}
        candidates = sorted(scenario.cut_links_between_live_nodes() | flap_targets)
        chosen: Set[Link] = set()
        resolved: List[Tuple[int, Link]] = []
        for spec in plan.secondary_repairs:
            if spec.link is not None:
                u, v = spec.link
                if not topo.has_link(u, v):
                    raise ChaosError(
                        f"secondary repair names missing link {u}-{v}"
                    )
                link = Link.of(u, v)
                if not (
                    scenario.is_node_live(link.u) and scenario.is_node_live(link.v)
                ):
                    raise ChaosError(
                        f"secondary repair targets link {link} of a failed router"
                    )
                if scenario.is_link_live(link) and link not in flap_targets:
                    raise ChaosError(
                        f"secondary repair targets live link {link} that no "
                        "secondary failure takes down first"
                    )
            else:
                pool = [l for l in candidates if l not in chosen]
                if not pool:
                    raise ChaosError(
                        "no repairable down link left to assign to a "
                        "secondary repair"
                    )
                link = pool[rng.randrange(len(pool))]
            chosen.add(link)
            resolved.append((spec.at_hop, link))
        resolved.sort(key=lambda pair: pair[0])
        return resolved

    # ------------------------------------------------------------------

    def on_hop(self) -> None:
        """Advance the network hop clock; activate due failures/repairs."""
        self.hops += 1
        while self._pending and self._pending[0][0] <= self.hops:
            _, link = self._pending.pop(0)
            self.flapped_links.add(link)
            obs.inc("chaos.secondary_activated")
            lid = self.scenario.topo.csr().pair_lid.get((link.u, link.v))
            # A repair that activated *before* this failure is overridden:
            # the link is down again.
            self.repaired_links.discard(link)
            if lid is not None:
                self.flapped_lids.add(lid)
                self.repaired_lids.discard(lid)
        while self._pending_repairs and self._pending_repairs[0][0] <= self.hops:
            _, link = self._pending_repairs.pop(0)
            self.repairs_activated += 1
            obs.inc("chaos.repairs_activated")
            lid = self.scenario.topo.csr().pair_lid.get((link.u, link.v))
            if link in self.flapped_links:
                # The up half of a flap oscillation: the link is simply
                # no longer flapped down.
                self.flapped_links.discard(link)
                if lid is not None:
                    self.flapped_lids.discard(lid)
                continue
            self.repaired_links.add(link)
            if lid is not None:
                self.repaired_lids.add(lid)

    def is_link_flapped(self, link: Link) -> bool:
        """Whether ``link`` has been taken down by a secondary failure."""
        return link in self.flapped_links

    def is_link_id_flapped(self, lid: int) -> bool:
        """Interned-id variant of :meth:`is_link_flapped`."""
        return lid in self.flapped_lids

    def is_link_repaired(self, link: Link) -> bool:
        """Whether a scenario-failed ``link`` has been restored mid-walk."""
        return link in self.repaired_links

    def is_link_id_repaired(self, lid: int) -> bool:
        """Interned-id variant of :meth:`is_link_repaired`."""
        return lid in self.repaired_lids

    def sample_packet_loss(self) -> bool:
        """Draw one per-hop loss decision (counts the drop when taken)."""
        rate = self.plan.packet_loss_rate
        if rate <= 0.0:
            return False
        lost = self._loss_rng.random() < rate
        if lost:
            self.packets_lost += 1
            obs.inc("chaos.packets_lost")
        return lost

    def sample_header_corruption(self) -> bool:
        """Draw one per-hop header-truncation decision."""
        rate = self.plan.header_corruption_rate
        if rate <= 0.0:
            return False
        corrupted = self._corruption_rng.random() < rate
        if corrupted:
            self.headers_corrupted += 1
            obs.inc("chaos.headers_corrupted")
        return corrupted

    def pending_secondary_failures(self) -> List[Tuple[int, Link]]:
        """Secondary failures not yet activated, in activation order."""
        return list(self._pending)
