"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``topo list`` — the Table II catalog;
* ``topo build AS1239 -o t.json`` — build and save a catalog topology;
* ``topo stats t.json`` / ``topo stats AS1239`` — structural statistics;
* ``recover`` — run one recovery episode and print the trace;
* ``eval <experiment>`` — regenerate one table/figure (table2, fig7,
  table3, fig8, fig9, fig10, fig11, fig12, fig13, table4), with
  ``--approaches`` accepting any registered scheme name;
* ``schemes`` — list the registered recovery schemes (built-ins plus
  plugins from ``REPRO_SCHEME_MODULES``);
* ``traffic`` — traffic-weighted Table III: apportion a synthetic flow
  population over a seeded demand matrix and weight recovery quality by
  the demand each disrupted pair carries (``--model gravity --flows
  1000000 --parallel``);
* ``soak`` — a crash-recoverable long-horizon run: replay a seeded
  failure timeline (cascades, repairs, flaps) through the scheme
  registry for hours of simulated time, checkpointing after every
  batch; ``--resume <run-dir>`` continues after a kill with a final
  summary byte-identical to an uninterrupted run (exit 3 = interrupted
  with checkpoint);
* ``obs report`` — render the manifest/metrics/span breakdown of an
  instrumented run (``REPRO_OBS=1 repro eval ...`` writes one); add
  ``--json`` for the machine-readable document;
* ``query`` — the persistent run store (``repro.store``): ``ingest``
  obs-runs/BENCH json/results dirs into a sqlite store, then ``list`` /
  ``show`` / ``diff`` / ``trend`` / ``regress`` across every recorded
  run; ``regress`` compares the latest stored rows against pinned
  ``BENCH_*.json`` baselines and exits nonzero on a regression;
* ``render`` — draw a topology/failure/recovery episode as SVG.

Error hygiene: usage-level failures (unknown topology or scheme, bad
scenario seed, malformed soak config) print one ``error:`` line to
stderr and exit 2 — never a traceback.

Logging: the ``repro`` logger hierarchy is silent by default; ``--log``
(or ``REPRO_LOG=INFO``) attaches a stderr handler at the given level.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__, obs
from .core import RTR
from .errors import ReproError
from .failures import FailureScenario, LocalView, random_circle
from .geometry import Circle, Point
from .topology import Topology, isp_catalog, save_topology, topology_from_spec
from .topology.validation import stats as topo_stats


def _load_or_build(spec: str, seed: int) -> Topology:
    """Resolve a topology spec (grid:RxC, AS name, or JSON path)."""
    return topology_from_spec(spec, seed=seed)


def _usage_error(exc: BaseException) -> int:
    """The one-line-error-to-stderr, exit-2 convention of this CLI."""
    print(f"error: {exc}", file=sys.stderr)
    return 2


def _apply_spt_cache_entries(args: argparse.Namespace) -> Optional[int]:
    """Export ``--spt-cache-entries`` so every cache the sweep builds sees it.

    The drivers construct their ``SPTCache`` pools internally (one per
    topology, plus per-worker pools in parallel runs), so the capacity
    rides on :data:`repro.routing.cache.SPT_CACHE_ENV` — pool workers
    inherit the environment.  Returns 2 (usage error) on a bad value.
    """
    entries = getattr(args, "spt_cache_entries", None)
    if entries is None:
        return None
    if entries < 1:
        print(
            f"error: --spt-cache-entries must be >= 1, got {entries}",
            file=sys.stderr,
        )
        return 2
    from .routing.cache import SPT_CACHE_ENV

    os.environ[SPT_CACHE_ENV] = str(entries)
    return None


def _scenario_from_args(topo: Topology, args: argparse.Namespace) -> FailureScenario:
    if args.cx is not None and args.cy is not None and args.radius is not None:
        region = Circle(Point(args.cx, args.cy), args.radius)
        return FailureScenario.from_region(topo, region)
    rng = random.Random(args.seed)
    scenario = FailureScenario.from_region(topo, random_circle(rng))
    attempts = 0
    while not scenario.failed_links and attempts < 1000:
        scenario = FailureScenario.from_region(topo, random_circle(rng))
        attempts += 1
    return scenario


# ----------------------------------------------------------------------
# Subcommand handlers
# ----------------------------------------------------------------------


def cmd_topo(args: argparse.Namespace) -> int:
    from .eval.report import format_table

    if args.topo_command == "list":
        print(format_table(isp_catalog.summary_rows(include_extended=args.extended)))
        return 0
    if args.topo_command == "build":
        topo = isp_catalog.build(args.name.upper(), seed=args.seed)
        if args.output:
            save_topology(topo, args.output)
            print(f"wrote {args.output}")
        else:
            print(topo)
        return 0
    if args.topo_command == "stats":
        topo = _load_or_build(args.spec, args.seed)
        print(format_table([topo_stats(topo)]))
        return 0
    raise AssertionError(args.topo_command)


def cmd_recover(args: argparse.Namespace) -> int:
    try:
        return _run_recover(args)
    except (ReproError, FileNotFoundError) as exc:
        return _usage_error(exc)


def _run_recover(args: argparse.Namespace) -> int:
    topo = _load_or_build(args.topology, args.seed)
    scenario = _scenario_from_args(topo, args)
    if not scenario.failed_links:
        if args.cx is not None and args.cy is not None and args.radius is not None:
            # An explicitly harmless circle is a ran-but-found-nothing
            # outcome (exit 1), not a usage error.
            print("the failure area destroyed nothing; adjust --cx/--cy/--radius")
            return 1
        return _usage_error(
            f"seed {args.seed} found no damaging failure region on "
            f"{args.topology} after 1000 draws; try another --seed"
        )
    print(f"failure: {len(scenario.failed_nodes)} routers, {len(scenario.failed_links)} links down")

    rtr = RTR(topo, scenario)
    view = LocalView(scenario)

    pair = _pick_pair(args, topo, scenario, rtr, view)
    if pair is None:
        print("no failed routing path with a live source found")
        return 1
    source, destination = pair

    try:
        result = rtr.recover_flow(source, destination)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}")
        return 1
    initiator, trigger = rtr.find_initiator(source, destination)
    phase1 = rtr.phase1_for(initiator, trigger)
    print(f"flow v{source} -> v{destination}: initiator v{initiator}")
    print(
        f"phase 1: {phase1.hops} hops, {phase1.duration * 1000:.1f} ms, "
        f"{len(phase1.collected_failed_links)} failed links collected"
    )
    if result.delivered:
        print(f"recovered: {result.path}")
    else:
        print("destination unreachable: packets discarded at the initiator")
    return 0


def _pick_pair(args, topo, scenario, rtr, view):
    if args.source is not None and args.destination is not None:
        return args.source, args.destination
    for source in sorted(scenario.live_nodes()):
        for destination in sorted(scenario.live_nodes()):
            if source == destination:
                continue
            path = rtr.routing.path(source, destination)
            if path is None:
                continue
            if any(not view.is_neighbor_reachable(a, b) for a, b in path.hops()):
                return source, destination
    return None


def _parse_approaches(spec: Optional[str]) -> Optional[tuple]:
    """Split and registry-validate a ``--approaches`` value.

    Returns ``None`` when no value was given (drivers keep their
    defaults); raises the registry's :class:`ValueError` — listing
    registered schemes and the nearest match — on an unknown name.
    """
    if not spec:
        return None
    from .schemes import validate_names

    approaches = tuple(part.strip() for part in spec.split(",") if part.strip())
    validate_names(approaches)
    return approaches


def cmd_eval(args: argparse.Namespace) -> int:
    topologies = tuple(args.topos.split(",")) if args.topos else tuple(isp_catalog.names())
    n = args.cases
    try:
        approaches = _parse_approaches(args.approaches)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    bad = _apply_spt_cache_entries(args)
    if bad is not None:
        return bad

    name = args.experiment
    config = {"experiment": name, "cases": n, "topologies": list(topologies)}
    if approaches is not None:
        config["approaches"] = list(approaches)
    with obs.run_context(
        f"eval-{name}",
        seed=args.seed,
        config=config,
        topologies=topologies,
    ) as manifest:
        try:
            code = _run_eval_experiment(args, name, topologies, n, approaches)
        except (ReproError, FileNotFoundError) as exc:
            return _usage_error(exc)
    if manifest is not None and manifest.artifacts_dir:
        print(f"obs artifacts: {manifest.artifacts_dir}", file=sys.stderr)
    return code


def _run_eval_experiment(
    args: argparse.Namespace,
    name: str,
    topologies: tuple,
    n: int,
    approaches: Optional[tuple] = None,
) -> int:
    from .eval import experiments
    from .eval.report import format_cdf, format_nested_table, format_series, format_table

    # Drivers keep their paper-default comparison sets unless overridden.
    extra = {} if approaches is None else {"approaches": approaches}
    if name == "table2":
        print(format_table(experiments.table2_topologies(seed=args.seed)))
    elif name == "fig7":
        out = experiments.fig7_phase1_duration(topologies, n, n // 2, args.seed)
        for topo_name, data in out.items():
            print(f"{topo_name:8s} {format_cdf(data['cdf'])}")
    elif name == "table3":
        print(
            format_nested_table(
                experiments.table3_recoverable(topologies, n, args.seed, **extra)
            )
        )
    elif name in ("fig8", "fig9", "fig12", "fig13"):
        driver = {
            "fig8": experiments.fig8_stretch,
            "fig9": experiments.fig9_sp_computations,
            "fig12": experiments.fig12_wasted_computation,
            "fig13": experiments.fig13_wasted_transmission,
        }[name]
        out = driver(topologies, n, args.seed, **extra)
        for topo_name, series in out.items():
            for approach, cdf in series.items():
                print(f"{topo_name:8s} {approach:4s} {format_cdf(cdf)}")
    elif name == "fig10":
        out = experiments.fig10_transmission_timeline(topologies, n, args.seed, **extra)
        for topo_name, series in out.items():
            for approach, pts in series.items():
                print(f"{topo_name:8s} {approach:4s} {format_series(pts)}")
    elif name == "fig11":
        out = experiments.fig11_irrecoverable_fraction(
            topologies, n_areas_per_radius=max(10, n // 10), seed=args.seed
        )
        for topo_name, series in out.items():
            print(f"{topo_name:8s} {format_series(series)}")
    elif name == "table4":
        table = experiments.table4_wasted_summary(topologies, n, args.seed, **extra)
        print(format_nested_table({k: v for k, v in table.items() if k != "Savings"}))
        print(f"savings: {table.get('Savings')}")
    else:
        print(f"unknown experiment {name!r}")
        return 2
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    from .schemes import get_scheme, scheme_names

    names = scheme_names()
    width = max(len(n) for n in names)
    for name in names:
        print(f"{name:<{width}s}  {get_scheme(name).describe()}")
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    from .eval.report import format_nested_table
    from .traffic import MATRIX_MODELS

    if args.model not in MATRIX_MODELS:
        print(
            f"unknown traffic model {args.model!r}; "
            f"choose from {sorted(MATRIX_MODELS)}",
            file=sys.stderr,
        )
        return 2
    topologies = tuple(args.topos.split(",")) if args.topos else tuple(isp_catalog.names())
    try:
        approaches = _parse_approaches(args.approaches) or ("RTR", "FCP")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    bad = _apply_spt_cache_entries(args)
    if bad is not None:
        return bad
    if args.headroom is not None and args.headroom <= 0.0:
        print(f"error: headroom must be > 0, got {args.headroom}", file=sys.stderr)
        return 2
    if args.utilization_cap is not None and args.utilization_cap <= 0.0:
        print(
            f"error: utilization cap must be > 0, got {args.utilization_cap}",
            file=sys.stderr,
        )
        return 2
    if args.utilization_cap is not None and not args.congestion_aware:
        print(
            "error: --utilization-cap requires --congestion-aware",
            file=sys.stderr,
        )
        return 2
    config = {
        "experiment": "traffic",
        "model": args.model,
        "flows": args.flows,
        "scenarios": args.scenarios,
        "topologies": list(topologies),
        "approaches": list(approaches),
    }
    if args.congestion_aware:
        config["congestion_aware"] = True
    if args.headroom is not None:
        config["headroom"] = args.headroom
    if args.utilization_cap is not None:
        config["utilization_cap"] = args.utilization_cap
    with obs.run_context(
        "traffic", seed=args.seed, config=config, topologies=topologies
    ) as manifest:
        if args.parallel:
            from .eval.parallel import parallel_traffic

            table = parallel_traffic(
                topologies,
                args.scenarios,
                seed=args.seed,
                model=args.model,
                total_demand=args.demand,
                n_flows=args.flows,
                approaches=approaches,
                jobs=args.jobs,
                congestion_aware=args.congestion_aware,
                headroom=args.headroom,
                utilization_cap=args.utilization_cap,
            )
        else:
            from .eval.experiments import traffic_weighted_table3

            table = traffic_weighted_table3(
                topologies,
                n_scenarios=args.scenarios,
                seed=args.seed,
                model=args.model,
                total_demand=args.demand,
                n_flows=args.flows,
                approaches=approaches,
                congestion_aware=args.congestion_aware,
                headroom=args.headroom,
                utilization_cap=args.utilization_cap,
            )
        print(format_nested_table(table))
    if manifest is not None and manifest.artifacts_dir:
        print(f"obs artifacts: {manifest.artifacts_dir}", file=sys.stderr)
    return 0


def cmd_soak(args: argparse.Namespace) -> int:
    from .soak import SoakConfig, SoakService
    from .timeline import TimelinePlan

    try:
        if args.resume:
            service = SoakService.resume(Path(args.resume))
        else:
            plan = TimelinePlan(
                seed=args.seed,
                duration_s=args.duration,
                n_failures=args.failures,
                cascade_probability=args.cascade_probability,
                cascade_mode=args.cascade_mode,
                n_flapping_links=args.flapping_links,
                flap_period_s=args.flap_period,
                flap_cycles=args.flap_cycles,
            )
            config = SoakConfig(
                topology=args.topology,
                approaches=_parse_approaches(args.approaches) or ("RTR", "OSPF"),
                model=args.model,
                total_demand=args.demand,
                traffic_seed=args.seed,
                n_flows=args.flows,
                checkpoint_every=args.checkpoint_every,
                workers=args.workers,
                timeline=plan,
            )
            run_dir = (
                Path(args.run_dir)
                if args.run_dir
                else obs.default_run_dir()
                / f"soak-{obs.config_hash(config.to_dict())}"
            )
            service = SoakService.start(config, run_dir)
    except (ReproError, FileNotFoundError, ValueError) as exc:
        return _usage_error(exc)

    print(f"soak run: {service.run_dir}", file=sys.stderr)
    print(
        f"timeline: {len(service.events)} events across "
        f"{len(service.windows)} convergence windows "
        f"(starting at window {service.cursor})",
        file=sys.stderr,
    )
    status, summary = service.run()
    if status == "interrupted":
        print(
            "interrupted — checkpoint written; resume with "
            f"`repro soak --resume {service.run_dir}`",
            file=sys.stderr,
        )
        return 3
    assert summary is not None
    print(
        f"{'approach':10s} {'delivered':>10s} {'recovery':>9s} "
        f"{'stretch':>8s} {'p1 loss':>9s}"
    )
    for name in service.config.approaches:
        row = summary["approaches"][name]
        print(
            f"{name:10s} {row['demand_delivered_fraction']:10.4f} "
            f"{row['demand_recovery_rate']:9.4f} "
            f"{row['demand_weighted_stretch']:8.3f} "
            f"{row['phase1_loss']:9.3f}"
        )
    print(f"summary: {service.run_dir / 'summary.json'}", file=sys.stderr)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    import json as _json

    if args.obs_command == "report":
        if args.run_dir:
            run_dir = Path(args.run_dir)
        else:
            run_dir = obs.latest_run_dir(obs.default_run_dir())
            if run_dir is None:
                print(
                    "no instrumented runs found under "
                    f"{obs.default_run_dir()} — run e.g. "
                    "`REPRO_OBS=1 repro eval table3` first",
                    file=sys.stderr,
                )
                return 1
        if not run_dir.is_dir():
            print(f"error: run directory {run_dir} does not exist", file=sys.stderr)
            return 1
        if not (run_dir / "manifest.json").exists():
            print(
                f"error: {run_dir} is not an instrumented run "
                "(no manifest.json — pass a directory written by "
                "REPRO_OBS=1)",
                file=sys.stderr,
            )
            return 1
        try:
            run = obs.load_run(run_dir)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load run {run_dir}: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(_json.dumps(obs.run_report_doc(run), indent=2, sort_keys=True))
        else:
            print(obs.render_report(run, top=args.top))
        return 0
    raise AssertionError(args.obs_command)


def cmd_query(args: argparse.Namespace) -> int:
    import json as _json

    from . import store as store_mod
    from .errors import StoreError

    store_path = Path(args.store) if args.store else store_mod.default_store_path()

    if args.query_command == "ingest":
        try:
            with store_mod.RunStore(store_path) as store:
                totals: dict = {}
                for raw in args.paths:
                    counts = store_mod.ingest_path(store, Path(raw))
                    for kind, n in counts.items():
                        totals[kind] = totals.get(kind, 0) + n
                    print(
                        f"ingested {raw}: "
                        + ", ".join(f"{n} {kind}" for kind, n in sorted(counts.items()))
                    )
                print(
                    f"store {store_path}: "
                    + ", ".join(f"{v} {k}" for k, v in sorted(store.counts().items()))
                )
        except (StoreError, OSError) as exc:
            return _usage_error(exc)
        return 0

    # Every other subcommand reads an existing store.
    if not Path(store_path).exists():
        return _usage_error(
            f"run store {store_path} does not exist — create one with "
            "`repro query ingest ...` or set REPRO_STORE and run an "
            "instrumented command"
        )
    try:
        with store_mod.RunStore(store_path) as store:
            return _run_query(args, store, store_mod, _json)
    except StoreError as exc:
        return _usage_error(exc)


def _run_query(args: argparse.Namespace, store, store_mod, _json) -> int:
    if args.query_command == "list":
        rows, columns = store_mod.list_rows(
            store,
            kind=args.kind,
            benchmark=args.benchmark,
            scheme=args.scheme,
            topology=args.topology,
            config_hash=args.config_hash,
        )
        print(store_mod.render_rows(rows, fmt=args.format, columns=columns))
        return 0
    if args.query_command == "show":
        if args.bench_file:
            doc = store.bench_file_doc(args.bench_file)
        elif args.ref:
            doc = store_mod.show_doc(store, args.ref)
        else:
            return _usage_error("show needs a run reference or --bench-file")
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.query_command == "diff":
        diff = store_mod.diff_runs(store, args.run_a, args.run_b)
        if args.format == "json":
            print(_json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(store_mod.render_diff(diff))
        return 0
    if args.query_command == "trend":
        series = store_mod.trend_series(
            store,
            args.metric,
            benchmark=args.benchmark,
            run_name=args.run,
        )
        print(store_mod.render_trend(series, fmt=args.format))
        return 0
    if args.query_command == "regress":
        baselines = [Path(p) for p in args.baseline] if args.baseline else sorted(
            Path("benchmarks").glob("BENCH_*.json")
        )
        if not baselines:
            return _usage_error(
                "no baseline files: pass --baseline FILE or run from a "
                "checkout containing benchmarks/BENCH_*.json"
            )
        thresholds = dict(store_mod.DEFAULT_THRESHOLDS)
        thresholds.update(store_mod.parse_threshold_overrides(args.threshold or []))
        verdicts, code = store_mod.run_regress(
            store,
            baselines,
            thresholds=thresholds,
            benchmark=args.benchmark,
            strict=args.strict,
        )
        for verdict in verdicts:
            print(verdict.line())
        print(store_mod.summary_line(verdicts))
        return code
    raise AssertionError(args.query_command)


def cmd_render(args: argparse.Namespace) -> int:
    from .viz import render_topology, save_svg

    topo = _load_or_build(args.topology, args.seed)
    scenario = None
    walk = recovery = None
    if args.failure:
        scenario = _scenario_from_args(topo, args)
        rtr = RTR(topo, scenario)
        view = LocalView(scenario)
        pair = _pick_pair(args, topo, scenario, rtr, view)
        if pair is not None:
            result = rtr.recover_flow(*pair)
            initiator, trigger = rtr.find_initiator(*pair)
            walk = rtr.phase1_for(initiator, trigger).walk
            if result.delivered:
                recovery = list(result.path.nodes)
    svg = render_topology(
        topo,
        scenario=scenario,
        walk=walk,
        recovery_path=recovery,
        labels=not args.no_labels,
        title=args.topology,
    )
    save_svg(svg, args.output)
    print(f"wrote {args.output}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RTR reproduction toolkit"
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--log",
        metavar="LEVEL",
        help="enable repro logging at LEVEL (overrides REPRO_LOG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topo = sub.add_parser("topo", help="topology catalog operations")
    topo_sub = topo.add_subparsers(dest="topo_command", required=True)
    topo_list = topo_sub.add_parser("list", help="show the Table II catalog")
    topo_list.add_argument("--extended", action="store_true")
    topo_build = topo_sub.add_parser("build", help="build a catalog topology")
    topo_build.add_argument("name")
    topo_build.add_argument("--seed", type=int, default=0)
    topo_build.add_argument("-o", "--output")
    topo_stats_p = topo_sub.add_parser("stats", help="structural statistics")
    topo_stats_p.add_argument("spec", help="AS name or topology JSON path")
    topo_stats_p.add_argument("--seed", type=int, default=0)
    topo.set_defaults(func=cmd_topo)

    recover = sub.add_parser("recover", help="run one recovery episode")
    recover.add_argument("--topology", default="AS1239")
    recover.add_argument("--seed", type=int, default=0)
    recover.add_argument("--cx", type=float)
    recover.add_argument("--cy", type=float)
    recover.add_argument("--radius", type=float)
    recover.add_argument("--source", type=int)
    recover.add_argument("--destination", type=int)
    recover.set_defaults(func=cmd_recover)

    ev = sub.add_parser("eval", help="regenerate a table/figure")
    ev.add_argument(
        "experiment",
        choices=[
            "table2", "fig7", "table3", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "table4",
        ],
    )
    ev.add_argument("--cases", type=int, default=150)
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument(
        "--spt-cache-entries",
        type=int,
        help="LRU capacity of the shortest-path-tree pools (default 1024); "
        "raise for large scale: topologies if routing.sptcache.evictions grows",
    )
    ev.add_argument("--topos", help="comma-separated topology specs: AS names, grid:RxC, scale:N, file:PATH (default: the AS catalog)")
    ev.add_argument(
        "--approaches",
        help="comma-separated registered scheme names "
        "(default: the experiment's paper comparison set; see `repro schemes`)",
    )
    ev.set_defaults(func=cmd_eval)

    schemes = sub.add_parser(
        "schemes", help="list the registered recovery schemes"
    )
    schemes.set_defaults(func=cmd_schemes)

    traffic = sub.add_parser(
        "traffic", help="traffic-weighted Table III (demand-driven workload)"
    )
    traffic.add_argument(
        "--model",
        default="gravity",
        help="demand model: gravity, uniform, or hotspot",
    )
    traffic.add_argument(
        "--flows", type=int, default=1_000_000, help="synthetic flow population"
    )
    traffic.add_argument(
        "--demand",
        type=float,
        default=None,
        help="aggregate matrix demand (default: 1000.0)",
    )
    traffic.add_argument(
        "--scenarios", type=int, default=10, help="failure events per topology"
    )
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument(
        "--spt-cache-entries",
        type=int,
        help="LRU capacity of the shortest-path-tree pools (default 1024)",
    )
    traffic.add_argument("--topos", help="comma-separated topology specs: AS names, grid:RxC, scale:N, file:PATH (default: the AS catalog)")
    traffic.add_argument(
        "--approaches", default="RTR,FCP", help="comma-separated approach names"
    )
    traffic.add_argument(
        "--parallel", action="store_true", help="scenario-sharded process pool"
    )
    traffic.add_argument(
        "--jobs", type=int, default=None, help="worker count for --parallel"
    )
    traffic.add_argument(
        "--congestion-aware",
        action="store_true",
        help="live-load loop: penalized phase-2 selection + per-case "
        "load feedback (repro.te)",
    )
    traffic.add_argument(
        "--headroom",
        type=float,
        default=None,
        help="capacity provisioning factor over baseline load (default 2.0)",
    )
    traffic.add_argument(
        "--utilization-cap",
        type=float,
        default=None,
        help="admission control: shed recoveries that would push a link "
        "past this utilization (requires --congestion-aware)",
    )
    traffic.set_defaults(func=cmd_traffic)

    soak = sub.add_parser(
        "soak", help="crash-recoverable long-horizon timeline run"
    )
    soak.add_argument(
        "--resume",
        metavar="RUN_DIR",
        help="continue a journaled run (all other flags are ignored)",
    )
    soak.add_argument(
        "--topology",
        default="grid:6x6:400",
        help="grid:RxC[:SPACING], AS name, or topology JSON path",
    )
    soak.add_argument("--seed", type=int, default=0, help="timeline + traffic seed")
    soak.add_argument(
        "--duration", type=float, default=3600.0, help="simulated seconds"
    )
    soak.add_argument(
        "--failures", type=int, default=3, help="primary failure regions"
    )
    soak.add_argument(
        "--flapping-links", type=int, default=1, help="oscillating links"
    )
    soak.add_argument(
        "--flap-period", type=float, default=60.0, help="flap period (s)"
    )
    soak.add_argument(
        "--flap-cycles", type=int, default=3, help="down/up cycles per flapping link"
    )
    soak.add_argument(
        "--cascade-probability",
        type=float,
        default=0.35,
        help="chance each failure triggers a secondary region",
    )
    soak.add_argument(
        "--cascade-mode",
        choices=["proximity", "load"],
        default="proximity",
        help="where secondary regions strike",
    )
    soak.add_argument(
        "--approaches", default="RTR,OSPF", help="comma-separated scheme names"
    )
    soak.add_argument(
        "--model", default="gravity", help="traffic model: gravity, uniform, hotspot"
    )
    soak.add_argument(
        "--flows", type=int, default=100_000, help="synthetic flow population"
    )
    soak.add_argument(
        "--demand", type=float, default=1000.0, help="aggregate matrix demand"
    )
    soak.add_argument(
        "--checkpoint-every",
        type=int,
        default=4,
        help="windows per checkpointed batch",
    )
    soak.add_argument("--workers", type=int, default=2, help="shard pool size")
    soak.add_argument(
        "--run-dir",
        help="run directory (default: obs runs dir / soak-<config-hash>)",
    )
    soak.set_defaults(func=cmd_soak)

    obs_p = sub.add_parser("obs", help="observability artifacts")
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render the report of an instrumented run"
    )
    obs_report.add_argument(
        "run_dir",
        nargs="?",
        help="run directory (default: latest under REPRO_OBS_DIR or ./obs-runs)",
    )
    obs_report.add_argument("--top", type=int, default=15, help="counters to show")
    obs_report.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report document instead of text",
    )
    obs_p.set_defaults(func=cmd_obs)

    query = sub.add_parser(
        "query", help="query the persistent run store (repro.store)"
    )
    query.add_argument(
        "--store",
        help="store path (default: REPRO_STORE, else <obs run dir>/store.sqlite)",
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)

    q_ingest = query_sub.add_parser(
        "ingest", help="ingest run dirs / BENCH json / results dirs"
    )
    q_ingest.add_argument(
        "paths",
        nargs="+",
        help="obs-runs base or run dir, BENCH_*.json, or benchmarks/results dir",
    )

    q_list = query_sub.add_parser("list", help="list stored runs or bench rows")
    q_list.add_argument(
        "--kind", choices=["runs", "bench", "artifacts"], default="runs"
    )
    q_list.add_argument("--benchmark", help="filter by run/bench name")
    q_list.add_argument("--scheme", help="filter runs by configured scheme")
    q_list.add_argument("--topology", help="filter runs by topology id")
    q_list.add_argument("--config-hash", help="filter by config hash")
    q_list.add_argument(
        "--format", choices=["table", "csv", "json"], default="table"
    )

    q_show = query_sub.add_parser("show", help="full JSON document of one run")
    q_show.add_argument(
        "ref",
        nargs="?",
        help="run id, config hash, or run/bench name (latest match wins)",
    )
    q_show.add_argument(
        "--bench-file",
        help="reconstruct a whole BENCH_*.json from latest stored rows",
    )

    q_diff = query_sub.add_parser("diff", help="compare two stored runs")
    q_diff.add_argument("run_a")
    q_diff.add_argument("run_b")
    q_diff.add_argument("--format", choices=["table", "json"], default="table")

    q_trend = query_sub.add_parser(
        "trend", help="per-config time series of one metric"
    )
    q_trend.add_argument(
        "metric",
        help="bench metric, dotted for nested (wall_s, span_ms.eval.sweep)",
    )
    q_trend.add_argument("--benchmark", help="restrict to one bench name")
    q_trend.add_argument("--run", help="restrict to one stored run name")
    q_trend.add_argument(
        "--format", choices=["table", "csv", "json"], default="table"
    )

    q_regress = query_sub.add_parser(
        "regress", help="latest stored rows vs pinned BENCH baselines"
    )
    q_regress.add_argument(
        "--baseline",
        action="append",
        metavar="FILE",
        help="baseline BENCH json (repeatable; default benchmarks/BENCH_*.json)",
    )
    q_regress.add_argument(
        "--threshold",
        action="append",
        metavar="METRIC=FRACTION",
        help="override a relative-change threshold (e.g. wall_s=0.5)",
    )
    q_regress.add_argument("--benchmark", help="gate only this bench name")
    q_regress.add_argument(
        "--strict",
        action="store_true",
        help="also fail when a baseline entry has no stored row (skip)",
    )
    query.set_defaults(func=cmd_query)

    render = sub.add_parser("render", help="render a topology as SVG")
    render.add_argument("--topology", default="AS1239")
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--failure", action="store_true", help="add a random failure")
    render.add_argument("--cx", type=float)
    render.add_argument("--cy", type=float)
    render.add_argument("--radius", type=float)
    render.add_argument("--source", type=int)
    render.add_argument("--destination", type=int)
    render.add_argument("--no-labels", action="store_true")
    render.add_argument("-o", "--output", default="topology.svg")
    render.set_defaults(func=cmd_render)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    level = args.log or os.environ.get("REPRO_LOG")
    if level:
        obs.configure_logging(level)
    try:
        return args.func(args)
    except ReproError as exc:
        # Safety net: any repro-domain failure a handler did not turn
        # into a message itself still exits 2 with one line, never a
        # traceback.
        return _usage_error(exc)
    except BrokenPipeError:
        # Output was piped to a consumer that closed early (e.g. head);
        # suppress the traceback and let the pipe's verdict stand.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
