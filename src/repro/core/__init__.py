"""RTR — Reactive Two-phase Rerouting (the paper's contribution)."""

from .sweep import first_hop, neighbor_sweep_order, select_next_hop
from .constraints import CrossLinkState
from .phase1 import Phase1Result, run_phase1
from .exhaustive import run_exhaustive_phase1
from .phase2 import Phase2Engine, Phase2Result, run_phase2
from .rtr import APPROACH_NAME, RTR, RTRConfig
from .multiarea import MultiAreaResult, MultiAreaRTR

__all__ = [
    "first_hop",
    "neighbor_sweep_order",
    "select_next_hop",
    "CrossLinkState",
    "Phase1Result",
    "run_phase1",
    "run_exhaustive_phase1",
    "Phase2Engine",
    "Phase2Result",
    "run_phase2",
    "APPROACH_NAME",
    "RTR",
    "RTRConfig",
    "MultiAreaResult",
    "MultiAreaRTR",
]
