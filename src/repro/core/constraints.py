"""The cross-link constraints of §III-C.

On a general (non-planar) graph the bare sweeping rule can fail to enclose
the failure area (Fig. 4) or traverse links in both directions needlessly
(Fig. 5).  The paper fixes both with two constraints on the forwarding
path:

* **Constraint 1** — the path must not cross the links between the
  recovery initiator and its unreachable neighbors;
* **Constraint 2** — the path must not contain cross links.

Both are enforced through the ``cross_link`` header field: a candidate link
that crosses *any* link recorded in ``cross_link`` is excluded from
selection.  :class:`CrossLinkState` wraps that field plus the two update
rules:

* the initiator seeds ``cross_link`` with each of its unreachable-neighbor
  links that crosses other links (Constraint 1's enforcement),
* after selecting link ``e_{j,m}``, if some link crosses ``e_{j,m}`` but is
  not already excluded, ``e_{j,m}`` itself is recorded (Constraint 2's
  enforcement).
"""

from __future__ import annotations

from typing import List, Set

from ..failures import LocalView
from ..simulator import RecoveryHeader
from ..topology import Link, Topology


class CrossLinkState:
    """The ``cross_link`` header field and its exclusion semantics.

    Keeps a live :class:`set` alongside the header's insertion-ordered list
    so exclusion checks are O(candidate's crossing degree).
    """

    def __init__(self, topo: Topology, header: RecoveryHeader) -> None:
        self.topo = topo
        self.header = header
        self._recorded: Set[Link] = set(header.cross_links)
        # Everything barred by the recorded set, maintained incrementally:
        # crossing is symmetric, so "candidate crosses some recorded link"
        # is exactly "candidate is in the union of the recorded links'
        # crosser sets".  Keeping the union live makes exclusion checks
        # O(1) instead of one set intersection per candidate.
        self._excluded: Set[Link] = set()
        for link in self._recorded:
            self._excluded |= topo.cross_links(link)

    def record(self, link: Link) -> bool:
        """Record ``link`` in ``cross_link``; True when newly added."""
        if link in self._recorded:
            return False
        self._recorded.add(link)
        self._excluded |= self.topo.cross_links(link)
        self.header.record_cross(link)
        return True

    def is_excluded(self, candidate: Link) -> bool:
        """Whether ``candidate`` crosses any recorded link (and so is barred)."""
        return candidate in self._excluded

    def seed_initiator_links(self, view: LocalView, initiator: int) -> List[Link]:
        """Constraint 1 seeding at the recovery initiator.

        For each unreachable neighbor ``v_j`` of the initiator, record
        ``e_{i,j}`` in ``cross_link`` if it crosses other links.  Returns
        the links recorded.
        """
        recorded: List[Link] = []
        for neighbor in view.unreachable_neighbors(initiator):
            link = Link.of(initiator, neighbor)
            if self.topo.cross_links(link) and self.record(link):
                recorded.append(link)
        return recorded

    def after_selection(self, selected: Link) -> bool:
        """Constraint 2 bookkeeping after the sweep picked ``selected``.

        If a link crosses ``selected`` and is not already excluded by the
        recorded set, record ``selected`` so that crossing link can never be
        chosen later.  Returns True when ``selected`` was recorded.
        """
        for crosser in self.topo.cross_links(selected):
            if not self.is_excluded(crosser):
                return self.record(selected)
        return False

    def recorded_links(self) -> Set[Link]:
        """The current contents of ``cross_link`` as a set."""
        return set(self._recorded)
