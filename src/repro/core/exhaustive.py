"""Exhaustive failure-information collection (the road not taken, §III-C).

The paper observes: *"Recording all failed links requires visiting every
node that is adjacent to the failure area and reachable from the recovery
initiator.  This usually leads to a much longer forwarding path and a more
complex forwarding rule than the current RTR design."*

This module implements that alternative so the trade-off can be measured
(``benchmarks/bench_ablations.py``): a packet performs a depth-first
traversal of the initiator's surviving component, so *every* locally
detectable failed link is collected and phase 2 computes on the complete
``E2``-between-live-nodes.  The price is a walk of up to ``2 * |links|``
hops on the whole component (not just the area boundary) and a header
that must carry the visited-node list for the DFS to know where it has
been.

Header accounting: the visited-node list is carried in the header's
``source_route`` field — byte-wise identical (16 bits per node id) to how
a real implementation would encode it.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..errors import SimulationError
from ..failures import LocalView
from ..simulator import (
    ForwardingEngine,
    Mode,
    Packet,
    RecoveryAccounting,
    RecoveryHeader,
    walk_hop_budget,
)
from ..topology import Link, Topology
from .phase1 import Phase1Result, _record_failures_at
from .sweep import neighbor_sweep_order


def run_exhaustive_phase1(
    topo: Topology,
    view: LocalView,
    initiator: int,
    trigger_neighbor: int,
    engine: ForwardingEngine,
    accounting: Optional[RecoveryAccounting] = None,
) -> Phase1Result:
    """Collect failure information by DFS over the surviving component.

    Returns a :class:`Phase1Result` (same shape as the sweep collector's)
    whose ``collected_failed_links`` is *complete*: every failed link with
    at least one live endpoint reachable from the initiator, except links
    incident to the initiator itself (which it knows locally, §III-B).
    """
    if view.is_neighbor_reachable(initiator, trigger_neighbor):
        raise SimulationError(
            f"exhaustive phase 1 invoked at {initiator} but trigger neighbor "
            f"{trigger_neighbor} is reachable"
        )
    accounting = accounting if accounting is not None else RecoveryAccounting()
    header = RecoveryHeader(mode=Mode.COLLECTING, rec_init=initiator)
    packet = Packet(source=initiator, destination=initiator, header=header)

    local_failed = [
        Link.of(initiator, nb) for nb in view.unreachable_neighbors(initiator)
    ]

    visited: Set[int] = {initiator}
    header.source_route.append(initiator)  # visited list, byte-accounted
    stack: List[int] = []  # DFS parent chain (for backtracking hops)
    field_trace: List[tuple] = []

    def decide(current: int, pkt: Packet) -> Optional[int]:
        _record_failures_at(current, initiator, view, pkt.header)
        field_trace.append(
            (current, tuple(pkt.header.failed_links), tuple(pkt.header.cross_links))
        )
        # Deterministic neighbor order: reuse the sweep ordering relative
        # to the previous hop (or the trigger at the very start).
        reference = stack[-1] if stack else trigger_neighbor
        for _angle, _tb, nb in neighbor_sweep_order(topo, current, reference):
            if nb in visited:
                continue
            if not view.is_neighbor_reachable(current, nb):
                continue
            visited.add(nb)
            pkt.header.source_route.append(nb)
            stack.append(current)
            return nb
        # Exhausted: backtrack toward the initiator.
        if stack:
            return stack.pop()
        return None  # back at the initiator with nothing left

    walk = engine.walk(
        packet, decide, accounting, max_hops=walk_hop_budget(topo.link_count)
    )
    return Phase1Result(
        initiator=initiator,
        walk=walk,
        collected_failed_links=list(header.failed_links),
        cross_links=[],
        local_failed_links=local_failed,
        hops=len(walk) - 1,
        duration=accounting.clock,
        header_timeline=list(accounting.header_timeline),
        field_trace=field_trace,
    )
