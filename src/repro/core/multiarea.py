"""Recovery across multiple failure areas (§III-E).

RTR is designed around one failure area, but the same machinery composes:
when a source-routed packet that already bypassed area ``F1`` runs into a
second area ``F2``, the node that detects it becomes a new recovery
initiator.  The packet header keeps the failure information collected so
far, so the new initiator removes *all* recorded failed links — those of
``F1`` and of ``F2`` — before recomputing, and the new route bypasses both
(the paper notes the mapping technique of FCP can compress the header; we
charge the plain 16-bit-per-id cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..errors import SimulationError
from ..failures import FailureScenario, LocalView
from ..routing import RoutingTable, shortest_path_or_none
from ..simulator import ForwardingEngine, RecoveryAccounting
from ..topology import Link, Topology
from .phase1 import run_phase1
from .rtr import RTRConfig


@dataclass
class MultiAreaResult:
    """Outcome of a delivery attempt across multiple failure areas."""

    delivered: bool
    #: Full node sequence actually traveled from the source (may revisit
    #: nodes when consecutive recoveries backtrack).
    traveled: List[int]
    #: Recovery initiators, in the order they took over the packet.
    initiators: List[int]
    accounting: RecoveryAccounting = field(default_factory=RecoveryAccounting)
    #: All failed links recorded in the packet header at the end.
    known_failed_links: Set[Link] = field(default_factory=set)

    @property
    def recovery_count(self) -> int:
        """How many recovery initiators were involved."""
        return len(self.initiators)


class MultiAreaRTR:
    """Chained RTR recoveries for scenarios with several failure areas."""

    def __init__(
        self,
        topo: Topology,
        scenario: FailureScenario,
        routing: Optional[RoutingTable] = None,
        config: Optional[RTRConfig] = None,
        max_recoveries: int = 16,
    ) -> None:
        self.topo = topo
        self.scenario = scenario
        self.view = LocalView(scenario)
        self.routing = routing if routing is not None else RoutingTable(topo)
        self.config = config or RTRConfig()
        self.engine = ForwardingEngine(topo, self.view, self.config.delay_model)
        self.max_recoveries = max_recoveries

    def deliver(self, source: int, destination: int) -> MultiAreaResult:
        """Drive one packet from ``source`` to ``destination``.

        Uses default routing until a failure is met, then chains RTR
        recoveries, accumulating failed-link knowledge in the header.
        """
        if not self.scenario.is_node_live(source):
            raise SimulationError(f"source {source} has failed")
        accounting = RecoveryAccounting()
        traveled = [source]
        initiators: List[int] = []
        known_failed: Set[Link] = set()

        # Default forwarding until the first failure (or delivery).
        current = source
        default_path = self.routing.path(source, destination)
        if default_path is None:
            return MultiAreaResult(False, traveled, initiators, accounting, known_failed)
        pending_trigger: Optional[int] = None
        for node, nxt in default_path.hops():
            if not self.view.is_neighbor_reachable(node, nxt):
                current, pending_trigger = node, nxt
                break
            self.engine.forward_one_hop(
                _probe_packet(node, destination), nxt, accounting
            )
            traveled.append(nxt)
            current = nxt
        if current == destination:
            return MultiAreaResult(True, traveled, initiators, accounting, known_failed)

        # Chained recoveries.
        for _ in range(self.max_recoveries):
            initiator, trigger = current, pending_trigger
            assert trigger is not None
            initiators.append(initiator)

            phase1 = run_phase1(
                self.topo,
                self.view,
                initiator,
                trigger,
                self.engine,
                accounting=accounting,
                use_constraints=self.config.use_constraints,
                clockwise=self.config.clockwise,
            )
            traveled.extend(phase1.walk[1:])
            known_failed.update(phase1.all_known_failed_links())

            accounting.count_sp(1)
            route = shortest_path_or_none(
                self.topo, initiator, destination, excluded_links=known_failed
            )
            if route is None:
                return MultiAreaResult(
                    False, traveled, initiators, accounting, known_failed
                )

            # Source-route until delivery or the next undiscovered failure.
            hit_failure = False
            for node, nxt in route.hops():
                if not self.view.is_neighbor_reachable(node, nxt):
                    # New failure area: this node takes over (§III-E).
                    known_failed.add(Link.of(node, nxt))
                    current, pending_trigger = node, nxt
                    hit_failure = True
                    break
                self.engine.forward_one_hop(
                    _probe_packet(node, destination), nxt, accounting
                )
                traveled.append(nxt)
            if not hit_failure:
                return MultiAreaResult(
                    True, traveled, initiators, accounting, known_failed
                )
        return MultiAreaResult(False, traveled, initiators, accounting, known_failed)


def _probe_packet(at: int, destination: int):
    """A minimal packet for hop accounting during default/source routing."""
    from ..simulator import Packet

    packet = Packet(source=at, destination=destination)
    packet.at = at
    return packet
