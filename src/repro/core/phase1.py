"""RTR phase 1: collecting failure information (§III-B, §III-C).

A data packet is forwarded around the failure area by the right-hand
sweeping rule; every visited router records its locally detected failed
links in the ``failed_link`` header field (skipping links the initiator
already knows, i.e. those incident to the initiator); the walk ends when
the packet is back at the initiator and the sweep would re-select the
first hop.

The walk runs once per initiator and its result serves every affected
destination (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError
from ..failures import LocalView
from ..simulator import (
    ForwardingEngine,
    Mode,
    Packet,
    RecoveryAccounting,
    RecoveryHeader,
    WalkBatch,
)
from ..topology import Link, Topology
from .constraints import CrossLinkState
from .sweep import select_next_hop


@dataclass
class Phase1Result:
    """Everything the initiator knows when its phase-1 walk finishes."""

    initiator: int
    #: Node sequence of the walk, starting and ending at the initiator
    #: (just ``[initiator]`` when the initiator has no live neighbor).
    walk: List[int]
    #: Failed links recorded in the ``failed_link`` header field, in order.
    collected_failed_links: List[Link]
    #: Final contents of the ``cross_link`` header field, in order.
    cross_links: List[Link]
    #: Links to the initiator's unreachable neighbors (known locally,
    #: deliberately *not* recorded in the header — §III-B item 3).
    local_failed_links: List[Link]
    #: Hop count of the walk.
    hops: int
    #: Wall-clock duration of the walk under the delay model (seconds).
    duration: float
    #: Per-hop ``(time, recovery_header_bytes)`` samples.
    header_timeline: List[tuple] = field(default_factory=list)
    #: Per-hop header snapshots ``(node, failed_links, cross_links)`` —
    #: the contents of the two fields at each hop, exactly as the paper's
    #: Table I tabulates them.
    field_trace: List[tuple] = field(default_factory=list)
    #: Whether the walk ran to completion.  False only in degraded mode:
    #: the packet was lost in flight or the walk was truncated at its hop
    #: budget, so the collected set may be arbitrarily incomplete.
    complete: bool = True
    #: Why an incomplete walk ended (``None`` when complete).
    incomplete_reason: Optional[str] = None
    #: Packet retransmissions spent before this result was obtained.
    retries: int = 0

    def all_known_failed_links(self) -> List[Link]:
        """Collected plus locally known failed links — the set ``E1``."""
        return list(self.collected_failed_links) + [
            link
            for link in self.local_failed_links
            if link not in self.collected_failed_links
        ]


def _record_failures_at(
    node: int,
    initiator: int,
    view: LocalView,
    header: RecoveryHeader,
) -> None:
    """§III-C item 2: record this node's locally detected failed links.

    The initiator's own incident failures are skipped — the initiator
    already knows them, so carrying them would waste header bytes.
    """
    if node == initiator:
        return
    for neighbor in view.unreachable_neighbors(node):
        link = Link.of(node, neighbor)
        if initiator in (link.u, link.v):
            continue
        header.record_failed(link)


def run_phase1(
    topo: Topology,
    view: LocalView,
    initiator: int,
    trigger_neighbor: int,
    engine: ForwardingEngine,
    accounting: Optional[RecoveryAccounting] = None,
    use_constraints: bool = True,
    clockwise: bool = False,
    strict: bool = True,
) -> Phase1Result:
    """Run the failure-information collection walk from ``initiator``.

    ``trigger_neighbor`` is the unreachable default next hop whose loss
    invoked RTR — it anchors the initiator's first sweeping line.
    ``use_constraints=False`` disables the §III-C cross-link constraints
    (the DESIGN.md ablation that reproduces the Fig. 4/5 disorders).
    ``strict=False`` (degraded mode) turns a lost packet or an exhausted
    hop budget into an ``complete=False`` result instead of an exception,
    so the caller can retry with backoff or fall back.
    """
    if view.is_neighbor_reachable(initiator, trigger_neighbor):
        raise SimulationError(
            f"phase 1 invoked at {initiator} but trigger neighbor "
            f"{trigger_neighbor} is reachable"
        )
    accounting = accounting if accounting is not None else RecoveryAccounting()

    header = RecoveryHeader(mode=Mode.COLLECTING, rec_init=initiator)
    packet = Packet(source=initiator, destination=initiator, header=header)
    constraints = CrossLinkState(topo, header)
    if use_constraints:
        constraints.seed_initiator_links(view, initiator)
    exclusion = constraints.is_excluded if use_constraints else None

    local_failed = [Link.of(initiator, nb) for nb in view.unreachable_neighbors(initiator)]

    start_hop = select_next_hop(
        topo, view, initiator, trigger_neighbor, exclusion, clockwise
    )
    if start_hop is None:
        # Isolated initiator: nothing to collect, the walk is empty.
        return Phase1Result(
            initiator=initiator,
            walk=[initiator],
            collected_failed_links=[],
            cross_links=list(header.cross_links),
            local_failed_links=local_failed,
            hops=0,
            duration=0.0,
        )

    previous = {"node": initiator}
    done = {"flag": False}
    field_trace: List[tuple] = []

    def snapshot(node: int) -> None:
        field_trace.append(
            (node, tuple(header.failed_links), tuple(header.cross_links))
        )

    def decide(current: int, pkt: Packet) -> Optional[int]:
        if done["flag"]:
            return None
        _record_failures_at(current, initiator, view, pkt.header)
        if current == initiator and pkt.recovery_hops == 0:
            # Initial transmission toward the already-selected first hop.
            if use_constraints:
                constraints.after_selection(Link.of(initiator, start_hop))
            previous["node"] = current
            snapshot(current)
            return start_hop
        next_node = select_next_hop(
            topo, view, current, previous["node"], exclusion, clockwise
        )
        if next_node is None:
            # Unreachable in theory (previous hop always qualifies); be safe.
            snapshot(current)
            return None
        if current == initiator:
            # §III-C item 3: back at the initiator — stop when the sweep
            # would re-select the first hop, otherwise keep going so no
            # node on the cycle is missed.
            if next_node == start_hop:
                done["flag"] = True
                snapshot(current)
                return None
        if use_constraints:
            constraints.after_selection(Link.of(current, next_node))
        previous["node"] = current
        snapshot(current)
        return next_node

    # The sweep mutates header/constraint state every hop, so it compiles
    # to an opaque callback spec — the plane always runs it on the
    # reference backend.
    batch = WalkBatch(engine)
    handle = batch.add_callback_walk(
        packet, decide, accounting, on_overrun="raise" if strict else "truncate"
    )
    outcome = batch.execute().result(handle)
    if strict and outcome.lost:
        raise SimulationError(
            f"phase-1 packet of {initiator} lost at {outcome.drop_node}: "
            f"{outcome.drop_reason}"
        )
    return Phase1Result(
        initiator=initiator,
        walk=outcome.visited,
        collected_failed_links=list(header.failed_links),
        cross_links=list(header.cross_links),
        local_failed_links=local_failed,
        hops=len(outcome.visited) - 1,
        duration=accounting.clock,
        header_timeline=list(accounting.header_timeline),
        field_trace=field_trace,
        complete=outcome.completed,
        incomplete_reason=outcome.drop_reason,
    )
