"""RTR phase 2: recomputation and source-routed rerouting (§III-D).

The initiator removes the collected failed links (plus its own locally
detected ones) from its view of the topology, computes the new shortest
path to the destination, and forwards packets along it via source routing.
Two recomputation engines are provided:

* **incremental** (the paper's choice, Narvaez et al.): update the
  initiator's pre-failure shortest-path tree by deleting the failed links —
  one update serves *every* destination;
* **full**: a fresh Dijkstra per initiator on ``G - E1``.

Both count as one shortest-path calculation in the §IV-C accounting and
produce identical distances (asserted by tests).

Because phase 1 may miss failures hidden inside the area, the computed
route can still contain a failed element; the packet is then simply
discarded at the node that detects it (§III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from .. import obs
from ..failures import LocalView
from ..routing import (
    Path,
    ShortestPathTree,
    SPTCache,
    penalized_shortest_path_tree,
    shortest_path_tree,
    updated_tree,
)
from ..simulator import (
    ForwardingEngine,
    Mode,
    Packet,
    RecoveryAccounting,
    RecoveryHeader,
    WalkBatch,
)
from ..topology import Link, Topology
from .phase1 import Phase1Result


@dataclass
class Phase2Result:
    """Outcome of one phase-2 delivery attempt."""

    #: The computed recovery path (None when the destination appears
    #: unreachable in ``G - E1`` and packets are discarded at the initiator).
    route: Optional[Path]
    #: Whether the packet reached the destination.
    delivered: bool
    #: Node that discarded the packet (initiator when no route was found).
    drop_node: Optional[int]
    #: Hops actually traveled along the route before delivery/drop.
    hops_traveled: int
    #: Recovery header bytes carried by the source-routed packet.
    route_header_bytes: int
    #: Whether the drop was an injected packet loss (retransmittable)
    #: rather than the route containing a failure phase 1 missed.
    lost: bool = False


class Phase2Engine:
    """Per-initiator recovery-path computation with caching (§III-D).

    One instance belongs to one recovery initiator.  The first query pays
    one shortest-path calculation (the §IV metric); subsequent destinations
    are served from the cached tree — "by caching the recovery paths, the
    recovery initiator needs to calculate the shortest path only once for
    each destination affected by failures".
    """

    def __init__(
        self,
        topo: Topology,
        initiator: int,
        phase1: Phase1Result,
        use_incremental: bool = True,
        cache: Optional[SPTCache] = None,
        penalty=None,
    ) -> None:
        self.topo = topo
        self.initiator = initiator
        self.phase1 = phase1
        self.use_incremental = use_incremental
        #: Shared tree pool; the pre-failure SPT in particular is identical
        #: across every scenario of a sweep.  ``sp_computations`` below is
        #: the §IV *recorded* charge and is unaffected by cache hits.
        self.cache = cache
        #: Optional :class:`repro.te.penalty.LinkPenalty` snapshot.  When
        #: set (congestion-aware mode), recomputation minimizes the
        #: load-penalized metric instead of the base metric; recovery
        #: paths are re-costed back to base before leaving this engine.
        self.penalty = penalty
        self.known_failed: Set[Link] = set(phase1.all_known_failed_links())
        self._tree: Optional[ShortestPathTree] = None
        #: Shortest-path calculations actually performed (1 after first use).
        self.sp_computations = 0

    def _compute_tree(self) -> ShortestPathTree:
        if self.penalty is not None and not self.penalty.is_null():
            # Congestion-aware recomputation is always a fresh penalized
            # sweep: penalties vary per decision, so neither the shared
            # pre-failure tree pool nor the incremental update applies.
            return penalized_shortest_path_tree(
                self.topo,
                self.initiator,
                self.penalty.lid_units(self.topo),
                self.penalty.quant,
                excluded_links=self.known_failed,
            )
        if self.use_incremental:
            # The initiator already has its pre-failure SPT from normal
            # link-state operation; only the incremental update is the
            # on-demand recovery computation.
            if self.cache is not None:
                pre_failure = self.cache.forward_tree(self.topo, self.initiator)
            else:
                pre_failure = shortest_path_tree(self.topo, self.initiator)
            return updated_tree(self.topo, pre_failure, removed_links=self.known_failed)
        if self.cache is not None:
            return self.cache.forward_tree(
                self.topo, self.initiator, excluded_links=self.known_failed
            )
        return shortest_path_tree(
            self.topo, self.initiator, excluded_links=self.known_failed
        )

    def tree(self) -> ShortestPathTree:
        """The post-failure SPT on ``G - E1`` (computed once, cached)."""
        if self._tree is None:
            if obs.enabled():
                with obs.span("rtr.phase2.tree", initiator=self.initiator):
                    self._tree = self._compute_tree()
                obs.inc("rtr.phase2.tree_builds")
            else:
                self._tree = self._compute_tree()
            self.sp_computations += 1
        return self._tree

    def recovery_path(self, destination: int) -> Optional[Path]:
        """The shortest path initiator -> destination in ``G - E1``.

        Under a penalty snapshot the *selection* minimizes the penalized
        metric but the returned path is re-costed in the base metric, so
        stretch and Table III comparisons stay apples-to-apples.
        """
        tree = self.tree()
        if not tree.reaches(destination):
            return None
        path = tree.path_from(destination)
        if self.penalty is not None and not self.penalty.is_null():
            from ..te.penalty import recost_path

            path = recost_path(self.topo, path)
        return path

    def learn_failed_link(self, link: Link) -> bool:
        """Add a failure discovered *after* phase 1 to ``E1`` (§III-D ext.).

        When a phase-2 packet is discarded at a node whose next route hop
        turned out to be failed, the initiator can learn exactly that link
        from the drop notification and re-invoke the recomputation.
        Returns False (and changes nothing) when the link was already
        known — re-invoking then could never produce a different route.
        """
        if link in self.known_failed:
            return False
        self.known_failed.add(link)
        self._tree = None
        return True


def compile_phase2_delivery(phase2: Phase2Engine, destination: int):
    """Compile the delivery attempt: ``(route, header, packet)``.

    The decision half of the phase-2 walk — everything up to (but not
    including) moving the packet.  ``route`` is ``None`` when the
    destination is unreachable in ``G - E1`` (§II-C early discard).
    """
    route = phase2.recovery_path(destination)
    if route is None:
        return None, None, None
    header = RecoveryHeader(
        mode=Mode.SOURCE_ROUTED,
        rec_init=phase2.initiator,
        source_route=list(route.nodes),
    )
    packet = Packet(
        source=phase2.initiator, destination=destination, header=header
    )
    return route, header, packet


def no_route_result(phase2: Phase2Engine) -> Phase2Result:
    """Discard at the initiator (§II-C — die early when unreachable)."""
    return Phase2Result(
        route=None,
        delivered=False,
        drop_node=phase2.initiator,
        hops_traveled=0,
        route_header_bytes=0,
    )


def phase2_result_from_outcome(
    route: Path,
    header: RecoveryHeader,
    hops_before: int,
    accounting: RecoveryAccounting,
    outcome,
) -> Phase2Result:
    """Fold a walk-plane :class:`RouteOutcome` into a :class:`Phase2Result`."""
    return Phase2Result(
        route=route,
        delivered=outcome.delivered,
        drop_node=outcome.drop_node,
        hops_traveled=accounting.hops_traveled - hops_before,
        route_header_bytes=header.recovery_bytes(),
        lost=outcome.lost,
    )


def run_phase2(
    topo: Topology,
    view: LocalView,
    engine: ForwardingEngine,
    phase2: Phase2Engine,
    destination: int,
    accounting: RecoveryAccounting,
) -> Phase2Result:
    """Compute the recovery path for ``destination`` and deliver one packet.

    Shortest-path computations are *not* counted here: the paper charges
    one calculation per test case (§IV-C), which the caller records.
    """
    route, header, packet = compile_phase2_delivery(phase2, destination)
    if route is None:
        return no_route_result(phase2)
    before = accounting.hops_traveled
    batch = WalkBatch(engine)
    handle = batch.add_route(packet, list(route.nodes), accounting)
    outcome = batch.execute().result(handle)
    return phase2_result_from_outcome(route, header, before, accounting, outcome)
