"""RTR: Reactive Two-phase Rerouting — the paper's contribution.

:class:`RTR` ties the two phases together for one failure event:

1. a router whose default next hop toward some destination became
   unreachable invokes recovery (it is the *recovery initiator*),
2. phase 1 walks a packet around the failure area collecting failed-link
   ids (:mod:`repro.core.phase1`) — once per initiator, reused for every
   affected destination,
3. phase 2 computes the new shortest path on ``G - E1`` and source-routes
   packets along it (:mod:`repro.core.phase2`).

Accounting follows §IV: each test case is charged its phase-1 walk, exactly
one shortest-path calculation, and the phase-2 delivery attempt.

Degraded mode
-------------
Given a :class:`~repro.chaos.FaultPlan`, the instance swaps in a
:class:`~repro.chaos.DegradedLocalView` and a
:class:`~repro.chaos.ChaosForwardingEngine` and climbs a graceful
fallback ladder instead of aborting:

1. a lost or truncated phase-1 walk is retried with exponential backoff
   (``max_phase1_retries``);
2. a phase-2 packet lost in flight is resent (``max_phase2_resends``);
3. a phase-2 packet discarded at a failure phase 1 *missed* teaches the
   initiator that link, and recomputation is re-invoked with the grown
   ``E1`` (``max_phase2_reinvocations`` — the §III-D extension);
4. when the ladder is exhausted, traffic falls back to waiting out
   OSPF/IGP reconvergence (``fallback_to_reconvergence``) — delivery then
   succeeds exactly when the destination survives in ``G - E2``, at
   convergence-timescale cost.

With no fault plan every knob is inert and behaviour is bit-identical to
the paper's idealized design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import obs
from ..errors import SimulationError
from ..failures import FailureScenario, LocalView
from ..routing import LinkStateProtocol, RoutingTable, SPTCache
from ..simulator import (
    DEFAULT_DELAY_MODEL,
    DEFAULT_PAYLOAD_BYTES,
    DelayModel,
    ForwardingEngine,
    RecoveryAccounting,
    RecoveryResult,
    SourceRouteSpec,
    WalkBatch,
    WalkPlan,
)
from ..topology import Link, Topology
from .phase1 import Phase1Result, run_phase1
from .phase2 import (
    Phase2Engine,
    Phase2Result,
    compile_phase2_delivery,
    no_route_result,
    phase2_result_from_outcome,
    run_phase2,
)

APPROACH_NAME = "RTR"

log = obs.get_logger(__name__)


@dataclass
class RTRConfig:
    """Behavioural knobs of RTR (defaults = the paper's design)."""

    #: Enforce Constraints 1 and 2 (§III-C).  Disabling reproduces the
    #: general-graph forwarding disorders of Figs. 4-5 (ablation).
    use_constraints: bool = True
    #: Phase-2 engine: incremental SPT update (§III-D) vs full Dijkstra.
    use_incremental: bool = True
    #: Mirror the sweep (ablation; the paper rotates counterclockwise).
    clockwise: bool = False
    #: Phase-1 collector: ``"sweep"`` (the paper's right-hand walk) or
    #: ``"exhaustive"`` (the complete-but-costly DFS alternative §III-C
    #: rejects — see :mod:`repro.core.exhaustive`).
    collector: str = "sweep"
    #: Per-hop delay model (default: the paper's fixed 1.8 ms).
    delay_model: DelayModel = None  # type: ignore[assignment]
    #: Retransmissions of a lost/truncated phase-1 walk (degraded mode
    #: only — without injected faults a walk cannot be lost).
    max_phase1_retries: int = 3
    #: Resends of a phase-2 packet lost in flight (degraded mode only).
    max_phase2_resends: int = 2
    #: §III-D re-invocations: recomputations after learning a failed link
    #: from a phase-2 drop.  0 preserves the paper's discard-on-miss
    #: behaviour (and the §IV accounting of exactly one SP calculation).
    max_phase2_reinvocations: int = 0
    #: Base of the exponential retry backoff, in seconds of sim clock.
    retry_backoff_s: float = 0.01
    #: When the whole ladder fails, model traffic waiting out IGP
    #: reconvergence instead of reporting a plain drop.
    fallback_to_reconvergence: bool = False
    #: Congestion-aware phase 2 (:mod:`repro.te`): penalize loaded links
    #: in recovery-path selection.  Strictly off by default — the paper's
    #: metric, and every pinned golden sweep, is load-oblivious.
    congestion_aware: bool = False
    #: Penalty strength at utilization 1.0 (see ``repro.te.penalty``).
    penalty_alpha: float = 8.0
    #: Penalty superlinearity exponent.
    penalty_exponent: float = 2.0
    #: Utilization beyond this adds no further penalty.
    penalty_utilization_clip: float = 2.0

    def __post_init__(self) -> None:
        if self.delay_model is None:
            self.delay_model = DEFAULT_DELAY_MODEL
        if self.collector not in ("sweep", "exhaustive"):
            raise ValueError(f"unknown collector {self.collector!r}")
        for name in (
            "max_phase1_retries",
            "max_phase2_resends",
            "max_phase2_reinvocations",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.penalty_alpha < 0:
            raise ValueError("penalty_alpha must be >= 0")
        if self.penalty_exponent <= 0:
            raise ValueError("penalty_exponent must be > 0")
        if self.penalty_utilization_clip <= 0:
            raise ValueError("penalty_utilization_clip must be > 0")

    @classmethod
    def hardened(cls, **overrides) -> "RTRConfig":
        """The degraded-mode profile: full fallback ladder enabled."""
        defaults = dict(
            max_phase1_retries=3,
            max_phase2_resends=2,
            max_phase2_reinvocations=2,
            fallback_to_reconvergence=True,
        )
        defaults.update(overrides)
        return cls(**defaults)


class RTR:
    """RTR recovery over one failure scenario.

    The instance owns the per-initiator phase-1 cache and per-initiator
    phase-2 trees, mirroring the state a real router would keep during one
    IGP convergence window.
    """

    def __init__(
        self,
        topo: Topology,
        scenario: FailureScenario,
        routing: Optional[RoutingTable] = None,
        config: Optional[RTRConfig] = None,
        fault_plan: Optional[object] = None,
        sp_cache: Optional[SPTCache] = None,
    ) -> None:
        self.topo = topo
        self.scenario = scenario
        #: Shared SPT pool for phase-2 recomputation and the reconvergence
        #: fallback oracle; a sweep-wide cache reuses pre-failure trees
        #: across scenarios.
        self.sp_cache = sp_cache if sp_cache is not None else SPTCache()
        #: The consistent pre-failure routing view (§II-A); used to find the
        #: default next hop that triggers recovery.
        self.routing = routing if routing is not None else RoutingTable(topo)
        self.chaos = None
        if fault_plan is not None and not fault_plan.is_null():
            from ..chaos import (
                ChaosForwardingEngine,
                ChaosRuntime,
                DegradedLocalView,
            )

            self.config = config or RTRConfig.hardened()
            self.chaos = ChaosRuntime(fault_plan, scenario)
            self.view: LocalView = DegradedLocalView(
                scenario, fault_plan, self.chaos
            )
            self.engine: ForwardingEngine = ChaosForwardingEngine(
                topo, self.view, self.chaos, self.config.delay_model
            )
            #: Ground truth for telling "really reachable" apart from
            #: "failure not yet detected" (the simulator may consult it;
            #: the protocol never does).
            self._truth_view = LocalView(scenario)
        else:
            self.config = config or RTRConfig()
            self.view = LocalView(scenario)
            self.engine = ForwardingEngine(topo, self.view, self.config.delay_model)
            self._truth_view = self.view
        self._phase1_cache: Dict[int, Phase1Result] = {}
        self._phase2_cache: Dict[int, Phase2Engine] = {}
        self._reconverge_at: Optional[float] = None
        #: Current load-penalty snapshot (:mod:`repro.te`); consulted by
        #: phase 2 only when ``config.congestion_aware`` is set.
        self._penalty = None

    def set_link_penalty(self, penalty) -> None:
        """Install a :class:`repro.te.penalty.LinkPenalty` snapshot.

        Invalidates cached phase-2 engines: their trees were selected
        under the previous load picture.  Phase-1 walks stay cached — the
        collection sweep is load-oblivious by design.
        """
        self._penalty = penalty
        self._phase2_cache.clear()

    # ------------------------------------------------------------------

    def phase1_for(self, initiator: int, trigger_neighbor: int) -> Phase1Result:
        """The (cached) phase-1 result of ``initiator`` (§III-A: run once)."""
        result = self._phase1_cache.get(initiator)
        if result is None:
            with obs.span("rtr.phase1", initiator=initiator):
                if self.config.collector == "exhaustive":
                    from .exhaustive import run_exhaustive_phase1

                    result = run_exhaustive_phase1(
                        self.topo, self.view, initiator, trigger_neighbor, self.engine
                    )
                else:
                    result = self._run_phase1_with_retries(
                        initiator, trigger_neighbor
                    )
            obs.inc("rtr.phase1.walks")
            obs.inc("rtr.phase1.hops", result.hops)
            if not result.complete:
                obs.inc("rtr.phase1.incomplete")
            self._phase1_cache[initiator] = result
        return result

    def _run_phase1_with_retries(
        self, initiator: int, trigger_neighbor: int
    ) -> Phase1Result:
        """Phase 1, retried with exponential backoff under injected loss.

        All attempts share one accounting so the walk's duration, hop
        count, and header timeline are cumulative over retransmissions —
        a retried walk genuinely costs the network that much.
        """
        strict = self.chaos is None
        accounting = RecoveryAccounting()
        attempts = 1 if strict else self.config.max_phase1_retries + 1
        result: Optional[Phase1Result] = None
        for attempt in range(attempts):
            if attempt:
                accounting.count_retry()
                accounting.advance_clock(
                    self.config.retry_backoff_s * (2 ** (attempt - 1))
                )
            result = run_phase1(
                self.topo,
                self.view,
                initiator,
                trigger_neighbor,
                self.engine,
                accounting=accounting,
                use_constraints=self.config.use_constraints,
                clockwise=self.config.clockwise,
                strict=strict,
            )
            if result.complete:
                break
        assert result is not None
        result.hops = accounting.hops_traveled
        result.duration = accounting.clock
        result.header_timeline = list(accounting.header_timeline)
        result.retries = accounting.retransmissions
        return result

    def phase2_for(self, initiator: int, trigger_neighbor: int) -> Phase2Engine:
        """The (cached) phase-2 engine of ``initiator``."""
        engine = self._phase2_cache.get(initiator)
        if engine is None:
            phase1 = self.phase1_for(initiator, trigger_neighbor)
            obs.inc("rtr.phase2.engines")
            engine = Phase2Engine(
                self.topo,
                initiator,
                phase1,
                use_incremental=self.config.use_incremental,
                cache=self.sp_cache,
                penalty=self._penalty if self.config.congestion_aware else None,
            )
            self._phase2_cache[initiator] = engine
        return engine

    # ------------------------------------------------------------------

    def recover(
        self,
        initiator: int,
        destination: int,
        trigger_neighbor: Optional[int] = None,
    ) -> RecoveryResult:
        """Run one full recovery test case and return its accounting.

        ``trigger_neighbor`` defaults to the initiator's pre-failure default
        next hop toward ``destination`` — which must be unreachable,
        otherwise RTR would never have been invoked.
        """
        if self.plan_supported():
            plan = self.plan_recovery(initiator, destination, trigger_neighbor)
            if plan.immediate is not None:
                return plan.immediate
            batch = WalkBatch(self.engine)
            handle = batch.add(plan.spec, plan.packet, plan.accounting)
            return plan.finish(batch.execute().result(handle))
        return self._recover_ladder(initiator, destination, trigger_neighbor)

    def plan_supported(self) -> bool:
        """Whether cases compile to single-walk plans (:meth:`plan_recovery`).

        The degraded-mode ladder is adaptive — resends and re-invocations
        depend on each walk's outcome — so it cannot be expressed as one
        walk spec; chaos runs (and §III-D re-invocation configs) always go
        through :meth:`recover`'s sequential path.
        """
        return self.chaos is None and self.config.max_phase2_reinvocations == 0

    def plan_recovery(
        self,
        initiator: int,
        destination: int,
        trigger_neighbor: Optional[int] = None,
    ) -> WalkPlan:
        """Compile one recovery test case into a :class:`WalkPlan`.

        The decision half of :meth:`recover`: phase 1 (cached per
        initiator), the phase-2 route computation, and the §IV accounting
        seed all happen here; the returned plan carries either the finished
        result or the delivery walk for a :class:`WalkBatch` to execute.
        Only valid when :meth:`plan_supported` is true.
        """
        trigger_neighbor, immediate = self._check_case(
            initiator, destination, trigger_neighbor
        )
        if immediate is not None:
            return WalkPlan(immediate=immediate)

        phase1 = self.phase1_for(initiator, trigger_neighbor)
        phase2 = self.phase2_for(initiator, trigger_neighbor)
        accounting = self._seed_case_accounting(phase1)

        if not phase1.complete:
            return WalkPlan(
                immediate=self._incomplete_result(
                    initiator, destination, phase1, accounting
                )
            )

        with obs.span("rtr.phase2", destination=destination):
            route, header, packet = compile_phase2_delivery(phase2, destination)
        if route is None:
            obs.inc("rtr.phase2.attempts")
            return WalkPlan(
                immediate=self._finish_phase2(
                    initiator, destination, phase1, accounting,
                    no_route_result(phase2),
                )
            )

        hops_before = accounting.hops_traveled

        def finish(walk_outcome) -> RecoveryResult:
            obs.inc("rtr.phase2.attempts")
            if walk_outcome.delivered:
                obs.inc("rtr.phase2.delivered")
            outcome = phase2_result_from_outcome(
                route, header, hops_before, accounting, walk_outcome
            )
            return self._finish_phase2(
                initiator, destination, phase1, accounting, outcome
            )

        return WalkPlan(
            spec=SourceRouteSpec(route=list(route.nodes)),
            packet=packet,
            accounting=accounting,
            finish=finish,
        )

    def _check_case(
        self,
        initiator: int,
        destination: int,
        trigger_neighbor: Optional[int],
    ):
        """Validate one test case; resolve the trigger neighbor.

        Returns ``(trigger_neighbor, immediate_result_or_None)``.
        """
        if not self.scenario.is_node_live(initiator):
            raise SimulationError(f"recovery initiator {initiator} has failed")
        if trigger_neighbor is None:
            trigger_neighbor = self.routing.next_hop(initiator, destination)
            if trigger_neighbor is None:
                raise SimulationError(
                    f"{initiator} has no pre-failure route toward {destination}"
                )
        if self.view.is_neighbor_reachable(initiator, trigger_neighbor):
            if self.chaos is not None and not self._truth_view.is_neighbor_reachable(
                initiator, trigger_neighbor
            ):
                # The adjacency really failed but this router's detection
                # missed it (or hasn't fired yet): it keeps black-holing
                # traffic into the dead next hop until IGP convergence
                # repairs its table.
                return trigger_neighbor, self._fallback_result(
                    initiator,
                    destination,
                    RecoveryAccounting(),
                    phase1_duration=0.0,
                    phase1_hops=0,
                )
            raise SimulationError(
                f"default next hop {trigger_neighbor} of {initiator} is still "
                f"reachable; RTR is only invoked on failure (§II-B)"
            )
        return trigger_neighbor, None

    @staticmethod
    def _seed_case_accounting(phase1: Phase1Result) -> RecoveryAccounting:
        """Per-test-case accounting (§IV): the walk is attributed to every
        test case of this initiator, and each case counts one SP
        calculation regardless of tree caching."""
        accounting = RecoveryAccounting()
        accounting.clock = phase1.duration
        accounting.hops_traveled = phase1.hops
        accounting.header_timeline = list(phase1.header_timeline)
        accounting.retransmissions = phase1.retries
        accounting.count_sp(1)
        return accounting

    def _incomplete_result(
        self,
        initiator: int,
        destination: int,
        phase1: Phase1Result,
        accounting: RecoveryAccounting,
    ) -> RecoveryResult:
        """Every retransmission died; the initiator has no failure
        information and refuses to guess a route (§II-C early discard), or
        hands off to reconvergence when allowed."""
        if self.config.fallback_to_reconvergence:
            return self._fallback_result(
                initiator,
                destination,
                accounting,
                phase1_duration=phase1.duration,
                phase1_hops=phase1.hops,
            )
        return RecoveryResult(
            approach=APPROACH_NAME,
            delivered=False,
            path=None,
            accounting=accounting,
            phase1_duration=phase1.duration,
            phase1_hops=phase1.hops,
            drop_hops=0,
            drop_packet_bytes=DEFAULT_PAYLOAD_BYTES
            + _phase1_final_header_bytes(phase1),
            retries=accounting.retransmissions,
        )

    def _recover_ladder(
        self,
        initiator: int,
        destination: int,
        trigger_neighbor: Optional[int],
    ) -> RecoveryResult:
        """The sequential path: per-walk outcomes steer resends/re-invocations."""
        trigger_neighbor, immediate = self._check_case(
            initiator, destination, trigger_neighbor
        )
        if immediate is not None:
            return immediate

        phase1 = self.phase1_for(initiator, trigger_neighbor)
        phase2 = self.phase2_for(initiator, trigger_neighbor)
        accounting = self._seed_case_accounting(phase1)

        if not phase1.complete:
            return self._incomplete_result(
                initiator, destination, phase1, accounting
            )

        outcome = self._phase2_ladder(phase2, destination, accounting)
        return self._finish_phase2(
            initiator, destination, phase1, accounting, outcome
        )

    def _finish_phase2(
        self,
        initiator: int,
        destination: int,
        phase1: Phase1Result,
        accounting: RecoveryAccounting,
        outcome: Phase2Result,
    ) -> RecoveryResult:
        """Fold a phase-2 outcome into the final per-case result.

        Wasted transmission (§IV-D): ``h`` is the hops from the recovery
        initiator to the node discarding the packet.  The phase-1 walk is
        not waste — it is the (separately accounted) transmission overhead
        that produces the failure information — so RTR wastes hops only
        when phase 2 computed a route that turned out to contain a missed
        failure.  When no route exists, packets die at the initiator
        itself (h = 0), which is exactly the early discard of §II-C.
        """
        if outcome.delivered:
            drop_hops = 0
            drop_bytes = 0
        elif outcome.route is None:
            drop_hops = 0
            drop_bytes = DEFAULT_PAYLOAD_BYTES + _phase1_final_header_bytes(phase1)
        else:
            # The route contained a failure phase 1 missed (§III-D).
            drop_hops = outcome.hops_traveled
            drop_bytes = DEFAULT_PAYLOAD_BYTES + outcome.route_header_bytes

        # Fall back only when RTR's own machinery failed (loss the resends
        # could not beat, or a missed failure the re-invocations could not
        # learn around).  ``route is None`` is the paper's early discard —
        # the destination is unreachable in ``G - E1`` and hence in
        # ``G - E2``, so waiting out reconvergence could not deliver either.
        if (
            not outcome.delivered
            and outcome.route is not None
            and self.config.fallback_to_reconvergence
        ):
            return self._fallback_result(
                initiator,
                destination,
                accounting,
                phase1_duration=phase1.duration,
                phase1_hops=phase1.hops,
                drop_hops=drop_hops,
                drop_bytes=drop_bytes,
            )

        return RecoveryResult(
            approach=APPROACH_NAME,
            delivered=outcome.delivered,
            path=outcome.route if outcome.delivered else None,
            accounting=accounting,
            phase1_duration=phase1.duration,
            phase1_hops=phase1.hops,
            drop_hops=drop_hops,
            drop_packet_bytes=drop_bytes,
            retries=accounting.retransmissions,
        )

    def _phase2_ladder(
        self,
        phase2: Phase2Engine,
        destination: int,
        accounting: RecoveryAccounting,
    ) -> Phase2Result:
        """Phase-2 delivery with bounded resends and re-invocations.

        A *lost* packet (injected loss) is resent along the same route; a
        packet discarded at a failure phase 1 missed teaches the initiator
        that link and re-invokes the recomputation with the grown ``E1``
        (each re-invocation is one more on-demand SP calculation).
        """
        with obs.span("rtr.phase2", destination=destination):
            outcome = self._phase2_ladder_inner(phase2, destination, accounting)
        obs.inc("rtr.phase2.attempts")
        if outcome.delivered:
            obs.inc("rtr.phase2.delivered")
        return outcome

    def _phase2_ladder_inner(
        self,
        phase2: Phase2Engine,
        destination: int,
        accounting: RecoveryAccounting,
    ) -> Phase2Result:
        resends = 0
        reinvocations = 0
        outcome = run_phase2(
            self.topo, self.view, self.engine, phase2, destination, accounting
        )
        while not outcome.delivered and outcome.route is not None:
            if outcome.lost:
                if resends >= self.config.max_phase2_resends:
                    break
                resends += 1
                accounting.count_retry()
                accounting.advance_clock(
                    self.config.retry_backoff_s * (2 ** (resends - 1))
                )
            else:
                learned = _missed_link(outcome)
                if (
                    reinvocations >= self.config.max_phase2_reinvocations
                    or learned is None
                    or not phase2.learn_failed_link(learned)
                ):
                    break
                reinvocations += 1
                accounting.count_retry()
                accounting.count_sp(1)
            outcome = run_phase2(
                self.topo, self.view, self.engine, phase2, destination, accounting
            )
        return outcome

    def _fallback_result(
        self,
        initiator: int,
        destination: int,
        accounting: RecoveryAccounting,
        phase1_duration: float,
        phase1_hops: int,
        drop_hops: int = 0,
        drop_bytes: int = 0,
    ) -> RecoveryResult:
        """The bottom rung: traffic waits out OSPF/IGP reconvergence.

        After convergence the routing tables are correct again, so
        delivery succeeds exactly when the destination is reachable in
        ``G - E2`` — along the true post-failure shortest path, but only
        after convergence-timescale delay.
        """
        from ..baselines import Oracle

        obs.inc("rtr.fallbacks")
        log.warning(
            "RTR ladder exhausted for case %s -> %s on scenario %s: "
            "falling back to OSPF reconvergence",
            initiator,
            destination,
            getattr(self.scenario, "name", self.scenario),
        )
        wait = self._reconvergence_time()
        if wait > accounting.clock:
            accounting.advance_clock(wait - accounting.clock)
        path = Oracle(self.topo, self.scenario, cache=self.sp_cache).recovery_path(
            initiator, destination
        )
        delivered = path is not None
        return RecoveryResult(
            approach=APPROACH_NAME,
            delivered=delivered,
            path=path,
            accounting=accounting,
            phase1_duration=phase1_duration,
            phase1_hops=phase1_hops,
            drop_hops=0 if delivered else drop_hops,
            drop_packet_bytes=0 if delivered else drop_bytes,
            fallback=True,
            retries=accounting.retransmissions,
        )

    def _reconvergence_time(self) -> float:
        """When the IGP has fully reconverged on this scenario (cached)."""
        if self._reconverge_at is None:
            protocol = LinkStateProtocol(self.topo)
            report = protocol.apply_failure(
                set(self.scenario.failed_nodes), set(self.scenario.failed_links)
            )
            self._reconverge_at = report.network_converged_at
        return self._reconverge_at

    def recover_flow(self, source: int, destination: int) -> RecoveryResult:
        """Recover the failed default routing path ``source -> destination``.

        Walks the pre-failure path to the node that detects the failure (the
        recovery initiator, §II-B) and runs recovery there.
        """
        initiator, trigger = self.find_initiator(source, destination)
        return self.recover(initiator, destination, trigger)

    def find_initiator(self, source: int, destination: int) -> tuple:
        """The node on the default path that detects the failure.

        Returns ``(initiator, unreachable_next_hop)``.  Raises when the
        source failed, when there is no pre-failure route, or when the
        default path did not fail at all (RTR is never invoked then).
        """
        if not self.scenario.is_node_live(source):
            raise SimulationError(f"source {source} has failed; nothing to recover")
        path = self.routing.path(source, destination)
        if path is None:
            raise SimulationError(
                f"no pre-failure route {source} -> {destination}"
            )
        for node, nxt in path.hops():
            if not self.view.is_neighbor_reachable(node, nxt):
                return node, nxt
        raise SimulationError(
            f"default path {source} -> {destination} did not fail"
        )


def _missed_link(outcome: Phase2Result) -> Optional[Link]:
    """The failed link a phase-2 drop reveals (drop node -> next route hop)."""
    if outcome.route is None or outcome.drop_node is None:
        return None
    nodes = list(outcome.route.nodes)
    try:
        index = nodes.index(outcome.drop_node)
    except ValueError:
        return None
    if index + 1 >= len(nodes):
        return None
    return Link.of(nodes[index], nodes[index + 1])


def _phase1_final_header_bytes(phase1: Phase1Result) -> int:
    """Recovery header size at the end of the phase-1 walk."""
    if phase1.header_timeline:
        return phase1.header_timeline[-1][1]
    # Isolated initiator: the packet never left, only fixed fields existed.
    from ..simulator import FIXED_RTR_HEADER_BYTES

    return FIXED_RTR_HEADER_BYTES
