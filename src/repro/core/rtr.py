"""RTR: Reactive Two-phase Rerouting — the paper's contribution.

:class:`RTR` ties the two phases together for one failure event:

1. a router whose default next hop toward some destination became
   unreachable invokes recovery (it is the *recovery initiator*),
2. phase 1 walks a packet around the failure area collecting failed-link
   ids (:mod:`repro.core.phase1`) — once per initiator, reused for every
   affected destination,
3. phase 2 computes the new shortest path on ``G - E1`` and source-routes
   packets along it (:mod:`repro.core.phase2`).

Accounting follows §IV: each test case is charged its phase-1 walk, exactly
one shortest-path calculation, and the phase-2 delivery attempt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import SimulationError
from ..failures import FailureScenario, LocalView
from ..routing import RoutingTable
from ..simulator import (
    DEFAULT_DELAY_MODEL,
    DEFAULT_PAYLOAD_BYTES,
    DelayModel,
    ForwardingEngine,
    RecoveryAccounting,
    RecoveryResult,
)
from ..topology import Topology
from .phase1 import Phase1Result, run_phase1
from .phase2 import Phase2Engine, run_phase2

APPROACH_NAME = "RTR"


@dataclass
class RTRConfig:
    """Behavioural knobs of RTR (defaults = the paper's design)."""

    #: Enforce Constraints 1 and 2 (§III-C).  Disabling reproduces the
    #: general-graph forwarding disorders of Figs. 4-5 (ablation).
    use_constraints: bool = True
    #: Phase-2 engine: incremental SPT update (§III-D) vs full Dijkstra.
    use_incremental: bool = True
    #: Mirror the sweep (ablation; the paper rotates counterclockwise).
    clockwise: bool = False
    #: Phase-1 collector: ``"sweep"`` (the paper's right-hand walk) or
    #: ``"exhaustive"`` (the complete-but-costly DFS alternative §III-C
    #: rejects — see :mod:`repro.core.exhaustive`).
    collector: str = "sweep"
    #: Per-hop delay model (default: the paper's fixed 1.8 ms).
    delay_model: DelayModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.delay_model is None:
            self.delay_model = DEFAULT_DELAY_MODEL
        if self.collector not in ("sweep", "exhaustive"):
            raise ValueError(f"unknown collector {self.collector!r}")


class RTR:
    """RTR recovery over one failure scenario.

    The instance owns the per-initiator phase-1 cache and per-initiator
    phase-2 trees, mirroring the state a real router would keep during one
    IGP convergence window.
    """

    def __init__(
        self,
        topo: Topology,
        scenario: FailureScenario,
        routing: Optional[RoutingTable] = None,
        config: Optional[RTRConfig] = None,
    ) -> None:
        self.topo = topo
        self.scenario = scenario
        self.view = LocalView(scenario)
        #: The consistent pre-failure routing view (§II-A); used to find the
        #: default next hop that triggers recovery.
        self.routing = routing if routing is not None else RoutingTable(topo)
        self.config = config or RTRConfig()
        self.engine = ForwardingEngine(topo, self.view, self.config.delay_model)
        self._phase1_cache: Dict[int, Phase1Result] = {}
        self._phase2_cache: Dict[int, Phase2Engine] = {}

    # ------------------------------------------------------------------

    def phase1_for(self, initiator: int, trigger_neighbor: int) -> Phase1Result:
        """The (cached) phase-1 result of ``initiator`` (§III-A: run once)."""
        result = self._phase1_cache.get(initiator)
        if result is None:
            if self.config.collector == "exhaustive":
                from .exhaustive import run_exhaustive_phase1

                result = run_exhaustive_phase1(
                    self.topo, self.view, initiator, trigger_neighbor, self.engine
                )
            else:
                result = run_phase1(
                    self.topo,
                    self.view,
                    initiator,
                    trigger_neighbor,
                    self.engine,
                    use_constraints=self.config.use_constraints,
                    clockwise=self.config.clockwise,
                )
            self._phase1_cache[initiator] = result
        return result

    def phase2_for(self, initiator: int, trigger_neighbor: int) -> Phase2Engine:
        """The (cached) phase-2 engine of ``initiator``."""
        engine = self._phase2_cache.get(initiator)
        if engine is None:
            phase1 = self.phase1_for(initiator, trigger_neighbor)
            engine = Phase2Engine(
                self.topo,
                initiator,
                phase1,
                use_incremental=self.config.use_incremental,
            )
            self._phase2_cache[initiator] = engine
        return engine

    # ------------------------------------------------------------------

    def recover(
        self,
        initiator: int,
        destination: int,
        trigger_neighbor: Optional[int] = None,
    ) -> RecoveryResult:
        """Run one full recovery test case and return its accounting.

        ``trigger_neighbor`` defaults to the initiator's pre-failure default
        next hop toward ``destination`` — which must be unreachable,
        otherwise RTR would never have been invoked.
        """
        if not self.scenario.is_node_live(initiator):
            raise SimulationError(f"recovery initiator {initiator} has failed")
        if trigger_neighbor is None:
            trigger_neighbor = self.routing.next_hop(initiator, destination)
            if trigger_neighbor is None:
                raise SimulationError(
                    f"{initiator} has no pre-failure route toward {destination}"
                )
        if self.view.is_neighbor_reachable(initiator, trigger_neighbor):
            raise SimulationError(
                f"default next hop {trigger_neighbor} of {initiator} is still "
                f"reachable; RTR is only invoked on failure (§II-B)"
            )

        phase1 = self.phase1_for(initiator, trigger_neighbor)
        phase2 = self.phase2_for(initiator, trigger_neighbor)

        # Per-test-case accounting (§IV): the walk is attributed to every
        # test case of this initiator, and each case counts one SP
        # calculation regardless of tree caching.
        accounting = RecoveryAccounting()
        accounting.clock = phase1.duration
        accounting.hops_traveled = phase1.hops
        accounting.header_timeline = list(phase1.header_timeline)
        accounting.count_sp(1)

        outcome = run_phase2(
            self.topo, self.view, self.engine, phase2, destination, accounting
        )

        # Wasted transmission (§IV-D): ``h`` is the hops from the recovery
        # initiator to the node discarding the packet.  The phase-1 walk is
        # not waste — it is the (separately accounted) transmission overhead
        # that produces the failure information — so RTR wastes hops only
        # when phase 2 computed a route that turned out to contain a missed
        # failure.  When no route exists, packets die at the initiator
        # itself (h = 0), which is exactly the early discard of §II-C.
        if outcome.delivered:
            drop_hops = 0
            drop_bytes = 0
        elif outcome.route is None:
            drop_hops = 0
            drop_bytes = DEFAULT_PAYLOAD_BYTES + _phase1_final_header_bytes(phase1)
        else:
            # The route contained a failure phase 1 missed (§III-D).
            drop_hops = outcome.hops_traveled
            drop_bytes = DEFAULT_PAYLOAD_BYTES + outcome.route_header_bytes

        return RecoveryResult(
            approach=APPROACH_NAME,
            delivered=outcome.delivered,
            path=outcome.route if outcome.delivered else None,
            accounting=accounting,
            phase1_duration=phase1.duration,
            phase1_hops=phase1.hops,
            drop_hops=drop_hops,
            drop_packet_bytes=drop_bytes,
        )

    def recover_flow(self, source: int, destination: int) -> RecoveryResult:
        """Recover the failed default routing path ``source -> destination``.

        Walks the pre-failure path to the node that detects the failure (the
        recovery initiator, §II-B) and runs recovery there.
        """
        initiator, trigger = self.find_initiator(source, destination)
        return self.recover(initiator, destination, trigger)

    def find_initiator(self, source: int, destination: int) -> tuple:
        """The node on the default path that detects the failure.

        Returns ``(initiator, unreachable_next_hop)``.  Raises when the
        source failed, when there is no pre-failure route, or when the
        default path did not fail at all (RTR is never invoked then).
        """
        if not self.scenario.is_node_live(source):
            raise SimulationError(f"source {source} has failed; nothing to recover")
        path = self.routing.path(source, destination)
        if path is None:
            raise SimulationError(
                f"no pre-failure route {source} -> {destination}"
            )
        for node, nxt in path.hops():
            if not self.view.is_neighbor_reachable(node, nxt):
                return node, nxt
        raise SimulationError(
            f"default path {source} -> {destination} did not fail"
        )


def _phase1_final_header_bytes(phase1: Phase1Result) -> int:
    """Recovery header size at the end of the phase-1 walk."""
    if phase1.header_timeline:
        return phase1.header_timeline[-1][1]
    # Isolated initiator: the packet never left, only fixed fields existed.
    from ..simulator import FIXED_RTR_HEADER_BYTES

    return FIXED_RTR_HEADER_BYTES
