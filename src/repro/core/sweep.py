"""The right-hand sweeping rule (§III-B).

Phase 1 steers packets around the failure area by rotating a *sweeping
line* counterclockwise about the current node, starting from a reference
link, until it reaches a live neighbor:

* at the recovery initiator ``v_i`` whose default next hop ``v_j`` is
  unreachable, the sweeping line starts at link ``e_{i,j}``;
* at any other node ``v_m`` that received the packet from ``v_n``, the
  sweeping line starts at link ``e_{m,n}``.

On general graphs the sweep additionally skips candidates excluded by the
``cross_link`` constraints (§III-C) — see :mod:`repro.core.constraints`.

The previous hop itself is a valid candidate but sorts *last* (angle
``2*pi``), which is what makes packets back out of tree branches.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..failures import LocalView
from ..geometry import TWO_PI, ccw_angle
from ..topology import Link, Topology

#: Predicate deciding whether the link from the current node to a candidate
#: neighbor is excluded by the cross-link constraints.
ExclusionFn = Callable[[Link], bool]


def neighbor_sweep_order(
    topo: Topology,
    current: int,
    reference_neighbor: int,
    clockwise: bool = False,
) -> List[Tuple[float, int, int]]:
    """Neighbors of ``current`` in sweep order from the reference direction.

    Returns ``(angle, node_id, node)`` triples sorted by counterclockwise
    angle from the direction of ``reference_neighbor`` (clockwise when
    ``clockwise`` — the mirror ablation of DESIGN.md §4).  The reference
    neighbor itself appears with angle ``2*pi``.  Node id breaks exact angle
    ties deterministically.
    """
    origin = topo.position(current)
    reference_dir = topo.position(reference_neighbor) - origin
    entries: List[Tuple[float, int, int]] = []
    for nb in topo.neighbors(current):
        target_dir = topo.position(nb) - origin
        angle = ccw_angle(reference_dir, target_dir)
        if clockwise and angle < TWO_PI:
            # Mirror the sweep; the reference stays at the end of the order.
            angle = TWO_PI - angle
        entries.append((angle, nb, nb))
    entries.sort(key=lambda e: (e[0], e[1]))
    return entries


def select_next_hop(
    topo: Topology,
    view: LocalView,
    current: int,
    reference_neighbor: int,
    is_excluded: Optional[ExclusionFn] = None,
    clockwise: bool = False,
) -> Optional[int]:
    """The live, non-excluded neighbor the sweeping rule selects.

    ``None`` when every neighbor is unreachable or excluded — only possible
    at an isolated initiator; §III-C notes an interior node can always fall
    back to its previous hop.
    """
    for _angle, _tiebreak, nb in neighbor_sweep_order(
        topo, current, reference_neighbor, clockwise
    ):
        if not view.is_neighbor_reachable(current, nb):
            continue
        if is_excluded is not None and is_excluded(Link.of(current, nb)):
            continue
        return nb
    return None


def first_hop(
    topo: Topology,
    view: LocalView,
    initiator: int,
    unreachable_next_hop: int,
    is_excluded: Optional[ExclusionFn] = None,
    clockwise: bool = False,
) -> Optional[int]:
    """Case 1 of §III-B: the initiator's first hop.

    The sweeping line starts at the link to the unreachable default next
    hop; the rule is otherwise identical to the interior-node case.
    """
    return select_next_hop(
        topo, view, initiator, unreachable_next_hop, is_excluded, clockwise
    )
