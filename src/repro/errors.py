"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class TopologyError(ReproError):
    """A topology is malformed or an operation referenced a missing element."""


class UnknownNodeError(TopologyError):
    """An operation referenced a node id that is not in the topology."""

    def __init__(self, node: int) -> None:
        super().__init__(f"unknown node id: {node!r}")
        self.node = node


class UnknownLinkError(TopologyError):
    """An operation referenced a link that is not in the topology."""

    def __init__(self, link: object) -> None:
        super().__init__(f"unknown link: {link!r}")
        self.link = link


class RoutingError(ReproError):
    """A routing computation failed (e.g. no path exists where one is required)."""


class NoPathError(RoutingError):
    """No path exists between the requested source and destination."""

    def __init__(self, source: int, destination: int) -> None:
        super().__init__(f"no path from node {source} to node {destination}")
        self.source = source
        self.destination = destination


class SimulationError(ReproError):
    """The packet-level simulator reached an inconsistent state."""


class ForwardingLoopError(SimulationError):
    """A forwarding walk exceeded its hop budget.

    Theorem 1 of the paper guarantees RTR's first phase is free of permanent
    loops; this error therefore indicates either a malformed topology
    (e.g. inconsistent coordinates) or an implementation bug, and carries the
    partial walk for debugging.
    """

    def __init__(self, message: str, walk: list) -> None:
        super().__init__(message)
        self.walk = walk


class ConfigurationError(ReproError):
    """Backup-configuration generation (MRC) could not satisfy its invariants."""


class ChaosError(ReproError):
    """A fault-injection plan is malformed or references missing elements."""


class EvaluationError(ReproError):
    """An experiment driver was invoked with unusable parameters."""


class TimelineError(ReproError):
    """A failure timeline is malformed or cannot be built."""


class SoakError(ReproError):
    """A soak run configuration or checkpoint journal is unusable."""


class StoreError(ReproError):
    """The persistent run store is missing, incompatible, or corrupt."""
