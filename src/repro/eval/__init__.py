"""Evaluation harness: test cases, metrics, and per-figure experiments."""

from .cases import (
    CaseSet,
    TestCase,
    count_failed_routing_paths,
    enumerate_scenario_cases,
    generate_cases,
)
from .cdf import cdf_at, cdf_points, percentile, sampled_cdf, summarize
from .metrics import (
    CaseRecord,
    IrrecoverableSummary,
    RecoverableSummary,
    ResilienceSummary,
    phase1_duration_values,
    savings_ratio,
    sp_computation_values,
    stretch_values,
    summarize_irrecoverable,
    summarize_recoverable,
    summarize_resilience,
    wasted_transmission_values,
)
from .runner import ALL_APPROACHES, EvaluationRunner
from .statistics import mean_interval, rate_row, rates_overlap, wilson_interval
from . import episodes
from . import experiments
from . import motivation
from . import parallel
from . import report
from . import sweeps

__all__ = [
    "CaseSet",
    "TestCase",
    "count_failed_routing_paths",
    "enumerate_scenario_cases",
    "generate_cases",
    "cdf_at",
    "cdf_points",
    "percentile",
    "sampled_cdf",
    "summarize",
    "CaseRecord",
    "IrrecoverableSummary",
    "RecoverableSummary",
    "ResilienceSummary",
    "phase1_duration_values",
    "savings_ratio",
    "sp_computation_values",
    "stretch_values",
    "summarize_irrecoverable",
    "summarize_recoverable",
    "summarize_resilience",
    "wasted_transmission_values",
    "ALL_APPROACHES",
    "EvaluationRunner",
    "mean_interval",
    "rate_row",
    "rates_overlap",
    "wilson_interval",
    "episodes",
    "experiments",
    "motivation",
    "parallel",
    "report",
    "sweeps",
]
