"""Test-case generation (§IV-A).

A test case is determined by three factors: the recovery initiator, the
destination, and the failure area.  Failed routing paths with a failed
source are ignored; paths sharing (initiator, destination, area) collapse
into one case.  Cases are *recoverable* when the destination is still
reachable from the initiator in ``G - E2`` and *irrecoverable* otherwise
(destination failed or partitioned away).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..baselines import Oracle
from ..failures import (
    PAPER_RADIUS_RANGE,
    FailureScenario,
    LocalView,
    random_circle,
)
from ..routing import RoutingTable, SPTCache
from ..topology import Topology


@dataclass(frozen=True)
class TestCase:
    """One (initiator, destination, failure-area) recovery test case."""

    scenario_index: int
    initiator: int
    destination: int
    #: The unreachable default next hop that triggers recovery.
    trigger: int
    #: Whether the destination is reachable from the initiator in G - E2.
    recoverable: bool
    #: Ground-truth optimal recovery cost (None when irrecoverable).
    optimal_cost: Optional[float]


@dataclass
class CaseSet:
    """Test cases grouped with the failure scenarios that produced them."""

    topo: Topology
    routing: RoutingTable
    scenarios: List[FailureScenario] = field(default_factory=list)
    cases: List[TestCase] = field(default_factory=list)

    def recoverable_cases(self) -> List[TestCase]:
        """Cases whose destination is reachable (§IV-C's population)."""
        return [c for c in self.cases if c.recoverable]

    def irrecoverable_cases(self) -> List[TestCase]:
        """Cases whose destination is unreachable (§IV-D's population)."""
        return [c for c in self.cases if not c.recoverable]

    def by_scenario(self) -> Dict[int, List[TestCase]]:
        """Cases keyed by their scenario index."""
        grouped: Dict[int, List[TestCase]] = {}
        for case in self.cases:
            grouped.setdefault(case.scenario_index, []).append(case)
        return grouped


def enumerate_scenario_cases(
    topo: Topology,
    routing: RoutingTable,
    scenario: FailureScenario,
    scenario_index: int = 0,
    cache: Optional[SPTCache] = None,
) -> Iterator[TestCase]:
    """All distinct test cases of one failure scenario.

    A live router with at least one unreachable neighbor is a potential
    initiator; it initiates recovery for exactly the destinations whose
    default next hop became unreachable.  Destinations include failed
    routers — the initiator cannot know they are gone, and such cases are
    the irrecoverable ones §II-C cares about.
    """
    view = LocalView(scenario)
    oracle = Oracle(topo, scenario, cache=cache)
    for initiator in scenario.live_nodes():
        unreachable = set(view.unreachable_neighbors(initiator))
        if not unreachable:
            continue
        for destination in topo.nodes():
            if destination == initiator:
                continue
            next_hop = routing.next_hop(initiator, destination)
            if next_hop is None or next_hop not in unreachable:
                continue
            optimal = oracle.optimal_cost(initiator, destination)
            yield TestCase(
                scenario_index=scenario_index,
                initiator=initiator,
                destination=destination,
                trigger=next_hop,
                recoverable=optimal is not None,
                optimal_cost=optimal,
            )


def count_failed_routing_paths(
    topo: Topology,
    routing: RoutingTable,
    scenario: FailureScenario,
) -> Tuple[int, int]:
    """(recoverable, irrecoverable) counts over *failed routing paths*.

    Fig. 11 counts source-destination pairs, not deduplicated test cases: a
    path fails when it contains a failed node or link and its source is
    live; it is irrecoverable when the destination is unreachable from the
    source in ``G - E2``.  Per-destination memoization keeps this O(n) per
    destination: a node's path fails iff its next hop is unreachable or the
    next hop's path fails.
    """
    live = scenario.live_nodes()
    # Live components for reachability classification.
    component: Dict[int, int] = {}
    comp_id = 0
    excluded_links = set(scenario.failed_links)
    for node in live:
        if node in component:
            continue
        members = topo.component_of(
            node,
            excluded_nodes=set(scenario.failed_nodes),
            excluded_links=excluded_links,
        )
        for member in members:
            component[member] = comp_id
        comp_id += 1

    view = LocalView(scenario)
    recoverable = 0
    irrecoverable = 0
    for destination in topo.nodes():
        tree = routing.tree_to(destination)
        # ok[v]: the pre-failure path v -> destination survived intact.
        ok: Dict[int, bool] = {destination: scenario.is_node_live(destination)}
        for source in live:
            if source == destination or not tree.reaches(source):
                continue
            # Walk next hops until a cached verdict or a failed hop.  Every
            # node on the chain is live: we only advance over reachable
            # hops, and a reachable neighbor is by definition live.
            chain = []
            node = source
            verdict: Optional[bool] = None
            while verdict is None:
                cached = ok.get(node)
                if cached is not None:
                    verdict = cached
                    break
                chain.append(node)
                nxt = tree.next_hop(node)
                if not view.is_neighbor_reachable(node, nxt):
                    verdict = False
                    break
                node = nxt
            for visited in chain:
                ok[visited] = verdict
            if not ok.get(source, True):
                # A failed routing path with a live source.
                same_component = (
                    destination in component
                    and component.get(source) == component.get(destination)
                )
                if same_component:
                    recoverable += 1
                else:
                    irrecoverable += 1
    return recoverable, irrecoverable


def generate_cases(
    topo: Topology,
    rng: random.Random,
    n_recoverable: int,
    n_irrecoverable: int,
    radius_range: Tuple[float, float] = PAPER_RADIUS_RANGE,
    routing: Optional[RoutingTable] = None,
    max_scenarios: int = 100_000,
    cache: Optional[SPTCache] = None,
) -> CaseSet:
    """Generate failure areas until both case quotas are met (§IV-A).

    Mirrors the paper's setup: random circles, all resulting distinct test
    cases collected, until ``n_recoverable`` recoverable and
    ``n_irrecoverable`` irrecoverable cases exist.  ``cache`` (optional)
    shares oracle/routing trees with the rest of a sweep.
    """
    routing = routing if routing is not None else RoutingTable(topo, cache=cache)
    case_set = CaseSet(topo=topo, routing=routing)
    got_rec = 0
    got_irr = 0
    for _ in range(max_scenarios):
        if got_rec >= n_recoverable and got_irr >= n_irrecoverable:
            break
        scenario = FailureScenario.from_region(
            topo, random_circle(rng, radius_range)
        )
        if not scenario.failed_links:
            continue
        index = len(case_set.scenarios)
        scenario_used = False
        for case in enumerate_scenario_cases(topo, routing, scenario, index, cache):
            if case.recoverable:
                if got_rec >= n_recoverable:
                    continue
                got_rec += 1
            else:
                if got_irr >= n_irrecoverable:
                    continue
                got_irr += 1
            case_set.cases.append(case)
            scenario_used = True
        if scenario_used:
            case_set.scenarios.append(scenario)
        # An unused scenario would leave a hole in the index sequence;
        # drop it entirely instead.
    return case_set
