"""Empirical CDF utilities for the figure reproductions."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """The empirical CDF as ``(value, P[X <= value])`` step points."""
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    points: List[Tuple[float, float]] = []
    for i, v in enumerate(data, start=1):
        if points and points[-1][0] == v:
            points[-1] = (v, i / n)
        else:
            points.append((v, i / n))
    return points


def cdf_at(values: Sequence[float], x: float) -> float:
    """``P[X <= x]`` of the empirical distribution."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= x) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by nearest-rank (ceil, the classic rule)."""
    if not values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    import math

    data = sorted(values)
    rank = max(1, math.ceil(q * len(data)))
    return data[min(rank, len(data)) - 1]


def sampled_cdf(
    values: Sequence[float], xs: Iterable[float]
) -> List[Tuple[float, float]]:
    """The CDF sampled at the given x positions (for aligned plotting)."""
    data = sorted(values)
    n = len(data)
    out: List[Tuple[float, float]] = []
    i = 0
    for x in sorted(xs):
        while i < n and data[i] <= x:
            i += 1
        out.append((x, i / n if n else 0.0))
    return out


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max / median of a sample (empty-safe)."""
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "median": 0.0}
    data = sorted(values)
    n = len(data)
    mid = data[n // 2] if n % 2 == 1 else (data[n // 2 - 1] + data[n // 2]) / 2.0
    return {
        "count": n,
        "mean": sum(data) / n,
        "min": data[0],
        "max": data[-1],
        "median": mid,
    }
