"""Recovery-episode artifacts: record, save, load, replay.

A recorded episode captures everything needed to reproduce one recovery
run bit-for-bit — the topology, the failure (region parameters and the
derived failed sets), the test case, and the observed outcome (walk,
collected links, recovery path, accounting).  Episodes serialize to JSON,
so experiment outputs can be archived next to the numbers they produced
and replayed later: :func:`replay` re-runs RTR on the reconstructed world
and verifies the recorded outcome still holds (a drift detector for the
protocol implementation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core import RTR, RTRConfig
from ..errors import EvaluationError
from ..failures import FailureScenario
from ..geometry import Circle, Point
from ..topology import Link, Topology, topology_from_dict, topology_to_dict

FORMAT_VERSION = 1


@dataclass
class Episode:
    """One fully reproducible recovery run."""

    topology: Topology
    scenario: FailureScenario
    initiator: int
    destination: int
    trigger: int
    #: Observed outcome.
    delivered: bool
    walk: List[int]
    collected_failed_links: List[Link]
    recovery_path: Optional[List[int]]
    sp_computations: int
    phase1_duration: float

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        region = self.scenario.region
        region_dict = None
        if isinstance(region, Circle):
            region_dict = {
                "type": "circle",
                "cx": region.center.x,
                "cy": region.center.y,
                "radius": region.radius,
            }
        return {
            "format": FORMAT_VERSION,
            "topology": topology_to_dict(self.topology),
            "region": region_dict,
            "failed_nodes": sorted(self.scenario.failed_nodes),
            "failed_links": sorted(
                [link.u, link.v] for link in self.scenario.failed_links
            ),
            "case": {
                "initiator": self.initiator,
                "destination": self.destination,
                "trigger": self.trigger,
            },
            "outcome": {
                "delivered": self.delivered,
                "walk": self.walk,
                "collected_failed_links": [
                    [link.u, link.v] for link in self.collected_failed_links
                ],
                "recovery_path": self.recovery_path,
                "sp_computations": self.sp_computations,
                "phase1_duration": self.phase1_duration,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Episode":
        """Rebuild an episode from :meth:`to_dict` output."""
        if data.get("format") != FORMAT_VERSION:
            raise EvaluationError(f"unsupported episode format {data.get('format')!r}")
        topo = topology_from_dict(data["topology"])
        region = None
        if data.get("region") and data["region"]["type"] == "circle":
            r = data["region"]
            region = Circle(Point(r["cx"], r["cy"]), r["radius"])
        scenario = FailureScenario(
            topo,
            failed_nodes=data["failed_nodes"],
            failed_links=[Link.of(u, v) for u, v in data["failed_links"]],
            region=region,
        )
        case = data["case"]
        outcome = data["outcome"]
        return cls(
            topology=topo,
            scenario=scenario,
            initiator=case["initiator"],
            destination=case["destination"],
            trigger=case["trigger"],
            delivered=outcome["delivered"],
            walk=list(outcome["walk"]),
            collected_failed_links=[
                Link.of(u, v) for u, v in outcome["collected_failed_links"]
            ],
            recovery_path=outcome["recovery_path"],
            sp_computations=outcome["sp_computations"],
            phase1_duration=outcome["phase1_duration"],
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the episode as JSON."""
        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2))
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Episode":
        """Read an episode written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def record(
    topo: Topology,
    scenario: FailureScenario,
    initiator: int,
    destination: int,
    trigger: Optional[int] = None,
    config: Optional[RTRConfig] = None,
) -> Episode:
    """Run one RTR recovery and capture it as an :class:`Episode`."""
    rtr = RTR(topo, scenario, config=config)
    result = rtr.recover(initiator, destination, trigger)
    actual_trigger = trigger
    if actual_trigger is None:
        actual_trigger = rtr.routing.next_hop(initiator, destination)
    phase1 = rtr.phase1_for(initiator, actual_trigger)
    return Episode(
        topology=topo,
        scenario=scenario,
        initiator=initiator,
        destination=destination,
        trigger=actual_trigger,
        delivered=result.delivered,
        walk=list(phase1.walk),
        collected_failed_links=list(phase1.collected_failed_links),
        recovery_path=list(result.path.nodes) if result.path else None,
        sp_computations=result.sp_computations,
        phase1_duration=phase1.duration,
    )


class ReplayMismatch(EvaluationError):
    """A replayed episode diverged from its recording."""


def replay(episode: Episode, config: Optional[RTRConfig] = None) -> None:
    """Re-run the episode and raise :class:`ReplayMismatch` on divergence."""
    fresh = record(
        episode.topology,
        episode.scenario,
        episode.initiator,
        episode.destination,
        episode.trigger,
        config=config,
    )
    checks = [
        ("delivered", episode.delivered, fresh.delivered),
        ("walk", episode.walk, fresh.walk),
        (
            "collected_failed_links",
            episode.collected_failed_links,
            fresh.collected_failed_links,
        ),
        ("recovery_path", episode.recovery_path, fresh.recovery_path),
        ("sp_computations", episode.sp_computations, fresh.sp_computations),
    ]
    for name, recorded, replayed in checks:
        if recorded != replayed:
            raise ReplayMismatch(
                f"episode field {name!r} diverged: "
                f"recorded {recorded!r}, replayed {replayed!r}"
            )
