"""Experiment drivers — one function per table/figure of §IV.

Every driver returns plain data (dicts / lists of rows or CDF points) so
the same code feeds the benchmark harness, the examples, and
EXPERIMENTS.md.  Scale is a parameter everywhere: the paper uses 10,000
recoverable + 10,000 irrecoverable cases per topology and 1,000 failure
areas per radius; the defaults here are laptop-sized, and
``examples/full_evaluation.py --paper-scale`` runs the full counts.
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..failures import FailureScenario, circle_scenarios, fixed_radius_scenarios
from ..routing import RoutingTable, SPTCache
from ..topology import Topology, isp_catalog, topology_from_spec
from .cases import (
    CaseSet,
    count_failed_routing_paths,
    generate_cases,
)
from .cdf import cdf_points, summarize
from .metrics import (
    CaseRecord,
    phase1_duration_values,
    savings_ratio,
    sp_computation_values,
    stretch_values,
    summarize_irrecoverable,
    summarize_recoverable,
    wasted_transmission_values,
)
from .runner import ALL_APPROACHES, EvaluationRunner

DEFAULT_TOPOLOGIES: Tuple[str, ...] = tuple(isp_catalog.names())


#: Built topologies are immutable during evaluation (failures are modeled
#: as exclusion sets, never as mutations), so drivers in one process share
#: a single instance per (name, seed) — the CSR view and precomputed
#: cross-link sets are then built once instead of once per driver call.
_TOPOLOGY_CACHE: Dict[Tuple[str, int], Topology] = {}


def _build_topology(name: str, seed: int) -> Topology:
    """Resolve any topology spec (catalog AS, ``grid:``, ``scale:``, ``file:``).

    Catalog names remain the common case; routing through
    :func:`~repro.topology.specs.topology_from_spec` lets every
    experiment run on generated internet-scale or file-loaded graphs too.
    """
    key = (name, seed)
    topo = _TOPOLOGY_CACHE.get(key)
    if topo is None:
        topo = topology_from_spec(name, seed=seed)
        _TOPOLOGY_CACHE[key] = topo
    return topo


def _cases_and_records(
    name: str,
    n_recoverable: int,
    n_irrecoverable: int,
    seed: int,
    approaches: Sequence[str],
) -> Tuple[CaseSet, Dict[str, List[CaseRecord]]]:
    with obs.span("eval.sweep", topology=name):
        topo = _build_topology(name, seed)
        rng = random.Random(seed * 7_919 + 13)
        # One SPT pool serves case generation (oracle classification) and the
        # protocol runs; all of them route on the same scenario exclusions.
        cache = SPTCache()
        case_set = generate_cases(
            topo, rng, n_recoverable, n_irrecoverable, cache=cache
        )
        runner = EvaluationRunner(
            topo, routing=case_set.routing, approaches=approaches, sp_cache=cache
        )
        records = runner.run(case_set)
        obs.gauge(f"spt_cache.hit_rate.{name}", cache.hit_rate())
    return case_set, records


def _split_records(
    case_set: CaseSet, records: Dict[str, List[CaseRecord]]
) -> Tuple[Dict[str, List[CaseRecord]], Dict[str, List[CaseRecord]]]:
    recoverable: Dict[str, List[CaseRecord]] = {}
    irrecoverable: Dict[str, List[CaseRecord]] = {}
    for approach, recs in records.items():
        recoverable[approach] = [r for r in recs if r.case.recoverable]
        irrecoverable[approach] = [r for r in recs if not r.case.recoverable]
    return recoverable, irrecoverable


# ----------------------------------------------------------------------
# Table II — topology summary
# ----------------------------------------------------------------------


def table2_topologies(seed: int = 0, include_extended: bool = False) -> List[Dict]:
    """Table II: per-AS node and link counts, verified against a build."""
    rows: List[Dict] = []
    for row in isp_catalog.summary_rows(include_extended):
        topo = _build_topology(str(row["topology"]), seed)
        rows.append(
            {
                **row,
                "built_nodes": topo.node_count,
                "built_links": topo.link_count,
                "connected": topo.is_connected(),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 7 — CDF of the duration of the first phase
# ----------------------------------------------------------------------


def fig7_phase1_duration(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_recoverable: int = 300,
    n_irrecoverable: int = 300,
    seed: int = 0,
) -> Dict[str, Dict]:
    """Fig. 7: per-topology CDF of RTR's phase-1 duration in milliseconds.

    RTR has the same first phase in recoverable and irrecoverable cases, so
    both populations contribute (§IV-B).
    """
    out: Dict[str, Dict] = {}
    for name in topologies:
        _cs, records = _cases_and_records(
            name, n_recoverable, n_irrecoverable, seed, approaches=("RTR",)
        )
        durations_ms = [1000.0 * d for d in phase1_duration_values(records["RTR"])]
        out[name] = {
            "cdf": cdf_points(durations_ms),
            "summary": summarize(durations_ms),
        }
    return out


# ----------------------------------------------------------------------
# Table III + Figs. 8-9 — recoverable test cases
# ----------------------------------------------------------------------


def table3_recoverable(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_cases: int = 300,
    seed: int = 0,
    approaches: Sequence[str] = ALL_APPROACHES,
) -> Dict[str, Dict]:
    """Table III: recovery rate / optimal rate / max stretch / max SP calcs.

    Returns ``topology -> {approach -> summary row}`` plus an ``Overall``
    entry aggregated across every topology, as the paper's last row.
    """
    per_topo: Dict[str, Dict] = {}
    pooled: Dict[str, List[CaseRecord]] = {a: [] for a in approaches}
    for name in topologies:
        case_set, records = _cases_and_records(name, n_cases, 0, seed, approaches)
        rec, _irr = _split_records(case_set, records)
        per_topo[name] = {
            a: summarize_recoverable(rec[a]).as_dict() for a in approaches
        }
        for a in approaches:
            pooled[a].extend(rec[a])
    per_topo["Overall"] = {
        a: summarize_recoverable(pooled[a]).as_dict() for a in approaches
    }
    return per_topo


def fig8_stretch(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_cases: int = 300,
    seed: int = 0,
    approaches: Sequence[str] = ("RTR", "FCP"),
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Fig. 8: CDF of the stretch of successfully recovered paths."""
    out: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for name in topologies:
        case_set, records = _cases_and_records(name, n_cases, 0, seed, approaches)
        rec, _ = _split_records(case_set, records)
        out[name] = {a: cdf_points(stretch_values(rec[a])) for a in approaches}
    return out


def fig9_sp_computations(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_cases: int = 300,
    seed: int = 0,
    approaches: Sequence[str] = ("RTR", "FCP"),
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Fig. 9: CDF of shortest-path calculations on recoverable cases."""
    out: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for name in topologies:
        case_set, records = _cases_and_records(name, n_cases, 0, seed, approaches)
        rec, _ = _split_records(case_set, records)
        out[name] = {
            a: cdf_points([float(v) for v in sp_computation_values(rec[a])])
            for a in approaches
        }
    return out


# ----------------------------------------------------------------------
# Fig. 10 — transmission overhead over time
# ----------------------------------------------------------------------


def _overhead_at(record: CaseRecord, t: float) -> float:
    """Recovery header bytes on the wire at time ``t`` for one case.

    During the recorded per-hop timeline the in-flight hop's header size
    applies; afterwards the steady state is the phase-2 source route (RTR)
    or the final header (FCP) for delivered cases, and 0 for dropped ones
    (packets toward unreachable destinations die at the initiator).
    """
    timeline = record.result.accounting.header_timeline
    for when, header_bytes in timeline:
        if t < when:
            return float(header_bytes)
    if not record.result.delivered:
        return 0.0
    if record.result.approach == "RTR":
        path = record.result.path
        assert path is not None
        from ..simulator import BYTES_PER_ID, FIXED_RTR_HEADER_BYTES

        return float(FIXED_RTR_HEADER_BYTES + BYTES_PER_ID * len(path.nodes))
    if timeline:
        return float(timeline[-1][1])
    return 0.0


def fig10_transmission_timeline(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_cases: int = 200,
    seed: int = 0,
    horizon: float = 1.0,
    step: float = 0.02,
    approaches: Sequence[str] = ("RTR", "FCP"),
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Fig. 10: average header overhead (bytes) vs time, first second.

    RTR starts high while first-phase packets carry growing failed/cross
    link lists, then converges to the (smaller) source-route size; FCP
    converges to its final failed-links + source-route header.
    """
    times = [round(i * step, 9) for i in range(int(horizon / step) + 1)]
    out: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for name in topologies:
        case_set, records = _cases_and_records(name, n_cases, 0, seed, approaches)
        rec, _ = _split_records(case_set, records)
        series: Dict[str, List[Tuple[float, float]]] = {}
        for a in approaches:
            recs = rec[a]
            pts = []
            for t in times:
                total = sum(_overhead_at(r, t) for r in recs)
                pts.append((t, total / len(recs) if recs else 0.0))
            series[a] = pts
        out[name] = series
    return out


# ----------------------------------------------------------------------
# Fig. 11 — share of irrecoverable failed routing paths vs radius
# ----------------------------------------------------------------------


def fig11_irrecoverable_fraction(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    radii: Optional[Iterable[float]] = None,
    n_areas_per_radius: int = 50,
    seed: int = 0,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 11: percentage of failed routing paths that are irrecoverable.

    The paper sweeps the radius from 20 to 300 in increments of 20 with
    1,000 areas per radius.  Counts are over *failed routing paths* — all
    source-destination pairs with a live source whose default path
    contains a failed element — classified by whether the destination is
    still reachable from the source in ``G - E2``.
    """
    radius_list = list(radii) if radii is not None else [20.0 * i for i in range(1, 16)]
    out: Dict[str, List[Tuple[float, float]]] = {}
    for name in topologies:
        topo = _build_topology(name, seed)
        routing = RoutingTable(topo)
        routing.precompute_all()
        series: List[Tuple[float, float]] = []
        for radius in radius_list:
            rng = random.Random((seed + 1) * 104_729 + int(radius * 1000))
            gen = fixed_radius_scenarios(topo, rng, radius)
            recoverable = irrecoverable = 0
            for _ in range(n_areas_per_radius):
                scenario = next(gen)
                if not scenario.failed_links:
                    continue
                rec, irr = count_failed_routing_paths(topo, routing, scenario)
                recoverable += rec
                irrecoverable += irr
            total = recoverable + irrecoverable
            pct = 100.0 * irrecoverable / total if total else 0.0
            series.append((radius, pct))
        out[name] = series
    return out


# ----------------------------------------------------------------------
# Figs. 12-13 + Table IV — irrecoverable test cases
# ----------------------------------------------------------------------


def fig12_wasted_computation(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_cases: int = 300,
    seed: int = 0,
    approaches: Sequence[str] = ("RTR", "FCP"),
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Fig. 12: CDF of wasted shortest-path calculations."""
    out: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for name in topologies:
        case_set, records = _cases_and_records(name, 0, n_cases, seed, approaches)
        _, irr = _split_records(case_set, records)
        out[name] = {
            a: cdf_points([float(v) for v in sp_computation_values(irr[a])])
            for a in approaches
        }
    return out


def fig13_wasted_transmission(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_cases: int = 300,
    seed: int = 0,
    approaches: Sequence[str] = ("RTR", "FCP"),
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Fig. 13: CDF of wasted transmission (``s * h``, §IV-D)."""
    out: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for name in topologies:
        case_set, records = _cases_and_records(name, 0, n_cases, seed, approaches)
        _, irr = _split_records(case_set, records)
        out[name] = {
            a: cdf_points(wasted_transmission_values(irr[a])) for a in approaches
        }
    return out


# ----------------------------------------------------------------------
# Traffic-weighted Table III (repro.traffic — not in the paper)
# ----------------------------------------------------------------------

#: Flow population of the default traffic sweep.
DEFAULT_TRAFFIC_FLOWS = 1_000_000

#: Failure events per topology in the default traffic sweep.
DEFAULT_TRAFFIC_SCENARIOS = 10


def traffic_scenario_list(
    topo: Topology, seed: int, n_scenarios: int
) -> List[FailureScenario]:
    """The deterministic scenario sequence of one traffic sweep.

    Shared by the serial driver and every parallel shard worker — the
    scenario at index ``i`` is identical everywhere for a given
    ``(topology, seed)``.
    """
    rng = random.Random(seed * 9_176 + 29)
    return list(islice(circle_scenarios(topo, rng), n_scenarios))


def traffic_weighted_table3(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_scenarios: int = DEFAULT_TRAFFIC_SCENARIOS,
    seed: int = 0,
    model: str = "gravity",
    total_demand: Optional[float] = None,
    n_flows: int = DEFAULT_TRAFFIC_FLOWS,
    approaches: Sequence[str] = ("RTR", "FCP"),
    congestion_aware: bool = False,
    headroom: Optional[float] = None,
    utilization_cap: Optional[float] = None,
) -> Dict[str, Dict]:
    """Traffic-weighted Table III: recovery quality weighted by demand.

    For each topology a seeded demand matrix (``model``) is built, a
    synthetic population of ``n_flows`` flows is apportioned over its OD
    pairs, and ``n_scenarios`` failure areas are replayed through the
    flow-level batched simulator (:class:`repro.traffic.TrafficEngine`).
    Returns ``topology -> {approach -> weighted summary row}`` plus an
    ``Overall`` entry pooled across topologies, like
    :func:`table3_recoverable`.

    ``congestion_aware=True`` switches the sweep to the live-load loop of
    :mod:`repro.te` (penalized phase-2 selection plus optional
    ``utilization_cap`` admission control); ``headroom`` overrides the
    capacity provisioning factor.
    """
    from ..traffic import (
        DEFAULT_HEADROOM,
        DEFAULT_TOTAL_DEMAND,
        TrafficEngine,
        TrafficScenarioRecord,
        aggregate_flows,
        generate_matrix,
        summarize_traffic,
    )

    demand = DEFAULT_TOTAL_DEMAND if total_demand is None else total_demand
    headroom = DEFAULT_HEADROOM if headroom is None else headroom
    per_topo: Dict[str, Dict] = {}
    pooled: Dict[str, List[TrafficScenarioRecord]] = {a: [] for a in approaches}
    for name in topologies:
        with obs.span("traffic.sweep", topology=name):
            topo = _build_topology(name, seed)
            matrix = generate_matrix(topo, model, total_demand=demand, seed=seed)
            flow_set = aggregate_flows(matrix, n_flows)
            obs.inc("traffic.flows.total", flow_set.n_flows)
            scenarios = traffic_scenario_list(topo, seed, n_scenarios)
            engine = TrafficEngine(
                topo,
                flow_set,
                approaches=approaches,
                congestion_aware=congestion_aware,
                headroom=headroom,
                utilization_cap=utilization_cap,
            )
            records = engine.run_sweep(scenarios)
        per_topo[name] = {
            a: summarize_traffic(records[a]).as_dict() for a in approaches
        }
        for a in approaches:
            pooled[a].extend(records[a])
    per_topo["Overall"] = {
        a: summarize_traffic(pooled[a]).as_dict() for a in approaches
    }
    return per_topo


def table4_wasted_summary(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    n_cases: int = 300,
    seed: int = 0,
    approaches: Sequence[str] = ("RTR", "FCP"),
) -> Dict[str, Dict]:
    """Table IV: avg/max wasted computation and transmission, plus the
    headline savings of §I (83.1 % computation, 75.6 % transmission)."""
    per_topo: Dict[str, Dict] = {}
    pooled: Dict[str, List[CaseRecord]] = {a: [] for a in approaches}
    for name in topologies:
        case_set, records = _cases_and_records(name, 0, n_cases, seed, approaches)
        _, irr = _split_records(case_set, records)
        per_topo[name] = {
            a: summarize_irrecoverable(irr[a]).as_dict() for a in approaches
        }
        for a in approaches:
            pooled[a].extend(irr[a])
    overall = {a: summarize_irrecoverable(pooled[a]) for a in approaches}
    per_topo["Overall"] = {a: overall[a].as_dict() for a in approaches}
    if "RTR" in overall and "FCP" in overall:
        per_topo["Savings"] = {
            "computation_saved_pct": round(
                100.0
                * savings_ratio(
                    overall["FCP"].avg_wasted_computation,
                    overall["RTR"].avg_wasted_computation,
                ),
                1,
            ),
            "transmission_saved_pct": round(
                100.0
                * savings_ratio(
                    overall["FCP"].avg_wasted_transmission,
                    overall["RTR"].avg_wasted_transmission,
                ),
                1,
            ),
        }
    return per_topo
