"""Golden-output regression harness.

Every simulation in this repository is deterministic for a fixed seed, so
a small, fast experiment run can be snapshotted and compared exactly —
catching *behavioural* drift (a changed sweep tie-break, an accounting
tweak) that the property-based tests might tolerate.  The checked-in
snapshot lives at ``tests/golden/small_run.json``; regenerate it
deliberately with ``python -m repro.eval.golden`` after an intentional
behaviour change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .experiments import (
    fig7_phase1_duration,
    table3_recoverable,
    table4_wasted_summary,
)

#: Parameters of the snapshot run — small enough for CI, fixed forever.
GOLDEN_TOPOLOGIES = ("AS1239", "AS209")
GOLDEN_CASES = 80
GOLDEN_SEED = 5

DEFAULT_PATH = (
    Path(__file__).resolve().parents[3] / "tests" / "golden" / "small_run.json"
)


def compute_snapshot() -> Dict[str, Any]:
    """Run the snapshot experiments and return a JSON-ready dict."""
    fig7 = fig7_phase1_duration(
        GOLDEN_TOPOLOGIES,
        n_recoverable=GOLDEN_CASES,
        n_irrecoverable=GOLDEN_CASES // 2,
        seed=GOLDEN_SEED,
    )
    return {
        "parameters": {
            "topologies": list(GOLDEN_TOPOLOGIES),
            "cases": GOLDEN_CASES,
            "seed": GOLDEN_SEED,
        },
        "table3": table3_recoverable(GOLDEN_TOPOLOGIES, GOLDEN_CASES, GOLDEN_SEED),
        "table4": table4_wasted_summary(GOLDEN_TOPOLOGIES, GOLDEN_CASES, GOLDEN_SEED),
        "fig7_summaries": {
            name: data["summary"] for name, data in fig7.items()
        },
    }


def write_snapshot(path: Union[str, Path] = DEFAULT_PATH) -> Path:
    """Compute and persist the golden snapshot."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(compute_snapshot(), indent=2, sort_keys=True))
    return target


def load_snapshot(path: Union[str, Path] = DEFAULT_PATH) -> Dict[str, Any]:
    """Read the stored golden snapshot."""
    return json.loads(Path(path).read_text())


def diff_against_golden(path: Union[str, Path] = DEFAULT_PATH) -> Dict[str, Any]:
    """Compare a fresh run to the snapshot; returns {} when identical.

    The comparison is exact after a JSON round-trip (which normalizes
    tuples to lists and float representations).
    """
    expected = load_snapshot(path)
    actual = json.loads(json.dumps(compute_snapshot(), sort_keys=True))
    differences: Dict[str, Any] = {}
    for key in sorted(set(expected) | set(actual)):
        if expected.get(key) != actual.get(key):
            differences[key] = {
                "expected": expected.get(key),
                "actual": actual.get(key),
            }
    return differences


if __name__ == "__main__":
    destination = write_snapshot()
    print(f"golden snapshot written to {destination}")
