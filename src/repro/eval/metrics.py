"""Evaluation metrics (§IV-C, §IV-D).

* **Recovery rate** — share of successfully recovered test cases.
* **Optimal recovery rate** — share recovered with the *shortest* recovery
  path (equal cost to the ground-truth shortest path in ``G - E2``).
* **Stretch** — recovery-path cost over optimal cost (1.0 is optimal).
* **Computational overhead** — on-demand shortest-path calculations.
* **Transmission overhead** — recovery bytes carried in packet headers.
* **Wasted computation / transmission** — the same costs spent on packets
  that are ultimately discarded (irrecoverable cases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..simulator import RecoveryResult
from .cases import TestCase
from .cdf import summarize

#: Tolerance when comparing path costs for optimality.
COST_TOLERANCE = 1e-9


def _rate(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with a defined 0.0 for an empty base.

    Every summary below uses this so that an empty record list — a sweep
    whose scenarios disrupted nothing, a shard with zero cases of one
    class — aggregates to a defined all-zero row instead of raising.
    """
    if denominator == 0:
        return 0.0
    return numerator / denominator


@dataclass
class CaseRecord:
    """One (test case, approach) outcome with derived metrics."""

    case: TestCase
    result: RecoveryResult

    @property
    def approach(self) -> str:
        """Name of the recovery approach."""
        return self.result.approach

    @property
    def delivered(self) -> bool:
        """Whether the packet reached the destination."""
        return self.result.delivered

    @property
    def status(self) -> str:
        """``delivered`` / ``dropped`` / ``fallback`` / ``error``."""
        return self.result.status

    def stretch(self) -> Optional[float]:
        """Recovery-path cost over optimal cost (delivered cases only)."""
        if not self.delivered or self.case.optimal_cost is None:
            return None
        if self.case.optimal_cost == 0:
            return 1.0
        assert self.result.path is not None
        return self.result.path.cost / self.case.optimal_cost

    def is_optimal(self) -> bool:
        """Whether the recovery path matched the ground-truth shortest."""
        s = self.stretch()
        return s is not None and abs(s - 1.0) <= COST_TOLERANCE


@dataclass
class RecoverableSummary:
    """The Table III row of one approach on one topology."""

    approach: str
    cases: int
    recovery_rate: float
    optimal_recovery_rate: float
    max_stretch: float
    max_sp_computations: int
    mean_sp_computations: float

    def as_dict(self) -> Dict[str, object]:
        """Row form for reports."""
        return {
            "approach": self.approach,
            "cases": self.cases,
            "recovery_rate_pct": round(100.0 * self.recovery_rate, 1),
            "optimal_recovery_rate_pct": round(
                100.0 * self.optimal_recovery_rate, 1
            ),
            "max_stretch": round(self.max_stretch, 2),
            "max_sp_computations": self.max_sp_computations,
            "mean_sp_computations": round(self.mean_sp_computations, 2),
        }


def summarize_recoverable(records: Sequence[CaseRecord]) -> RecoverableSummary:
    """Aggregate recoverable-case records into a Table III row.

    Empty input yields a defined all-zero row (never raises).
    """
    approach = records[0].approach if records else ""
    n = len(records)
    delivered = [r for r in records if r.delivered]
    optimal = [r for r in delivered if r.is_optimal()]
    stretches = [r.stretch() for r in delivered]
    sp = [r.result.sp_computations for r in records]
    return RecoverableSummary(
        approach=approach,
        cases=n,
        recovery_rate=_rate(len(delivered), n),
        optimal_recovery_rate=_rate(len(optimal), n),
        max_stretch=max((s for s in stretches if s is not None), default=0.0),
        max_sp_computations=max(sp, default=0),
        mean_sp_computations=_rate(sum(sp), n),
    )


@dataclass
class IrrecoverableSummary:
    """The Table IV row of one approach on one topology."""

    approach: str
    cases: int
    avg_wasted_computation: float
    max_wasted_computation: int
    avg_wasted_transmission: float
    max_wasted_transmission: float
    false_deliveries: int

    def as_dict(self) -> Dict[str, object]:
        """Row form for reports."""
        return {
            "approach": self.approach,
            "cases": self.cases,
            "avg_wasted_computation": round(self.avg_wasted_computation, 2),
            "max_wasted_computation": self.max_wasted_computation,
            "avg_wasted_transmission": round(self.avg_wasted_transmission, 1),
            "max_wasted_transmission": round(self.max_wasted_transmission, 1),
        }


def summarize_irrecoverable(records: Sequence[CaseRecord]) -> IrrecoverableSummary:
    """Aggregate irrecoverable-case records into a Table IV row.

    Empty input yields a defined all-zero row (never raises).
    """
    approach = records[0].approach if records else ""
    sp = [r.result.sp_computations for r in records]
    wasted = [r.result.wasted_transmission() for r in records]
    return IrrecoverableSummary(
        approach=approach,
        cases=len(records),
        avg_wasted_computation=_rate(sum(sp), len(sp)),
        max_wasted_computation=max(sp, default=0),
        avg_wasted_transmission=_rate(sum(wasted), len(wasted)),
        max_wasted_transmission=max(wasted, default=0.0),
        false_deliveries=sum(1 for r in records if r.delivered),
    )


@dataclass
class ResilienceSummary:
    """Degraded-mode health of one approach over one sweep.

    ``delivery_ratio`` counts every delivered packet, including those
    delivered by the reconvergence fallback — that is the operator's view
    ("did traffic get through?").  ``rtr_delivery_ratio`` counts only
    deliveries RTR itself completed, isolating the protocol's own
    resilience from the safety net underneath it.
    """

    approach: str
    cases: int
    delivered: int
    dropped: int
    fallbacks: int
    fallback_deliveries: int
    errors: int
    delivery_ratio: float
    rtr_delivery_ratio: float
    mean_retries: float
    max_retries: int

    def as_dict(self) -> Dict[str, object]:
        """Row form for reports."""
        return {
            "approach": self.approach,
            "cases": self.cases,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "fallbacks": self.fallbacks,
            "fallback_deliveries": self.fallback_deliveries,
            "errors": self.errors,
            "delivery_ratio_pct": round(100.0 * self.delivery_ratio, 1),
            "rtr_delivery_ratio_pct": round(100.0 * self.rtr_delivery_ratio, 1),
            "mean_retries": round(self.mean_retries, 2),
            "max_retries": self.max_retries,
        }


def summarize_resilience(records: Sequence[CaseRecord]) -> ResilienceSummary:
    """Aggregate a (possibly chaotic) sweep into a resilience row.

    Empty input yields a defined all-zero row (never raises).
    """
    approach = records[0].approach if records else ""
    n = len(records)
    by_status: Dict[str, int] = {}
    for r in records:
        by_status[r.status] = by_status.get(r.status, 0) + 1
    fallback_deliveries = sum(
        1 for r in records if r.status == "fallback" and r.delivered
    )
    all_delivered = sum(1 for r in records if r.delivered)
    retries = [r.result.retries for r in records]
    return ResilienceSummary(
        approach=approach,
        cases=n,
        delivered=by_status.get("delivered", 0),
        dropped=by_status.get("dropped", 0),
        fallbacks=by_status.get("fallback", 0),
        fallback_deliveries=fallback_deliveries,
        errors=by_status.get("error", 0),
        delivery_ratio=_rate(all_delivered, n),
        rtr_delivery_ratio=_rate(by_status.get("delivered", 0), n),
        mean_retries=_rate(sum(retries), n),
        max_retries=max(retries, default=0),
    )


def stretch_values(records: Sequence[CaseRecord]) -> List[float]:
    """Stretch of every delivered case (Fig. 8's sample)."""
    return [s for r in records if (s := r.stretch()) is not None]


def sp_computation_values(records: Sequence[CaseRecord]) -> List[int]:
    """Shortest-path calculation counts (Figs. 9 and 12's samples)."""
    return [r.result.sp_computations for r in records]


def wasted_transmission_values(records: Sequence[CaseRecord]) -> List[float]:
    """Wasted transmission of every record (Fig. 13's sample)."""
    return [r.result.wasted_transmission() for r in records]


def phase1_duration_values(records: Sequence[CaseRecord]) -> List[float]:
    """Phase-1 durations in seconds (Fig. 7's sample; RTR only)."""
    return [r.result.phase1_duration for r in records]


def savings_ratio(baseline: float, ours: float) -> float:
    """Fractional saving of ``ours`` relative to ``baseline`` (§I claims)."""
    if baseline <= 0:
        return 0.0
    return 1.0 - ours / baseline


def describe_sample(values: Sequence[float]) -> Dict[str, float]:
    """Shortcut to :func:`repro.eval.cdf.summarize`."""
    return summarize(values)
