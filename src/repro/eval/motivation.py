"""The paper's §I motivation, quantified: packet loss during convergence.

§I argues that IGP convergence "usually takes several seconds even for a
single link failure" and that a disconnected OC-192 link (10 Gb/s) drops
about 12 million 1000-byte packets in 10 seconds.  This experiment puts
the two recovery regimes side by side on a simulated failure:

* **without RTR** — a failed flow stays black-holed until the IGP
  convergence timeline (:class:`repro.routing.LinkStateProtocol`) gives
  its recovery initiator a valid table again;
* **with RTR** — a *recoverable* flow is forwarded again as soon as the
  initiator's phase-1 walk finishes (tens of milliseconds); irrecoverable
  flows are discarded at the initiator either way (and RTR at least stops
  wasting bandwidth on them).

The result is an outage-duration distribution per flow and the §I-style
packets-dropped arithmetic at a configurable line rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..baselines import Oracle
from ..core import RTR
from ..failures import FailureScenario, LocalView, random_circle
from ..routing import ConvergenceConfig, LinkStateProtocol
from ..topology import isp_catalog


@dataclass
class FlowOutage:
    """Outage experienced by one failed flow under both regimes."""

    initiator: int
    destination: int
    recoverable: bool
    #: Seconds until default routing works again (IGP convergence).
    outage_without_rtr: float
    #: Seconds until RTR forwards again (None = never, irrecoverable).
    outage_with_rtr: Optional[float]


@dataclass
class MotivationReport:
    """Aggregate §I-style numbers for one failure event."""

    flows: int
    recoverable_flows: int
    network_converged_at: float
    mean_outage_without_rtr: float
    mean_outage_with_rtr: float
    worst_outage_with_rtr: float
    #: Packets a ``line_rate_bps`` aggregate would drop per recoverable
    #: flow-second of outage, without vs with RTR.
    packets_dropped_without_rtr: float
    packets_dropped_with_rtr: float
    outages: List[FlowOutage]

    def packets_saved(self) -> float:
        """Packets RTR keeps flowing during the convergence window."""
        return self.packets_dropped_without_rtr - self.packets_dropped_with_rtr


def packet_loss_during_convergence(
    name: str = "AS209",
    seed: int = 0,
    scenario: Optional[FailureScenario] = None,
    convergence: Optional[ConvergenceConfig] = None,
    line_rate_bps: float = 10e9,
    packet_bytes: int = 1000,
    max_flows: int = 500,
) -> MotivationReport:
    """Quantify per-flow outage with and without RTR for one failure.

    Flows are the distinct (initiator, destination) recovery cases of the
    scenario, each modeled as a saturated ``line_rate_bps`` aggregate of
    ``packet_bytes`` packets (the paper's OC-192 arithmetic).
    """
    topo = isp_catalog.build(name, seed=seed)
    if scenario is None:
        rng = random.Random(seed + 1)
        scenario = FailureScenario.from_region(topo, random_circle(rng))
        while not scenario.failed_links:
            scenario = FailureScenario.from_region(topo, random_circle(rng))

    proto = LinkStateProtocol(topo, convergence)
    report = proto.apply_failure(
        set(scenario.failed_nodes), set(scenario.failed_links)
    )
    rtr = RTR(topo, scenario, routing=proto.before)
    oracle = Oracle(topo, scenario)
    view = LocalView(scenario)
    detection = proto.config.detection_delay

    outages: List[FlowOutage] = []
    for initiator in sorted(scenario.live_nodes()):
        unreachable = set(view.unreachable_neighbors(initiator))
        if not unreachable:
            continue
        for destination in sorted(topo.nodes()):
            if destination == initiator or len(outages) >= max_flows:
                continue
            next_hop = proto.before.next_hop(initiator, destination)
            if next_hop not in unreachable:
                continue
            recoverable = oracle.is_recoverable(initiator, destination)
            without = report.router_converged_at.get(
                initiator, report.network_converged_at
            )
            with_rtr: Optional[float] = None
            result = rtr.recover(initiator, destination, next_hop)
            if result.delivered:
                # Packets flow again once the walk has the failure map
                # (they are delayed, not dropped, during the walk itself).
                with_rtr = detection + result.phase1_duration
            elif recoverable:
                # Rare missed-failure case: RTR's route is dead, so the
                # flow waits for convergence like everyone else.
                with_rtr = without
            outages.append(
                FlowOutage(initiator, destination, recoverable, without, with_rtr)
            )

    recoverable_flows = [o for o in outages if o.recoverable]
    pkts_per_second = line_rate_bps / 8.0 / packet_bytes

    def dropped(seconds: float) -> float:
        return seconds * pkts_per_second

    without_total = sum(o.outage_without_rtr for o in recoverable_flows)
    with_total = sum(
        o.outage_with_rtr if o.outage_with_rtr is not None else o.outage_without_rtr
        for o in recoverable_flows
    )
    n_rec = max(len(recoverable_flows), 1)
    return MotivationReport(
        flows=len(outages),
        recoverable_flows=len(recoverable_flows),
        network_converged_at=report.network_converged_at,
        mean_outage_without_rtr=without_total / n_rec,
        mean_outage_with_rtr=with_total / n_rec,
        worst_outage_with_rtr=max(
            (
                o.outage_with_rtr
                for o in recoverable_flows
                if o.outage_with_rtr is not None
            ),
            default=0.0,
        ),
        packets_dropped_without_rtr=dropped(without_total),
        packets_dropped_with_rtr=dropped(with_total),
        outages=outages,
    )


def availability_timeline(
    report: MotivationReport, step: float = 0.05, horizon: Optional[float] = None
) -> List[Tuple[float, float, float]]:
    """``(t, frac_flows_up_without_rtr, frac_flows_up_with_rtr)`` samples.

    Only recoverable flows count (irrecoverable ones can never be up).
    """
    flows = [o for o in report.outages if o.recoverable]
    if not flows:
        return []
    end = horizon if horizon is not None else report.network_converged_at + 2 * step
    samples: List[Tuple[float, float, float]] = []
    t = 0.0
    while t <= end + 1e-9:
        up_without = sum(1 for o in flows if t >= o.outage_without_rtr)
        up_with = sum(
            1
            for o in flows
            if o.outage_with_rtr is not None and t >= o.outage_with_rtr
        )
        samples.append((round(t, 6), up_without / len(flows), up_with / len(flows)))
        t += step
    return samples
