"""Parallel experiment execution for paper-scale runs.

The paper's evaluation is 10,000 + 10,000 cases on each of eight
topologies; topologies are embarrassingly parallel, so these wrappers
fan the per-topology work of the Table III / Table IV drivers across a
process pool.  Results are identical to the serial drivers for the same
seed (asserted by tests): the per-topology RNG stream never depends on
execution order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from .metrics import summarize_irrecoverable, summarize_recoverable
from .runner import ALL_APPROACHES

# Module-level workers: ProcessPoolExecutor requires picklable callables.


def _table3_worker(args) -> tuple:
    name, n_cases, seed, approaches = args
    from .experiments import _cases_and_records, _split_records

    case_set, records = _cases_and_records(name, n_cases, 0, seed, approaches)
    recoverable, _ = _split_records(case_set, records)
    summary = {a: summarize_recoverable(recoverable[a]).as_dict() for a in approaches}
    pooled = {
        a: [
            (r.delivered, r.is_optimal(), r.stretch(), r.result.sp_computations)
            for r in recoverable[a]
        ]
        for a in approaches
    }
    return name, summary, pooled


def _table4_worker(args) -> tuple:
    name, n_cases, seed, approaches = args
    from .experiments import _cases_and_records, _split_records

    case_set, records = _cases_and_records(name, 0, n_cases, seed, approaches)
    _, irrecoverable = _split_records(case_set, records)
    summary = {
        a: summarize_irrecoverable(irrecoverable[a]).as_dict() for a in approaches
    }
    pooled = {
        a: [
            (r.result.sp_computations, r.result.wasted_transmission())
            for r in irrecoverable[a]
        ]
        for a in approaches
    }
    return name, summary, pooled


def _overall_recoverable(pooled_rows: Dict[str, List[tuple]]) -> Dict[str, Dict]:
    overall: Dict[str, Dict] = {}
    for approach, rows in pooled_rows.items():
        n = len(rows)
        delivered = sum(1 for d, _o, _s, _c in rows if d)
        optimal = sum(1 for _d, o, _s, _c in rows if o)
        stretches = [s for _d, _o, s, _c in rows if s is not None]
        sp = [c for _d, _o, _s, c in rows]
        overall[approach] = {
            "approach": approach,
            "cases": n,
            "recovery_rate_pct": round(100.0 * delivered / n, 1),
            "optimal_recovery_rate_pct": round(100.0 * optimal / n, 1),
            "max_stretch": round(max(stretches), 2) if stretches else 0.0,
            "max_sp_computations": max(sp) if sp else 0,
            "mean_sp_computations": round(sum(sp) / n, 2) if n else 0.0,
        }
    return overall


def parallel_table3(
    topologies: Sequence[str],
    n_cases: int,
    seed: int = 0,
    approaches: Sequence[str] = ALL_APPROACHES,
    jobs: Optional[int] = None,
) -> Dict[str, Dict]:
    """Table III across topologies using a process pool."""
    work = [(name, n_cases, seed, tuple(approaches)) for name in topologies]
    results: Dict[str, Dict] = {}
    pooled: Dict[str, List[tuple]] = {a: [] for a in approaches}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for name, summary, rows in pool.map(_table3_worker, work):
            results[name] = summary
            for a in approaches:
                pooled[a].extend(rows[a])
    results["Overall"] = _overall_recoverable(pooled)
    return results


def parallel_table4(
    topologies: Sequence[str],
    n_cases: int,
    seed: int = 0,
    approaches: Sequence[str] = ("RTR", "FCP"),
    jobs: Optional[int] = None,
) -> Dict[str, Dict]:
    """Table IV across topologies using a process pool."""
    work = [(name, n_cases, seed, tuple(approaches)) for name in topologies]
    results: Dict[str, Dict] = {}
    pooled: Dict[str, List[tuple]] = {a: [] for a in approaches}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for name, summary, rows in pool.map(_table4_worker, work):
            results[name] = summary
            for a in approaches:
                pooled[a].extend(rows[a])
    overall: Dict[str, Dict] = {}
    for approach, rows in pooled.items():
        sp = [c for c, _w in rows]
        wasted = [w for _c, w in rows]
        n = max(len(rows), 1)
        overall[approach] = {
            "approach": approach,
            "cases": len(rows),
            "avg_wasted_computation": round(sum(sp) / n, 2),
            "max_wasted_computation": max(sp) if sp else 0,
            "avg_wasted_transmission": round(sum(wasted) / n, 1),
            "max_wasted_transmission": round(max(wasted), 1) if wasted else 0.0,
        }
    results["Overall"] = overall
    return results
