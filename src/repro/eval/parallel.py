"""Parallel experiment execution for paper-scale runs.

The paper's evaluation is 10,000 + 10,000 cases on each of eight
topologies.  Fanning out one task per topology caps the useful worker
count at the catalog size (8), so these wrappers shard *within* each
topology as well: every topology's case list is split into seed-stable
chunks on scenario boundaries, and each (topology, shard) pair becomes
one process-pool task — a 32-core box is saturated even on a
single-topology run.

Determinism: case generation depends only on ``(name, counts, seed)``;
per-case results depend only on (topology, scenario, case, approach
config), and a shard always contains whole scenarios, so each scenario's
protocol state (phase-1 walks, phase-2 trees, FCP headers) is built
exactly as the serial runner builds it.  Workers return raw
:class:`~repro.eval.metrics.CaseRecord` lists; the parent reassembles
them in serial order and feeds the *same* summary code paths as the
serial drivers — Table III / Table IV output is bit-identical to
:func:`~repro.eval.experiments.table3_recoverable` /
:func:`~repro.eval.experiments.table4_wasted_summary` for the same seed
(asserted by tests).

Workers memoize the generated case set per process (a
:class:`~concurrent.futures.ProcessPoolExecutor` reuses processes), so
the per-topology generation cost is paid once per worker, not once per
shard.

Large topologies skip the per-worker rebuild entirely: the parent
exports the graph's flat arrays into one ``multiprocessing``
shared-memory block (:mod:`repro.topology.shm`) and ships workers a
small picklable spec; each worker attaches the block and its numpy CSR
mirror aliases the shared pages zero-copy.  ``REPRO_SHM=off|force``
overrides the node-count threshold; without numpy the rebuild path is
used unchanged.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..routing import SPTCache
from ..topology.shm import (
    ShmTopologySpec,
    TopologyExport,
    attach_topology,
    export_topology,
    shm_eligible,
    shm_mode,
    shm_supported,
)
from .cases import CaseSet, TestCase, generate_cases
from .metrics import (
    CaseRecord,
    savings_ratio,
    summarize_irrecoverable,
    summarize_recoverable,
)
from .runner import ALL_APPROACHES, EvaluationRunner
from .sharding import ShardTask, run_sharded

# Module-level workers: ProcessPoolExecutor requires picklable callables.

#: Per-process memo of generated case sets, keyed by the generation
#: parameters.  Pool processes handle many shards of the same topology;
#: only the first pays the generation cost.
_WORKER_STATE: Dict[tuple, tuple] = {}


def shard_cases(case_set: CaseSet, n_shards: int) -> List[List[TestCase]]:
    """Split cases into ``n_shards`` contiguous, scenario-aligned chunks.

    Scenarios are kept whole (per-scenario protocol state must be built
    exactly as in a serial run) and stay in serial order, so concatenating
    the shards reproduces the serial case order.  Chunks are balanced by
    case count; trailing shards may be empty when there are fewer
    scenarios than shards.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    groups = sorted(case_set.by_scenario().items())
    total = sum(len(cases) for _, cases in groups)
    shards: List[List[TestCase]] = [[] for _ in range(n_shards)]
    done = 0
    index = 0
    for _, cases in groups:
        while index < n_shards - 1 and done * n_shards >= (index + 1) * total:
            index += 1
        shards[index].extend(cases)
        done += len(cases)
    return shards


def _shared_exports(
    topologies: Sequence[str], seed: int
) -> Dict[str, TopologyExport]:
    """Export each eligible topology once for a parallel run.

    Callers must release every export in a ``finally`` — the exports are
    refcounted, so overlapping runs (and ``run_sharded``'s pool-rebuild
    retry rounds, which all happen within one export's lifetime) share
    blocks instead of duplicating them.
    """
    exports: Dict[str, TopologyExport] = {}
    if not shm_supported() or shm_mode() == "off":
        return exports
    from .experiments import _build_topology

    for name in topologies:
        topo = _build_topology(name, seed)
        if shm_eligible(topo):
            exports[name] = export_topology(topo)
    return exports


def _worker_topology(name: str, seed: int, shm_spec: Optional[ShmTopologySpec]):
    if shm_spec is not None:
        return attach_topology(shm_spec)
    from .experiments import _build_topology

    return _build_topology(name, seed)


def _worker_case_set(
    name: str,
    n_recoverable: int,
    n_irrecoverable: int,
    seed: int,
    shm_spec: Optional[ShmTopologySpec] = None,
) -> tuple:
    key = (name, n_recoverable, n_irrecoverable, seed)
    state = _WORKER_STATE.get(key)
    if state is None:
        topo = _worker_topology(name, seed, shm_spec)
        rng = random.Random(seed * 7_919 + 13)
        cache = SPTCache()
        case_set = generate_cases(
            topo, rng, n_recoverable, n_irrecoverable, cache=cache
        )
        state = (topo, case_set, cache)
        _WORKER_STATE[key] = state
    return state


def _run_shard(
    name: str,
    n_rec: int,
    n_irr: int,
    seed: int,
    approaches: Tuple[str, ...],
    shard_index: int,
    n_shards: int,
    shm_spec: Optional[ShmTopologySpec] = None,
) -> Dict[str, List[CaseRecord]]:
    """Run one (topology, shard) chunk — shared by workers and the
    parent-side serial retry (which must not touch obs state)."""
    topo, case_set, cache = _worker_case_set(name, n_rec, n_irr, seed, shm_spec)
    shard = shard_cases(case_set, n_shards)[shard_index]
    runner = EvaluationRunner(
        topo, routing=case_set.routing, approaches=approaches, sp_cache=cache
    )
    return runner.run_cases(case_set, shard)


def _gather_records(
    topologies: Sequence[str],
    n_recoverable: int,
    n_irrecoverable: int,
    seed: int,
    approaches: Sequence[str],
    jobs: Optional[int],
    shards_per_topology: Optional[int],
    chunksize: int,
) -> Dict[str, Dict[str, List[CaseRecord]]]:
    """Fan (topology, shard) tasks out and reassemble serial-order records.

    Pool mechanics (worker obs snapshots, parent-side serial retry,
    sorted snapshot merge) live in :func:`repro.eval.sharding.run_sharded`.
    ``chunksize`` is kept for API compatibility; tasks are submitted
    individually so per-shard failures stay isolated.
    """
    del chunksize  # submit() isolates failures; batching would pool them
    workers = jobs if jobs is not None else (os.cpu_count() or 1)
    n_shards = shards_per_topology if shards_per_topology is not None else workers
    n_shards = max(1, n_shards)
    approaches = tuple(approaches)
    exports = _shared_exports(topologies, seed)
    try:
        tasks: List[ShardTask] = [
            (
                (name, s),
                _run_shard,
                (
                    name,
                    n_recoverable,
                    n_irrecoverable,
                    seed,
                    approaches,
                    s,
                    n_shards,
                    exports[name].spec if name in exports else None,
                ),
            )
            for name in topologies
            for s in range(n_shards)
        ]
        by_shard = run_sharded(tasks, span_name="eval.parallel", workers=workers)
    finally:
        for export in exports.values():
            export.release()
    merged: Dict[str, Dict[str, List[CaseRecord]]] = {}
    for name in topologies:
        merged[name] = {a: [] for a in approaches}
        for s in range(n_shards):
            for a in approaches:
                merged[name][a].extend(by_shard[(name, s)][a])
    return merged


def shard_scenario_indices(n_scenarios: int, n_shards: int) -> List[List[int]]:
    """Split ``range(n_scenarios)`` into contiguous balanced chunks.

    Contiguity keeps the merged record list in serial scenario order;
    trailing shards may be empty when there are fewer scenarios than
    shards.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    base, extra = divmod(n_scenarios, n_shards)
    shards: List[List[int]] = []
    start = 0
    for s in range(n_shards):
        size = base + (1 if s < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


#: Per-process memo of traffic engines, keyed by the full generation
#: parameter tuple — matrix, flow apportionment, capacities, and the
#: scenario list are all deterministic functions of the key.
_TRAFFIC_WORKER_STATE: Dict[tuple, tuple] = {}


def _worker_traffic_engine(
    name: str,
    model: str,
    total_demand: float,
    n_flows: int,
    seed: int,
    n_scenarios: int,
    approaches: Tuple[str, ...],
    shm_spec: Optional[ShmTopologySpec] = None,
    congestion_aware: bool = False,
    headroom: Optional[float] = None,
    utilization_cap: Optional[float] = None,
) -> tuple:
    key = (
        name,
        model,
        total_demand,
        n_flows,
        seed,
        n_scenarios,
        approaches,
        congestion_aware,
        headroom,
        utilization_cap,
    )
    state = _TRAFFIC_WORKER_STATE.get(key)
    if state is None:
        from ..traffic import (
            DEFAULT_HEADROOM,
            TrafficEngine,
            aggregate_flows,
            generate_matrix,
        )
        from .experiments import traffic_scenario_list

        topo = _worker_topology(name, seed, shm_spec)
        matrix = generate_matrix(topo, model, total_demand=total_demand, seed=seed)
        flow_set = aggregate_flows(matrix, n_flows)
        scenarios = traffic_scenario_list(topo, seed, n_scenarios)
        engine = TrafficEngine(
            topo,
            flow_set,
            approaches=approaches,
            congestion_aware=congestion_aware,
            headroom=DEFAULT_HEADROOM if headroom is None else headroom,
            utilization_cap=utilization_cap,
        )
        state = (engine, scenarios)
        _TRAFFIC_WORKER_STATE[key] = state
    return state


def _run_traffic_shard(
    name: str,
    model: str,
    total_demand: float,
    n_flows: int,
    seed: int,
    n_scenarios: int,
    approaches: Tuple[str, ...],
    shard_index: int,
    n_shards: int,
    shm_spec: Optional[ShmTopologySpec] = None,
    congestion_aware: bool = False,
    headroom: Optional[float] = None,
    utilization_cap: Optional[float] = None,
) -> Dict[str, list]:
    """Run one (topology, scenario-shard) chunk — shared by workers and
    the parent-side serial retry (which must not touch obs state)."""
    engine, scenarios = _worker_traffic_engine(
        name,
        model,
        total_demand,
        n_flows,
        seed,
        n_scenarios,
        approaches,
        shm_spec,
        congestion_aware,
        headroom,
        utilization_cap,
    )
    indices = shard_scenario_indices(n_scenarios, n_shards)[shard_index]
    records: Dict[str, list] = {a: [] for a in approaches}
    for index in indices:
        per_approach = engine.run_scenario(scenarios[index], index)
        for a in approaches:
            records[a].append(per_approach[a])
    return records


def parallel_traffic(
    topologies: Sequence[str],
    n_scenarios: int,
    seed: int = 0,
    model: str = "gravity",
    total_demand: Optional[float] = None,
    n_flows: Optional[int] = None,
    approaches: Sequence[str] = ("RTR", "FCP"),
    jobs: Optional[int] = None,
    shards_per_topology: Optional[int] = None,
    congestion_aware: bool = False,
    headroom: Optional[float] = None,
    utilization_cap: Optional[float] = None,
) -> Dict[str, Dict]:
    """Traffic-weighted Table III via scenario-sharded pool execution.

    Each (topology, scenario-shard) pair is one pool task; every
    per-scenario :class:`~repro.traffic.TrafficScenarioRecord` is a pure
    function of ``(topology, matrix, flows, scenario)``, so the parent's
    merge in scenario order feeds :func:`~repro.traffic.summarize_traffic`
    the exact record sequence of the serial driver — output is
    bit-identical to
    :func:`~repro.eval.experiments.traffic_weighted_table3` for the same
    arguments (asserted by tests).  Failed shards are retried serially in
    the parent; worker obs snapshots merge in sorted (topology, shard)
    order.
    """
    from ..traffic import (
        DEFAULT_TOTAL_DEMAND,
        merge_scenario_records,
        summarize_traffic,
    )
    from .experiments import DEFAULT_TRAFFIC_FLOWS

    demand = DEFAULT_TOTAL_DEMAND if total_demand is None else total_demand
    flows = DEFAULT_TRAFFIC_FLOWS if n_flows is None else n_flows
    approaches = tuple(approaches)
    workers = jobs if jobs is not None else (os.cpu_count() or 1)
    n_shards = shards_per_topology if shards_per_topology is not None else workers
    n_shards = max(1, min(n_shards, max(1, n_scenarios)))
    exports = _shared_exports(topologies, seed)
    try:
        tasks: List[ShardTask] = [
            (
                (name, s),
                _run_traffic_shard,
                (
                    name,
                    model,
                    demand,
                    flows,
                    seed,
                    n_scenarios,
                    approaches,
                    s,
                    n_shards,
                    exports[name].spec if name in exports else None,
                    congestion_aware,
                    headroom,
                    utilization_cap,
                ),
            )
            for name in topologies
            for s in range(n_shards)
        ]
        by_shard = run_sharded(tasks, span_name="traffic.parallel", workers=workers)
    finally:
        for export in exports.values():
            export.release()
    results: Dict[str, Dict] = {}
    pooled: Dict[str, list] = {a: [] for a in approaches}
    for name in topologies:
        merged = {
            a: merge_scenario_records(
                [by_shard[(name, s)][a] for s in range(n_shards)]
            )
            for a in approaches
        }
        results[name] = {
            a: summarize_traffic(merged[a]).as_dict() for a in approaches
        }
        for a in approaches:
            pooled[a].extend(merged[a])
    results["Overall"] = {
        a: summarize_traffic(pooled[a]).as_dict() for a in approaches
    }
    return results


def parallel_table3(
    topologies: Sequence[str],
    n_cases: int,
    seed: int = 0,
    approaches: Sequence[str] = ALL_APPROACHES,
    jobs: Optional[int] = None,
    shards_per_topology: Optional[int] = None,
    chunksize: int = 1,
) -> Dict[str, Dict]:
    """Table III via case-sharded process-pool execution.

    Output is bit-identical to
    :func:`~repro.eval.experiments.table3_recoverable` for the same seed.
    """
    merged = _gather_records(
        topologies, n_cases, 0, seed, approaches, jobs, shards_per_topology, chunksize
    )
    results: Dict[str, Dict] = {}
    pooled: Dict[str, List[CaseRecord]] = {a: [] for a in approaches}
    for name in topologies:
        recoverable = {
            a: [r for r in merged[name][a] if r.case.recoverable] for a in approaches
        }
        results[name] = {
            a: summarize_recoverable(recoverable[a]).as_dict() for a in approaches
        }
        for a in approaches:
            pooled[a].extend(recoverable[a])
    results["Overall"] = {
        a: summarize_recoverable(pooled[a]).as_dict() for a in approaches
    }
    return results


def parallel_table4(
    topologies: Sequence[str],
    n_cases: int,
    seed: int = 0,
    approaches: Sequence[str] = ("RTR", "FCP"),
    jobs: Optional[int] = None,
    shards_per_topology: Optional[int] = None,
    chunksize: int = 1,
) -> Dict[str, Dict]:
    """Table IV via case-sharded process-pool execution.

    Output is bit-identical to
    :func:`~repro.eval.experiments.table4_wasted_summary` for the same
    seed, including the headline ``Savings`` entry.
    """
    merged = _gather_records(
        topologies, 0, n_cases, seed, approaches, jobs, shards_per_topology, chunksize
    )
    results: Dict[str, Dict] = {}
    pooled: Dict[str, List[CaseRecord]] = {a: [] for a in approaches}
    for name in topologies:
        irrecoverable = {
            a: [r for r in merged[name][a] if not r.case.recoverable]
            for a in approaches
        }
        results[name] = {
            a: summarize_irrecoverable(irrecoverable[a]).as_dict() for a in approaches
        }
        for a in approaches:
            pooled[a].extend(irrecoverable[a])
    overall = {a: summarize_irrecoverable(pooled[a]) for a in approaches}
    results["Overall"] = {a: overall[a].as_dict() for a in approaches}
    if "RTR" in overall and "FCP" in overall:
        results["Savings"] = {
            "computation_saved_pct": round(
                100.0
                * savings_ratio(
                    overall["FCP"].avg_wasted_computation,
                    overall["RTR"].avg_wasted_computation,
                ),
                1,
            ),
            "transmission_saved_pct": round(
                100.0
                * savings_ratio(
                    overall["FCP"].avg_wasted_transmission,
                    overall["RTR"].avg_wasted_transmission,
                ),
                1,
            ),
        }
    return results
