"""Plain-text rendering of experiment outputs.

The benchmark harness prints "the same rows/series the paper reports";
these helpers turn the experiment drivers' dicts into aligned ASCII tables
and compact CDF sketches, with no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_table(rows: Sequence[Dict], columns: Sequence[str] = ()) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    header = [str(c) for c in cols]
    body = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(cols))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def format_nested_table(
    data: Dict[str, Dict[str, Dict]], row_label: str = "topology"
) -> str:
    """Render ``outer -> approach -> row`` as one flat table."""
    rows: List[Dict] = []
    for outer, per_approach in data.items():
        if not isinstance(per_approach, dict):
            continue
        for approach, row in per_approach.items():
            if not isinstance(row, dict):
                continue
            rows.append({row_label: outer, **row})
    return format_table(rows)


def format_cdf(
    points: Sequence[Tuple[float, float]],
    probes: Sequence[float] = (0.5, 0.9, 0.95, 0.99, 1.0),
) -> str:
    """A compact one-line sketch of a CDF: value at selected quantiles."""
    if not points:
        return "(empty)"
    parts = []
    for q in probes:
        value = next((x for x, p in points if p >= q), points[-1][0])
        parts.append(f"p{int(q * 100)}={value:.3g}")
    return "  ".join(parts)


def format_status_counts(statuses: Sequence[str]) -> str:
    """One-line tally of case statuses, in severity order.

    E.g. ``delivered=812  fallback=31  dropped=140  error=0`` for a
    degraded-mode sweep's quick health readout.
    """
    order = ("delivered", "fallback", "dropped", "error")
    counts = {s: 0 for s in order}
    extra: Dict[str, int] = {}
    for s in statuses:
        if s in counts:
            counts[s] += 1
        else:
            extra[s] = extra.get(s, 0) + 1
    parts = [f"{s}={counts[s]}" for s in order]
    parts.extend(f"{s}={n}" for s, n in sorted(extra.items()))
    return "  ".join(parts)


def format_series(
    series: Sequence[Tuple[float, float]], max_points: int = 12
) -> str:
    """A down-sampled ``x: y`` rendering of a numeric series."""
    if not series:
        return "(empty)"
    stride = max(1, len(series) // max_points)
    sampled = list(series[::stride])
    if sampled[-1] != series[-1]:
        sampled.append(series[-1])
    return "  ".join(f"{x:g}:{y:.3g}" for x, y in sampled)
