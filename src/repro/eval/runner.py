"""Runs recovery approaches over generated test cases.

One :class:`EvaluationRunner` owns the per-topology shared state (routing
table, MRC configurations) and instantiates per-scenario protocol state
exactly once per failure area, the way a real deployment would: routers
keep one set of tables per convergence window, not per flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines import FCP, MRC, BackupConfiguration, generate_configurations
from ..core import RTR, RTRConfig
from ..failures import FailureScenario
from ..routing import RoutingTable
from ..topology import Topology
from .cases import CaseSet, TestCase
from .metrics import CaseRecord

#: Approaches known to the runner, in the paper's comparison order.
ALL_APPROACHES = ("RTR", "FCP", "MRC")


class EvaluationRunner:
    """Executes test cases under one or more recovery approaches."""

    def __init__(
        self,
        topo: Topology,
        routing: Optional[RoutingTable] = None,
        approaches: Sequence[str] = ALL_APPROACHES,
        rtr_config: Optional[RTRConfig] = None,
        mrc_seed: int = 0,
    ) -> None:
        unknown = set(approaches) - set(ALL_APPROACHES)
        if unknown:
            raise ValueError(f"unknown approaches: {sorted(unknown)}")
        self.topo = topo
        self.routing = routing if routing is not None else RoutingTable(topo)
        self.approaches = tuple(approaches)
        self.rtr_config = rtr_config
        self._mrc_configs: Optional[List[BackupConfiguration]] = None
        self._mrc_seed = mrc_seed

    def _mrc_configurations(self) -> List[BackupConfiguration]:
        if self._mrc_configs is None:
            self._mrc_configs = generate_configurations(
                self.topo, seed=self._mrc_seed
            )
        return self._mrc_configs

    def _protocols(self, scenario: FailureScenario) -> Dict[str, object]:
        protocols: Dict[str, object] = {}
        for name in self.approaches:
            if name == "RTR":
                protocols[name] = RTR(
                    self.topo, scenario, routing=self.routing, config=self.rtr_config
                )
            elif name == "FCP":
                protocols[name] = FCP(self.topo, scenario, routing=self.routing)
            elif name == "MRC":
                protocols[name] = MRC(
                    self.topo,
                    scenario,
                    configurations=self._mrc_configurations(),
                    routing=self.routing,
                )
        return protocols

    def run(self, case_set: CaseSet) -> Dict[str, List[CaseRecord]]:
        """Run every case under every approach.

        Returns ``approach -> [CaseRecord]`` with records in case order.
        """
        records: Dict[str, List[CaseRecord]] = {a: [] for a in self.approaches}
        for scenario_index, cases in sorted(case_set.by_scenario().items()):
            scenario = case_set.scenarios[scenario_index]
            protocols = self._protocols(scenario)
            for case in cases:
                for name in self.approaches:
                    result = protocols[name].recover(  # type: ignore[attr-defined]
                        case.initiator, case.destination, case.trigger
                    )
                    records[name].append(CaseRecord(case=case, result=result))
        return records

    def run_cases(
        self, case_set: CaseSet, cases: Sequence[TestCase]
    ) -> Dict[str, List[CaseRecord]]:
        """Run only a chosen subset of cases (must come from ``case_set``)."""
        subset = CaseSet(
            topo=case_set.topo,
            routing=case_set.routing,
            scenarios=case_set.scenarios,
            cases=list(cases),
        )
        return self.run(subset)
