"""Runs recovery approaches over generated test cases.

One :class:`EvaluationRunner` owns the per-topology shared state (routing
table, MRC configurations) and instantiates per-scenario protocol state
exactly once per failure area, the way a real deployment would: routers
keep one set of tables per convergence window, not per flow.

Robustness: a sweep is thousands of cases, and in degraded-mode
experiments individual cases *will* hit pathological corners.  With
``isolate_errors`` (the default) a protocol crash on one case is caught
and recorded as an ``error`` :class:`~repro.eval.metrics.CaseRecord`
instead of aborting the whole sweep; pass a
:class:`~repro.chaos.FaultPlan` to run RTR under injected faults.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import obs
from ..baselines import FCP, MRC, BackupConfiguration, generate_configurations
from ..chaos import FaultPlan
from ..core import RTR, RTRConfig
from ..failures import FailureScenario
from ..routing import RoutingTable, SPTCache
from ..simulator import RecoveryAccounting, RecoveryResult
from ..topology import Topology
from .cases import CaseSet, TestCase
from .metrics import CaseRecord

#: Approaches known to the runner, in the paper's comparison order.
ALL_APPROACHES = ("RTR", "FCP", "MRC")

log = obs.get_logger(__name__)


class EvaluationRunner:
    """Executes test cases under one or more recovery approaches."""

    def __init__(
        self,
        topo: Topology,
        routing: Optional[RoutingTable] = None,
        approaches: Sequence[str] = ALL_APPROACHES,
        rtr_config: Optional[RTRConfig] = None,
        mrc_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        isolate_errors: bool = True,
        sp_cache: Optional[SPTCache] = None,
    ) -> None:
        unknown = set(approaches) - set(ALL_APPROACHES)
        if unknown:
            raise ValueError(f"unknown approaches: {sorted(unknown)}")
        self.topo = topo
        #: Sweep-wide SPT pool shared by every per-scenario protocol
        #: instance; pre-failure trees in particular are scenario-invariant.
        self.sp_cache = sp_cache if sp_cache is not None else SPTCache()
        self.routing = routing if routing is not None else RoutingTable(topo)
        self.approaches = tuple(approaches)
        self.rtr_config = rtr_config
        #: Fault injection applied to RTR runs (baselines stay ideal — the
        #: comparison of interest is degraded RTR vs their clean designs).
        self.fault_plan = fault_plan
        #: Catch per-case protocol crashes and record them as ``error``
        #: results instead of aborting the sweep.
        self.isolate_errors = isolate_errors
        self._mrc_configs: Optional[List[BackupConfiguration]] = None
        self._mrc_seed = mrc_seed

    def _mrc_configurations(self) -> List[BackupConfiguration]:
        if self._mrc_configs is None:
            self._mrc_configs = generate_configurations(
                self.topo, seed=self._mrc_seed
            )
        return self._mrc_configs

    def _protocols(self, scenario: FailureScenario) -> Dict[str, object]:
        protocols: Dict[str, object] = {}
        for name in self.approaches:
            if name == "RTR":
                protocols[name] = RTR(
                    self.topo,
                    scenario,
                    routing=self.routing,
                    config=self.rtr_config,
                    fault_plan=self.fault_plan,
                    sp_cache=self.sp_cache,
                )
            elif name == "FCP":
                protocols[name] = FCP(
                    self.topo, scenario, routing=self.routing, cache=self.sp_cache
                )
            elif name == "MRC":
                protocols[name] = MRC(
                    self.topo,
                    scenario,
                    configurations=self._mrc_configurations(),
                    routing=self.routing,
                )
        return protocols

    def run(self, case_set: CaseSet) -> Dict[str, List[CaseRecord]]:
        """Run every case under every approach.

        Returns ``approach -> [CaseRecord]`` with records in case order.
        """
        records: Dict[str, List[CaseRecord]] = {a: [] for a in self.approaches}
        for scenario_index, cases in sorted(case_set.by_scenario().items()):
            scenario = case_set.scenarios[scenario_index]
            protocols = self._protocols(scenario)
            for case in cases:
                obs.inc("eval.cases")
                for name in self.approaches:
                    result = self._recover_one(protocols[name], name, case)
                    records[name].append(CaseRecord(case=case, result=result))
        return records

    def _recover_one(
        self, protocol: object, name: str, case: TestCase
    ) -> RecoveryResult:
        """Run one case, isolating per-case crashes when configured."""
        if not self.isolate_errors:
            return protocol.recover(  # type: ignore[attr-defined]
                case.initiator, case.destination, case.trigger
            )
        try:
            return protocol.recover(  # type: ignore[attr-defined]
                case.initiator, case.destination, case.trigger
            )
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            obs.inc("eval.errors")
            log.warning(
                "%s crashed on case %s -> %s (trigger %s): %s: %s",
                name,
                case.initiator,
                case.destination,
                case.trigger,
                type(exc).__name__,
                exc,
            )
            return RecoveryResult(
                approach=name,
                delivered=False,
                path=None,
                accounting=RecoveryAccounting(),
                error=f"{type(exc).__name__}: {exc}",
            )

    def run_cases(
        self, case_set: CaseSet, cases: Sequence[TestCase]
    ) -> Dict[str, List[CaseRecord]]:
        """Run only a chosen subset of cases (must come from ``case_set``)."""
        subset = CaseSet(
            topo=case_set.topo,
            routing=case_set.routing,
            scenarios=case_set.scenarios,
            cases=list(cases),
        )
        return self.run(subset)
