"""Runs registered recovery schemes over generated test cases.

The runner is a thin, scheme-agnostic driver over the
:mod:`repro.schemes` lifecycle: it resolves approach names through the
scheme registry, calls :meth:`~repro.schemes.RecoveryScheme.prepare`
once per topology, :meth:`~repro.schemes.RecoveryScheme.instantiate`
once per failure scenario (one IGP convergence window, the way a real
deployment amortizes state), and
:meth:`~repro.schemes.SchemeInstance.recover` once per case.  Any name
in the registry — built-in, OSPF baseline, or a plugin loaded via
``REPRO_SCHEME_MODULES`` — runs here with zero runner edits.

Robustness: a sweep is thousands of cases, and in degraded-mode
experiments individual cases *will* hit pathological corners.  With
``isolate_errors`` (the default) a scheme crash on one case is caught
and recorded as an ``error`` :class:`~repro.eval.metrics.CaseRecord`
instead of aborting the whole sweep; pass a
:class:`~repro.chaos.FaultPlan` to run every scheme under injected
faults (schemes wrap in :class:`~repro.schemes.FaultedScheme`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import obs
from ..chaos import FaultPlan
from ..core import RTRConfig
from ..routing import RoutingTable, SPTCache
from ..schemes import SchemeInstance, build_schemes, validate_names
from ..simulator import RecoveryAccounting, RecoveryResult, WalkBatch
from ..topology import Topology
from .cases import CaseSet, TestCase
from .metrics import CaseRecord

#: Default comparison set, in the paper's Table III order.
ALL_APPROACHES = ("RTR", "FCP", "MRC")

log = obs.get_logger(__name__)


class EvaluationRunner:
    """Executes test cases under one or more registered recovery schemes."""

    def __init__(
        self,
        topo: Topology,
        routing: Optional[RoutingTable] = None,
        approaches: Sequence[str] = ALL_APPROACHES,
        rtr_config: Optional[RTRConfig] = None,
        mrc_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        isolate_errors: bool = True,
        sp_cache: Optional[SPTCache] = None,
        spt_cache_entries: Optional[int] = None,
    ) -> None:
        validate_names(approaches)
        self.topo = topo
        #: Sweep-wide SPT pool shared by every per-scenario scheme
        #: instance; pre-failure trees in particular are scenario-invariant.
        #: ``spt_cache_entries`` sizes the pool when the runner builds its
        #: own cache — at 50k+ nodes each tree is megabytes, so the sweep
        #: driver (or ``--spt-cache-entries``) trades memory against
        #: recomputation; watch ``routing.sptcache.evictions`` for thrash.
        if sp_cache is not None:
            self.sp_cache = sp_cache
        elif spt_cache_entries is not None:
            if spt_cache_entries < 1:
                raise ValueError(
                    f"spt_cache_entries must be >= 1, got {spt_cache_entries}"
                )
            self.sp_cache = SPTCache(max_entries=spt_cache_entries)
        else:
            self.sp_cache = SPTCache()
        self.routing = routing if routing is not None else RoutingTable(topo)
        self.approaches = tuple(approaches)
        self.rtr_config = rtr_config
        #: Fault injection applied to *every* scheme via the
        #: :class:`~repro.schemes.FaultedScheme` wrapper (RTR keeps its
        #: native hardened ladder; baselines get the degraded view/engine).
        self.fault_plan = fault_plan
        #: Catch per-case scheme crashes and record them as ``error``
        #: results instead of aborting the sweep.
        self.isolate_errors = isolate_errors
        self.schemes = build_schemes(
            self.approaches,
            fault_plan=fault_plan,
            rtr_config=rtr_config,
            mrc_seed=mrc_seed,
        )
        for scheme in self.schemes.values():
            scheme.prepare(topo, self.routing, self.sp_cache)
        self._case_counters = {
            name: f"eval.cases.scheme.{name}" for name in self.approaches
        }

    def _instances(self, scenario_index: int, case_set: CaseSet) -> Dict[str, SchemeInstance]:
        scenario = case_set.scenarios[scenario_index]
        return {
            name: scheme.instantiate(scenario)
            for name, scheme in self.schemes.items()
        }

    def run(self, case_set: CaseSet) -> Dict[str, List[CaseRecord]]:
        """Run every case under every approach.

        Returns ``approach -> [CaseRecord]`` with records in case order.

        Within one convergence window, schemes that compile cases into
        walk plans (:meth:`~repro.schemes.SchemeInstance.can_plan`) have
        all their walks executed through one :class:`WalkBatch` — the
        vectorized backend then advances the whole window's packets
        together.  Everything else runs the classic per-case loop.
        """
        records: Dict[str, List[CaseRecord]] = {a: [] for a in self.approaches}
        for scenario_index, cases in sorted(case_set.by_scenario().items()):
            instances = self._instances(scenario_index, case_set)
            for case in cases:
                obs.inc("eval.cases")
            for name in self.approaches:
                instance = instances[name]
                counter = self._case_counters[name]
                if instance.can_plan():
                    results = self._run_batched(instance, name, cases, counter)
                else:
                    results = []
                    for case in cases:
                        obs.inc(counter)
                        results.append(self._recover_one(instance, name, case))
                records[name].extend(
                    CaseRecord(case=case, result=result)
                    for case, result in zip(cases, results)
                )
        return records

    def _run_batched(
        self,
        instance: SchemeInstance,
        name: str,
        cases: Sequence[TestCase],
        counter: str,
    ) -> List[RecoveryResult]:
        """Compile every case to a plan, run all walks in one batch."""
        batch = WalkBatch(instance.walk_engine())
        pending: List[object] = []
        for case in cases:
            obs.inc(counter)
            try:
                plan = instance.plan(case)
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                if not self.isolate_errors:
                    raise
                pending.append(self._error_result(name, case, exc))
                continue
            if plan.immediate is not None:
                pending.append(plan.immediate)
            else:
                pending.append((plan, batch.add(plan.spec, plan.packet, plan.accounting)))
        batch.execute()
        results: List[RecoveryResult] = []
        for case, entry in zip(cases, pending):
            if not isinstance(entry, tuple):
                results.append(entry)
                continue
            plan, handle = entry
            try:
                results.append(plan.finish(batch.result(handle)))
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                if not self.isolate_errors:
                    raise
                results.append(self._error_result(name, case, exc))
        return results

    def _recover_one(
        self, instance: SchemeInstance, name: str, case: TestCase
    ) -> RecoveryResult:
        """Run one case, isolating per-case crashes when configured."""
        if not self.isolate_errors:
            return instance.recover(case)
        try:
            return instance.recover(case)
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            return self._error_result(name, case, exc)

    def _error_result(
        self, name: str, case: TestCase, exc: Exception
    ) -> RecoveryResult:
        """Record one isolated per-case crash as an ``error`` result."""
        obs.inc("eval.errors")
        log.warning(
            "%s crashed on case %s -> %s (trigger %s): %s: %s",
            name,
            case.initiator,
            case.destination,
            case.trigger,
            type(exc).__name__,
            exc,
        )
        return RecoveryResult(
            approach=name,
            delivered=False,
            path=None,
            accounting=RecoveryAccounting(),
            error=f"{type(exc).__name__}: {exc}",
        )

    def run_cases(
        self, case_set: CaseSet, cases: Sequence[TestCase]
    ) -> Dict[str, List[CaseRecord]]:
        """Run only a chosen subset of cases (must come from ``case_set``)."""
        subset = CaseSet(
            topo=case_set.topo,
            routing=case_set.routing,
            scenarios=case_set.scenarios,
            cases=list(cases),
        )
        return self.run(subset)
