"""Shared shard-map/merge/retry machinery for process-pool sweeps.

Both parallel drivers — case-sharded tables (:mod:`repro.eval.parallel`)
and scenario-sharded traffic sweeps — need the same scaffolding around
their per-shard work functions: fan tasks out to a
:class:`~concurrent.futures.ProcessPoolExecutor`, reset each worker's
process-local obs state and ship its snapshot back, requeue failed
shards with bounded retry + exponential backoff (rebuilding the pool
when a worker death broke it), and fold worker snapshots into one
registry in sorted key order so float sums are reproducible.  That
scaffolding lives here, once; the drivers supply only their work
function and task keys, and any registered recovery scheme — and the
hour-scale :mod:`repro.soak` batches — run through it unchanged.

Because each work function is deterministic in its arguments, a shard
rerun after a ``SIGKILL``-ed worker produces records bit-identical to an
undisturbed run; the regression tests assert exactly that.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

from .. import obs

log = obs.get_logger(__name__)

#: One pool task: ``(key, run_fn, args)``.  ``key`` orders the snapshot
#: merge and indexes the result; ``run_fn`` must be a module-level
#: (picklable) callable invoked as ``run_fn(*args)`` — in the worker on
#: the happy path, in the parent once pool retries are exhausted.
ShardTask = Tuple[Hashable, Callable[..., Any], tuple]

#: Counter bumped once per shard requeue (pool resubmission or final
#: parent-serial run); both drivers share it so one dashboard query
#: covers every sweep flavor.
RETRY_COUNTER = "eval.parallel.retries"

#: Counter bumped once per shard that exhausted its pool attempts and
#: fell back to the parent-serial path.
RETRIES_EXHAUSTED_COUNTER = "eval.parallel.retries_exhausted"

#: Counter bumped once per process pool rebuilt after breaking.
POOL_REBUILD_COUNTER = "eval.parallel.pool_rebuilds"

#: Histogram of per-shard work-function wall time, observed in the
#: worker (pool path) or the parent (exhausted-retries fallback), so
#: ``repro obs report`` can show the shard p50/p95/p99 balance.
SHARD_SECONDS_HISTOGRAM = "eval.shard.seconds"


def _pool_task(payload: Tuple[Callable[..., Any], tuple]) -> tuple:
    """Run one shard in a pool process, bracketed by obs reset/snapshot.

    When instrumentation is on, the worker's process-local obs state is
    reset at task start and its snapshot shipped back with the records,
    so the parent can fold per-shard counters and span aggregates into
    one registry (see :func:`run_sharded`).
    """
    run_fn, args = payload
    if obs.enabled():
        obs.reset()
    start = time.perf_counter()
    records = run_fn(*args)
    obs.observe(SHARD_SECONDS_HISTOGRAM, time.perf_counter() - start)
    snap = obs.snapshot() if obs.enabled() else None
    return records, snap


def run_sharded(
    tasks: Sequence[ShardTask],
    span_name: str,
    workers: int,
    max_attempts: int = 3,
    backoff_s: float = 0.05,
    backoff_factor: float = 2.0,
) -> Dict[Hashable, Any]:
    """Execute ``tasks`` on a process pool and return ``key -> result``.

    Failure handling, in order:

    1. A shard whose worker dies (pool crash, pickling failure, injected
       chaos SIGKILLing the process) is requeued for the next round, up
       to ``max_attempts`` pool rounds total, sleeping
       ``backoff_s * backoff_factor**(round-1)`` before each retry
       round.  Each round runs on a fresh pool, so a
       :class:`BrokenProcessPool` left by a dead worker never poisons
       the retries (:data:`POOL_REBUILD_COUNTER` tracks rebuilds).
    2. A shard still failing after ``max_attempts`` rounds bumps
       :data:`RETRIES_EXHAUSTED_COUNTER` and runs serially in the
       parent — deterministic errors (real bugs) therefore surface with
       a genuine traceback instead of a pool crash.

    Tasks are submitted individually (no chunking) so per-shard failures
    stay isolated.  Successful workers ship obs snapshots merged in
    sorted key order after all shards complete, keeping float sums — and
    therefore whole-sweep outputs — bit-identical however many retries
    happened.  The fan-out runs under one ``span_name`` span with a
    ``shards`` attribute.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    results: Dict[Hashable, Any] = {}
    snapshots: Dict[Hashable, dict] = {}
    pending: List[ShardTask] = list(tasks)
    with obs.span(span_name, shards=len(tasks)):
        for attempt in range(1, max_attempts + 1):
            if not pending:
                break
            if attempt > 1:
                delay = backoff_s * backoff_factor ** (attempt - 2)
                log.warning(
                    "retry round %d/%d for %d shard(s) after %.3fs backoff",
                    attempt,
                    max_attempts,
                    len(pending),
                    delay,
                )
                if delay > 0:
                    time.sleep(delay)
                for _ in pending:
                    obs.inc(RETRY_COUNTER)
            failed: List[ShardTask] = []
            pool_broke = False
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    (task, pool.submit(_pool_task, (task[1], task[2])))
                    for task in pending
                ]
                for task, future in futures:
                    key = task[0]
                    try:
                        records, snap = future.result()
                    except BrokenProcessPool:
                        # A worker death broke the whole pool; every
                        # un-collected shard lands here and requeues.
                        pool_broke = True
                        failed.append(task)
                        continue
                    except Exception as exc:  # noqa: BLE001 — shard isolation
                        log.warning(
                            "worker for shard %s failed (%s: %s); requeueing",
                            key,
                            type(exc).__name__,
                            exc,
                        )
                        failed.append(task)
                        continue
                    results[key] = records
                    if snap is not None:
                        snapshots[key] = snap
            if pool_broke:
                obs.inc(POOL_REBUILD_COUNTER)
                log.warning(
                    "process pool broke with %d shard(s) outstanding; "
                    "a fresh pool serves the next round",
                    len(failed),
                )
            pending = failed
        for key, run_fn, args in pending:
            obs.inc(RETRY_COUNTER)
            obs.inc(RETRIES_EXHAUSTED_COUNTER)
            log.error(
                "shard %s exhausted %d pool attempt(s); running serially "
                "in parent",
                key,
                max_attempts,
            )
            start = time.perf_counter()
            results[key] = run_fn(*args)
            obs.observe(SHARD_SECONDS_HISTOGRAM, time.perf_counter() - start)
        for key in sorted(snapshots):
            obs.merge_snapshot(snapshots[key])
    return results
