"""Shared shard-map/merge/retry machinery for process-pool sweeps.

Both parallel drivers — case-sharded tables (:mod:`repro.eval.parallel`)
and scenario-sharded traffic sweeps — need the same scaffolding around
their per-shard work functions: fan tasks out to a
:class:`~concurrent.futures.ProcessPoolExecutor`, reset each worker's
process-local obs state and ship its snapshot back, retry failed shards
serially in the parent (against the parent's own obs registry), and fold
worker snapshots into one registry in sorted key order so float sums are
reproducible.  That scaffolding lives here, once; the drivers supply
only their work function and task keys, and any registered recovery
scheme runs through it unchanged.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

from .. import obs

log = obs.get_logger(__name__)

#: One pool task: ``(key, run_fn, args)``.  ``key`` orders the snapshot
#: merge and indexes the result; ``run_fn`` must be a module-level
#: (picklable) callable invoked as ``run_fn(*args)`` — in the worker on
#: the happy path, in the parent on retry.
ShardTask = Tuple[Hashable, Callable[..., Any], tuple]

#: Counter bumped once per parent-side serial retry (both drivers share
#: it so one dashboard query covers every sweep flavor).
RETRY_COUNTER = "eval.parallel.retries"


def _pool_task(payload: Tuple[Callable[..., Any], tuple]) -> tuple:
    """Run one shard in a pool process, bracketed by obs reset/snapshot.

    When instrumentation is on, the worker's process-local obs state is
    reset at task start and its snapshot shipped back with the records,
    so the parent can fold per-shard counters and span aggregates into
    one registry (see :func:`run_sharded`).
    """
    run_fn, args = payload
    if obs.enabled():
        obs.reset()
    records = run_fn(*args)
    snap = obs.snapshot() if obs.enabled() else None
    return records, snap


def run_sharded(
    tasks: Sequence[ShardTask],
    span_name: str,
    workers: int,
) -> Dict[Hashable, Any]:
    """Execute ``tasks`` on a process pool and return ``key -> result``.

    A shard whose worker dies (pool crash, pickling failure, injected
    chaos tripping the process) is retried serially in the parent rather
    than aborting the sweep — the retry runs against the parent's own
    obs registry and bumps :data:`RETRY_COUNTER`, while successful
    workers ship snapshots that are merged in sorted key order.  Tasks
    are submitted individually (no chunking) so per-shard failures stay
    isolated.  The whole fan-out runs under one ``span_name`` span with
    a ``shards`` attribute.
    """
    results: Dict[Hashable, Any] = {}
    snapshots: Dict[Hashable, dict] = {}
    retry: List[ShardTask] = []
    with obs.span(span_name, shards=len(tasks)):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (task, pool.submit(_pool_task, (task[1], task[2])))
                for task in tasks
            ]
            for task, future in futures:
                key = task[0]
                try:
                    records, snap = future.result()
                except Exception as exc:  # noqa: BLE001 — shard isolation
                    log.warning(
                        "worker for shard %s failed (%s: %s); "
                        "retrying serially in parent",
                        key,
                        type(exc).__name__,
                        exc,
                    )
                    retry.append(task)
                    continue
                results[key] = records
                if snap is not None:
                    snapshots[key] = snap
        for key, run_fn, args in retry:
            obs.inc(RETRY_COUNTER)
            results[key] = run_fn(*args)
        for key in sorted(snapshots):
            obs.merge_snapshot(snapshots[key])
    return results
