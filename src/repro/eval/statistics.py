"""Statistical helpers for the evaluation (confidence intervals).

The paper reports point estimates over 10,000 cases; reduced-scale runs
of this reproduction need error bars to be honest about sampling noise.
Pure-python implementations (no scipy dependency at runtime):

* :func:`wilson_interval` — the Wilson score interval for proportions
  (recovery rates), well-behaved near 0 and 1 where the normal interval
  is not;
* :func:`mean_interval` — normal-approximation interval for sample means
  (wasted transmission, durations).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

from ..errors import EvaluationError

#: Two-sided z quantiles for the supported confidence levels.
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


def _z_for(confidence: float) -> float:
    try:
        return _Z[confidence]
    except KeyError:
        raise EvaluationError(
            f"unsupported confidence {confidence}; choose from {sorted(_Z)}"
        ) from None


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise EvaluationError("wilson_interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise EvaluationError(f"successes {successes} outside [0, {trials}]")
    z = _z_for(confidence)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


def mean_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, lo, hi)`` under the normal approximation.

    With fewer than 2 samples the interval collapses to the point.
    """
    if not values:
        raise EvaluationError("mean_interval needs at least one value")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return (mean, mean, mean)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = _z_for(confidence) * math.sqrt(variance / n)
    return (mean, mean - half, mean + half)


def rate_row(
    label: str, successes: int, trials: int, confidence: float = 0.95
) -> Dict[str, object]:
    """A report row: rate with its Wilson interval, in percent."""
    lo, hi = wilson_interval(successes, trials, confidence)
    return {
        "metric": label,
        "rate_pct": round(100.0 * successes / trials, 1),
        "ci_lo_pct": round(100.0 * lo, 1),
        "ci_hi_pct": round(100.0 * hi, 1),
        "n": trials,
    }


def rates_overlap(
    a_successes: int, a_trials: int, b_successes: int, b_trials: int,
    confidence: float = 0.95,
) -> bool:
    """Whether the two proportions' Wilson intervals overlap.

    A quick screen for "is this difference plausibly noise?" — used by the
    ablation benchmarks when comparing variant recovery rates.
    """
    a_lo, a_hi = wilson_interval(a_successes, a_trials, confidence)
    b_lo, b_hi = wilson_interval(b_successes, b_trials, confidence)
    return not (a_hi < b_lo or b_hi < a_lo)
