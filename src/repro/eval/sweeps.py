"""Sensitivity sweeps — how RTR's behaviour scales with the failure size.

The paper sweeps the radius only for the irrecoverable-share figure
(Fig. 11).  These drivers extend the same axis to the headline metrics,
answering the natural follow-up questions:

* how does RTR's recovery rate degrade as the area grows?  (phase 1
  misses more interior failures under larger areas),
* how does the phase-1 walk length (and so the delay) grow with the
  radius?

Both return per-topology series usable exactly like the Fig. 11 output
and feed ``benchmarks/bench_sensitivity.py``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines import Oracle
from ..core import RTR, RTRConfig
from ..failures import LocalView, fixed_radius_scenarios
from ..routing import RoutingTable
from ..topology import isp_catalog
from .statistics import wilson_interval

DEFAULT_RADII: Tuple[float, ...] = (60.0, 120.0, 180.0, 240.0, 300.0)


def _cases_for_radius(topo, routing, rng, radius, n_cases):
    """Collect recoverable cases from fixed-radius scenarios."""
    gen = fixed_radius_scenarios(topo, rng, radius)
    collected = []
    guard = 0
    while len(collected) < n_cases and guard < 10_000:
        guard += 1
        scenario = next(gen)
        if not scenario.failed_links:
            continue
        oracle = Oracle(topo, scenario)
        view = LocalView(scenario)
        for initiator in scenario.live_nodes():
            bad = set(view.unreachable_neighbors(initiator))
            if not bad:
                continue
            for destination in scenario.live_nodes():
                if destination == initiator or len(collected) >= n_cases:
                    continue
                nh = routing.next_hop(initiator, destination)
                if nh not in bad:
                    continue
                if not oracle.is_recoverable(initiator, destination):
                    continue
                collected.append((scenario, initiator, destination, nh))
    return collected


def recovery_rate_vs_radius(
    topologies: Sequence[str] = ("AS209", "AS1239"),
    radii: Iterable[float] = DEFAULT_RADII,
    n_cases: int = 150,
    seed: int = 0,
    config: Optional[RTRConfig] = None,
) -> Dict[str, List[Dict]]:
    """RTR recovery rate (with Wilson CI) per failure radius."""
    out: Dict[str, List[Dict]] = {}
    for name in topologies:
        topo = isp_catalog.build(name, seed=seed)
        routing = RoutingTable(topo)
        rows: List[Dict] = []
        for radius in radii:
            rng = random.Random(seed * 7907 + int(radius))
            cases = _cases_for_radius(topo, routing, rng, radius, n_cases)
            delivered = 0
            rtr_by_scenario: Dict[int, RTR] = {}
            for scenario, initiator, destination, trigger in cases:
                key = id(scenario)
                rtr = rtr_by_scenario.get(key)
                if rtr is None:
                    rtr = RTR(topo, scenario, routing=routing, config=config)
                    rtr_by_scenario[key] = rtr
                if rtr.recover(initiator, destination, trigger).delivered:
                    delivered += 1
            n = len(cases)
            lo, hi = wilson_interval(delivered, n) if n else (0.0, 0.0)
            rows.append(
                {
                    "radius": radius,
                    "cases": n,
                    "recovery_rate_pct": round(100.0 * delivered / n, 1) if n else 0.0,
                    "ci_lo_pct": round(100.0 * lo, 1),
                    "ci_hi_pct": round(100.0 * hi, 1),
                }
            )
        out[name] = rows
    return out


def walk_length_vs_radius(
    topologies: Sequence[str] = ("AS209", "AS1239"),
    radii: Iterable[float] = DEFAULT_RADII,
    n_initiators: int = 120,
    seed: int = 0,
) -> Dict[str, List[Dict]]:
    """Mean/max phase-1 walk hops per failure radius.

    Bigger areas have longer boundaries, so the walk (and the §IV-B
    delay) grows with the radius.
    """
    out: Dict[str, List[Dict]] = {}
    for name in topologies:
        topo = isp_catalog.build(name, seed=seed)
        routing = RoutingTable(topo)
        rows: List[Dict] = []
        for radius in radii:
            rng = random.Random(seed * 104729 + int(radius) + 1)
            gen = fixed_radius_scenarios(topo, rng, radius)
            hops: List[int] = []
            guard = 0
            while len(hops) < n_initiators and guard < 5_000:
                guard += 1
                scenario = next(gen)
                if not scenario.failed_links:
                    continue
                rtr = RTR(topo, scenario, routing=routing)
                view = LocalView(scenario)
                for initiator in scenario.live_nodes():
                    unreachable = view.unreachable_neighbors(initiator)
                    if not unreachable or len(hops) >= n_initiators:
                        continue
                    phase1 = rtr.phase1_for(initiator, unreachable[0])
                    hops.append(phase1.hops)
            rows.append(
                {
                    "radius": radius,
                    "initiators": len(hops),
                    "mean_walk_hops": round(sum(hops) / len(hops), 1) if hops else 0.0,
                    "max_walk_hops": max(hops) if hops else 0,
                    "mean_duration_ms": round(
                        1800.0 * sum(hops) / len(hops) / 1000.0, 1
                    )
                    if hops
                    else 0.0,
                }
            )
        out[name] = rows
    return out
