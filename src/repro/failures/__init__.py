"""Failure substrate: ground-truth scenarios and local detection."""

from .model import FailureScenario
from .detection import LocalView
from .hello import (
    BFD_TIMERS,
    FAST_OSPF_TIMERS,
    OSPF_TIMERS,
    DetectionModel,
    HelloConfig,
)
from .scenarios import (
    PAPER_RADIUS_RANGE,
    circle_scenarios,
    fixed_radius_scenarios,
    multi_area_scenario,
    random_circle,
    random_polygon,
)

__all__ = [
    "FailureScenario",
    "LocalView",
    "BFD_TIMERS",
    "FAST_OSPF_TIMERS",
    "OSPF_TIMERS",
    "DetectionModel",
    "HelloConfig",
    "PAPER_RADIUS_RANGE",
    "circle_scenarios",
    "fixed_radius_scenarios",
    "multi_area_scenario",
    "random_circle",
    "random_polygon",
]
