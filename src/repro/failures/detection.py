"""Local failure detection.

§II-A: *"A router only knows whether its neighbors are reachable, but
cannot differentiate between a node failure and a link failure."*

:class:`LocalView` is the only failure interface the protocol
implementations (RTR, FCP, MRC) are allowed to touch — they never read the
ground-truth :class:`~repro.failures.model.FailureScenario` directly, which
keeps the information asymmetry of the paper honest.  A neighbor ``v`` of
``u`` is *unreachable* when ``v`` failed **or** the link ``u-v`` failed;
``u`` cannot tell which.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import UnknownLinkError, UnknownNodeError
from ..topology import Link
from .model import FailureScenario


class LocalView:
    """Per-router neighbor reachability derived from the ground truth."""

    def __init__(self, scenario: FailureScenario) -> None:
        self.scenario = scenario
        self.topo = scenario.topo
        self._unreachable: Dict[int, List[int]] = {}

    def is_neighbor_reachable(self, node: int, neighbor: int) -> bool:
        """Whether router ``node`` can currently reach its ``neighbor``.

        Raises :class:`UnknownNodeError` when either id is not in the
        topology, and :class:`UnknownLinkError` when both nodes exist but
        are not adjacent — the two mistakes need different fixes at the
        call site, so they get different exceptions.
        """
        # Hot path: a present (node, neighbor) pair proves both nodes exist
        # and are adjacent, and the scenario's failed links include every
        # link of a failed router — one interned-id probe answers it all.
        lid = self.topo.csr().pair_lid.get((node, neighbor))
        if lid is not None:
            return not self.scenario.failed_link_flags()[lid]
        if not self.topo.has_node(node):
            raise UnknownNodeError(node)
        if not self.topo.has_node(neighbor):
            raise UnknownNodeError(neighbor)
        raise UnknownLinkError(Link.of(node, neighbor))

    def unreachable_neighbors(self, node: int) -> List[int]:
        """Neighbors ``node`` has locally detected as unreachable (cached)."""
        cached = self._unreachable.get(node)
        if cached is None:
            cached = [
                nb
                for nb in self.topo.neighbors(node)
                if not self.is_neighbor_reachable(node, nb)
            ]
            self._unreachable[node] = cached
        return cached

    def reachable_neighbors(self, node: int) -> List[int]:
        """Neighbors ``node`` can still forward to."""
        unreachable = set(self.unreachable_neighbors(node))
        return [nb for nb in self.topo.neighbors(node) if nb not in unreachable]

    def locally_failed_links(self, node: int) -> List[Link]:
        """The links ``node`` locally considers failed.

        Note the subtlety the paper leans on: if neighbor ``v`` failed as a
        router, ``u`` reports link ``u-v`` as failed even though the fiber
        may be intact — ``u`` cannot tell the difference, and for routing
        purposes the link is unusable either way.
        """
        return [Link.of(node, nb) for nb in self.unreachable_neighbors(node)]

    def is_isolated(self, node: int) -> bool:
        """Whether ``node`` has no reachable neighbor left."""
        return not self.reachable_neighbors(node)
