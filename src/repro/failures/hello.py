"""Hello/BFD failure-detection timing.

The paper keeps the existing detection machinery (§II-A: "We do not
modify the mechanisms for failure detection") and simply assumes a router
*eventually* notices an unreachable neighbor.  This module models when:
a router declares a neighbor dead after missing ``dead_multiplier``
consecutive hello packets, so for a failure at t = 0 the detection time is

    dead_interval - phase,   phase ~ U(0, hello_interval)

where ``phase`` is how long before the failure the last hello arrived.
Two standard profiles are provided: OSPF-style second-scale hellos and
BFD-style tens-of-milliseconds liveness, the regime that makes RTR's
tens-of-milliseconds phase 1 meaningful end to end.
"""

from __future__ import annotations

import random
from typing import Dict, NamedTuple, Optional, Tuple

from ..errors import SimulationError
from .detection import LocalView
from .model import FailureScenario


class HelloConfig(NamedTuple):
    """Timing of the hello-based liveness protocol (seconds)."""

    hello_interval: float
    dead_multiplier: int

    @property
    def dead_interval(self) -> float:
        """Time without hellos after which the neighbor is declared dead."""
        return self.hello_interval * self.dead_multiplier


#: OSPF defaults: 10 s hellos, dead after 4 missed.
OSPF_TIMERS = HelloConfig(hello_interval=10.0, dead_multiplier=4)

#: Fast OSPF tuning (sub-second hellos), as in Francois et al.
FAST_OSPF_TIMERS = HelloConfig(hello_interval=0.25, dead_multiplier=3)

#: BFD-style liveness: 50 ms intervals, dead after 3 missed.
BFD_TIMERS = HelloConfig(hello_interval=0.05, dead_multiplier=3)


class DetectionModel:
    """Per-adjacency detection instants for one failure event at t = 0.

    Each *directed* adjacency gets its own hello phase (the two ends of a
    link run independent timers), drawn deterministically from ``rng``.
    """

    def __init__(
        self,
        scenario: FailureScenario,
        config: HelloConfig = BFD_TIMERS,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.scenario = scenario
        self.config = config
        self.view = LocalView(scenario)
        rng = rng or random.Random(0)
        self._times: Dict[Tuple[int, int], float] = {}
        #: Per-router earliest detection, maintained at construction so
        #: :meth:`first_detection` is O(1) instead of scanning every
        #: adjacency (it sits on the hot path of convergence sweeps).
        self._first: Dict[int, float] = {}
        for node in sorted(scenario.live_nodes()):
            for neighbor in sorted(self.view.unreachable_neighbors(node)):
                phase = rng.uniform(0.0, config.hello_interval)
                t = config.dead_interval - phase
                self._times[(node, neighbor)] = t
                if node not in self._first or t < self._first[node]:
                    self._first[node] = t

    def detection_time(self, router: int, neighbor: int) -> float:
        """When ``router`` declares its ``neighbor`` unreachable."""
        try:
            return self._times[(router, neighbor)]
        except KeyError:
            raise SimulationError(
                f"router {router} never detects {neighbor}: the adjacency "
                f"did not fail (or {router} itself failed)"
            ) from None

    def first_detection(self, router: int) -> Optional[float]:
        """``router``'s earliest detection, or None if it detects nothing."""
        return self._first.get(router)

    def earliest_network_detection(self) -> Optional[float]:
        """The first detection anywhere (when recovery can first begin)."""
        if not self._times:
            return None
        return min(self._times.values())

    def recovery_start(self, initiator: int, trigger_neighbor: int) -> float:
        """When RTR can be invoked at ``initiator`` for ``trigger_neighbor``.

        §II-B: recovery starts when the router detects that its default
        next hop is unreachable.
        """
        return self.detection_time(initiator, trigger_neighbor)

    def all_detections(self) -> Dict[Tuple[int, int], float]:
        """Every (router, neighbor) -> detection instant."""
        return dict(self._times)
