"""Failure scenarios.

§II-A: the failure area is a continuous region; routers within it and links
across it all fail.  A :class:`FailureScenario` is the *ground truth* — the
set ``E2`` of Theorem 2 — while individual routers only ever see their own
neighbor reachability (:mod:`repro.failures.detection`).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from ..errors import TopologyError
from ..geometry import FailureRegion
from ..topology import Link, Topology


class FailureScenario:
    """Ground-truth failed nodes and links for one failure event."""

    def __init__(
        self,
        topo: Topology,
        failed_nodes: Iterable[int] = (),
        failed_links: Iterable[Link] = (),
        region: Optional[FailureRegion] = None,
    ) -> None:
        self.topo = topo
        self.region = region
        self._failed_lid_flags = None
        self.failed_nodes: FrozenSet[int] = frozenset(failed_nodes)
        for node in self.failed_nodes:
            if not topo.has_node(node):
                raise TopologyError(f"failed node {node} not in topology")
        # E2 includes every link that cannot carry traffic: links cut by the
        # region plus all links incident to a failed router.
        links: Set[Link] = set(failed_links)
        for node in self.failed_nodes:
            links.update(topo.incident_links(node))
        self.failed_links: FrozenSet[Link] = frozenset(links)

    @classmethod
    def from_region(cls, topo: Topology, region: FailureRegion) -> "FailureScenario":
        """Apply a geometric failure area to a topology (§II-A semantics)."""
        failed_nodes = {n for n in topo.nodes() if region.contains(topo.position(n))}
        cut_links = {
            link for link in topo.links() if region.crosses(topo.segment(link))
        }
        return cls(topo, failed_nodes, cut_links, region=region)

    @classmethod
    def single_link(cls, topo: Topology, link: Link) -> "FailureScenario":
        """The sporadic single-link-failure case of Theorem 3."""
        return cls(topo, failed_links=[link])

    @classmethod
    def from_nodes(cls, topo: Topology, nodes: Iterable[int]) -> "FailureScenario":
        """Router failures without a geometric region (e.g. power loss)."""
        return cls(topo, failed_nodes=nodes)

    # ------------------------------------------------------------------

    def is_node_live(self, node: int) -> bool:
        """Whether ``node`` survived the event."""
        return node not in self.failed_nodes

    def is_link_live(self, link: Link) -> bool:
        """Whether ``link`` can still carry traffic."""
        return link not in self.failed_links

    def failed_link_flags(self) -> bytearray:
        """0/1 flags over interned link ids, 1 = failed (cached per CSR view).

        Because ``failed_links`` includes every link incident to a failed
        router, ``flags[lid]`` alone answers "can this adjacency carry
        traffic" — the hot probe of local failure detection.
        """
        csr = self.topo.csr()
        cached = self._failed_lid_flags
        if cached is not None and cached[0] is csr:
            return cached[1]
        flags = csr.link_flags(self.failed_links)
        self._failed_lid_flags = (csr, flags)
        return flags

    def live_nodes(self) -> Set[int]:
        """All surviving nodes."""
        return {n for n in self.topo.nodes() if n not in self.failed_nodes}

    def cut_links_between_live_nodes(self) -> Set[Link]:
        """Failed links whose both endpoints are live.

        These are the failures that *two* live routers can each locally
        detect — the information RTR's first phase goes out to collect.
        """
        return {
            link
            for link in self.failed_links
            if link.u not in self.failed_nodes and link.v not in self.failed_nodes
        }

    def reachable(self, source: int, destination: int) -> bool:
        """Whether ``destination`` is reachable from ``source`` in G - E2."""
        if not (self.is_node_live(source) and self.is_node_live(destination)):
            return False
        component = self.topo.component_of(
            source,
            excluded_nodes=set(self.failed_nodes),
            excluded_links=set(self.failed_links),
        )
        return destination in component

    def merged_with(self, other: "FailureScenario") -> "FailureScenario":
        """The union of two failure events (multiple failure areas, §III-E)."""
        if other.topo is not self.topo:
            raise TopologyError("cannot merge scenarios over different topologies")
        region = None
        if self.region is not None and other.region is not None:
            region = self.region.union(other.region)
        return FailureScenario(
            self.topo,
            self.failed_nodes | other.failed_nodes,
            self.failed_links | other.failed_links,
            region=region,
        )

    def __repr__(self) -> str:
        return (
            f"FailureScenario(nodes={len(self.failed_nodes)}, "
            f"links={len(self.failed_links)})"
        )
