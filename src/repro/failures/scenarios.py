"""Random failure-scenario generation.

§IV-A: *"the failure area is a circle randomly placed in the 2000 x 2000
area with a radius randomly selected between 100 and 300"*, and Fig. 11
sweeps the radius from 20 to 300 in increments of 20.  These generators
reproduce both settings, plus polygonal and multi-area variants used by the
extension examples and tests.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Optional, Tuple

from ..geometry import Circle, Point, Polygon, UnionRegion
from ..topology import DEFAULT_AREA, Topology
from .model import FailureScenario

#: Radius range of the paper's main evaluation (§IV-A).
PAPER_RADIUS_RANGE: Tuple[float, float] = (100.0, 300.0)


def embedding_area(topo: Topology) -> float:
    """The side of the square the scenario centers should sample.

    Catalog and generated paper-scale topologies live inside the paper's
    2000 x 2000 map, so the default area is returned unchanged for them —
    pinned golden sweeps draw the exact same RNG sequence.  ``scale:``
    topologies grow their map with sqrt(n); there the real extent is used
    so failures land anywhere on the network, not in one corner.
    """
    extent = 0.0
    for node in topo.nodes():
        p = topo.position(node)
        if p.x > extent:
            extent = p.x
        if p.y > extent:
            extent = p.y
    return max(DEFAULT_AREA, extent)


def random_circle(
    rng: random.Random,
    radius_range: Tuple[float, float] = PAPER_RADIUS_RANGE,
    area: float = DEFAULT_AREA,
) -> Circle:
    """A circle with uniform random center and radius, as in §IV-A."""
    lo, hi = radius_range
    return Circle(
        Point(rng.uniform(0.0, area), rng.uniform(0.0, area)),
        rng.uniform(lo, hi),
    )


def random_polygon(
    rng: random.Random,
    mean_radius: float = 200.0,
    n_vertices: int = 8,
    area: float = DEFAULT_AREA,
) -> Polygon:
    """A random star-shaped polygon — an arbitrary-shape failure area.

    Vertices sit at jittered radii around a random center, ordered by
    angle, so the polygon is simple (non self-intersecting).
    """
    center = Point(rng.uniform(0.0, area), rng.uniform(0.0, area))
    vertices = []
    for i in range(n_vertices):
        angle = 2.0 * math.pi * i / n_vertices
        r = mean_radius * rng.uniform(0.5, 1.5)
        vertices.append(Point(center.x + r * math.cos(angle), center.y + r * math.sin(angle)))
    return Polygon(vertices)


def circle_scenarios(
    topo: Topology,
    rng: random.Random,
    radius_range: Tuple[float, float] = PAPER_RADIUS_RANGE,
    area: Optional[float] = None,
    require_failures: bool = True,
) -> Iterator[FailureScenario]:
    """An endless stream of circular-failure scenarios over ``topo``.

    With ``require_failures`` (the default) scenarios that destroy nothing
    are skipped — they produce no failed routing path, hence no test case.
    ``area`` defaults to the topology's own map (:func:`embedding_area`).
    """
    if area is None:
        area = embedding_area(topo)
    while True:
        scenario = FailureScenario.from_region(topo, random_circle(rng, radius_range, area))
        if require_failures and not scenario.failed_links:
            continue
        yield scenario


def fixed_radius_scenarios(
    topo: Topology,
    rng: random.Random,
    radius: float,
    area: Optional[float] = None,
) -> Iterator[FailureScenario]:
    """Circular scenarios with a fixed radius (the Fig. 11 sweep)."""
    if area is None:
        area = embedding_area(topo)
    while True:
        center = Point(rng.uniform(0.0, area), rng.uniform(0.0, area))
        yield FailureScenario.from_region(topo, Circle(center, radius))


def multi_area_scenario(
    topo: Topology,
    rng: random.Random,
    n_areas: int = 2,
    radius_range: Tuple[float, float] = PAPER_RADIUS_RANGE,
    area: float = DEFAULT_AREA,
    min_separation: Optional[float] = None,
) -> FailureScenario:
    """Several simultaneous circular failure areas (§III-E extension).

    With ``min_separation``, circle centers are rejection-sampled until
    pairwise at least that far apart, so the areas are genuinely disjoint.
    """
    circles = []
    attempts = 0
    while len(circles) < n_areas:
        candidate = random_circle(rng, radius_range, area)
        attempts += 1
        if min_separation is not None and attempts < 1000:
            if any(
                candidate.center.distance_to(c.center) < min_separation
                for c in circles
            ):
                continue
        circles.append(candidate)
    return FailureScenario.from_region(topo, UnionRegion(circles))
