"""Computational-geometry substrate.

Everything RTR needs from the plane: points and counterclockwise angle
arithmetic for the right-hand sweeping rule, segments and proper-crossing
predicates for the ``cross_link`` constraints, failure-area regions, convex
hulls, and precomputation of per-link crossing sets.
"""

from .point import EPSILON, TWO_PI, Point, ccw_angle, centroid, orientation
from .segment import Segment, intersection_point, segments_cross, segments_intersect
from .region import Circle, FailureRegion, HalfPlane, Polygon, UnionRegion
from .hull import convex_hull, polygon_contains
from .planarity import compute_cross_links, crossing_pairs, is_planar_embedding

__all__ = [
    "EPSILON",
    "TWO_PI",
    "Point",
    "ccw_angle",
    "centroid",
    "orientation",
    "Segment",
    "intersection_point",
    "segments_cross",
    "segments_intersect",
    "Circle",
    "FailureRegion",
    "HalfPlane",
    "Polygon",
    "UnionRegion",
    "convex_hull",
    "polygon_contains",
    "compute_cross_links",
    "crossing_pairs",
    "is_planar_embedding",
]
