"""Convex hulls.

Used by tests and by the scenario generators to reason about whether a
forwarding walk encloses the failure area (the correctness condition of
RTR's first phase), and to synthesise polygonal failure regions.
"""

from __future__ import annotations

from typing import Iterable, List

from .point import Point


def convex_hull(points: Iterable[Point]) -> List[Point]:
    """Convex hull in counterclockwise order (Andrew's monotone chain).

    Collinear points on the hull boundary are dropped.  Degenerate inputs
    (fewer than 3 distinct points) return the distinct points sorted.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts

    def half_hull(ordered: List[Point]) -> List[Point]:
        hull: List[Point] = []
        for p in ordered:
            while len(hull) >= 2 and (hull[-1] - hull[-2]).cross(p - hull[-2]) <= 0:
                hull.pop()
            hull.append(p)
        return hull

    lower = half_hull(pts)
    upper = half_hull(list(reversed(pts)))
    return lower[:-1] + upper[:-1]


def polygon_contains(hull: List[Point], p: Point) -> bool:
    """Whether ``p`` is inside (or on) a convex polygon given in CCW order."""
    n = len(hull)
    if n == 0:
        return False
    if n == 1:
        return hull[0].is_close(p)
    if n == 2:
        from .segment import Segment

        return Segment(hull[0], hull[1]).contains_point(p)
    for i in range(n):
        a, b = hull[i], hull[(i + 1) % n]
        if (b - a).cross(p - a) < -1e-9:
            return False
    return True
