"""Cross-link computation for embedded graphs.

§III-C of the paper: *"For each link, routers precompute the set of links
across it."*  This module provides that precomputation for an arbitrary set
of embedded links.  A sweep over bounding boxes keeps the common (mostly
planar, geometrically local) ISP case close to linear; the worst case is
the unavoidable O(m^2) pair check.

At internet scale (:mod:`repro.topology.scale` emits ~2 links per node,
so 100k links at 50k nodes) even the pruned Python sweep takes minutes.
When numpy is importable and the link count reaches
:data:`NUMPY_CROSS_MIN_LINKS`, :func:`compute_cross_links` switches to a
vectorized two-class pass: geometrically short links are bucketed into a
uniform grid sized to the median bounding box (two crossing segments
have overlapping boxes, hence share a cell), long links are swept
against a sorted-x window, and the exact crossing predicate runs once
over the deduplicated candidate array in chunks.  The vector predicate
performs the same float arithmetic as :func:`segments_cross_raw` except
that tolerance checks compare *squared* distances against
``EPSILON**2`` instead of ``math.hypot(...) <= EPSILON`` — equivalent
for every input whose distances are not within one rounding ulp of the
1e-9 tolerance boundary, i.e. everything but adversarially constructed
coordinates (property-tested against the Python sweep on random
embeddings).  ``REPRO_KERNEL=python`` forces the Python sweep here too.
"""

from __future__ import annotations

import os
from math import hypot
from typing import Dict, Hashable, List, Sequence, Set, Tuple, TypeVar

from .point import EPSILON
from .segment import Segment

try:  # optional [fast] extra; the Python sweep remains the reference
    import numpy as _np
except Exception:  # pragma: no cover - exercised by no-numpy CI job
    _np = None

LinkKey = TypeVar("LinkKey", bound=Hashable)

_EPS_SQ = EPSILON * EPSILON

#: Link count at or above which :func:`compute_cross_links` uses the
#: vectorized pass (when numpy is importable).  Catalog and test graphs
#: stay far below it, so their results keep coming from the reference
#: sweep byte for byte.
NUMPY_CROSS_MIN_LINKS = 4096

#: Candidate pairs evaluated per predicate chunk (bounds peak memory).
_CHUNK = 1 << 20


def _bbox(segment: Segment) -> Tuple[float, float, float, float]:
    return (
        min(segment.a.x, segment.b.x),
        min(segment.a.y, segment.b.y),
        max(segment.a.x, segment.b.x),
        max(segment.a.y, segment.b.y),
    )


def _bboxes_overlap(
    b1: Tuple[float, float, float, float], b2: Tuple[float, float, float, float]
) -> bool:
    return not (b1[2] < b2[0] or b2[2] < b1[0] or b1[3] < b2[1] or b2[3] < b1[1])


def _orient_raw(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> int:
    cross = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
    if cross > EPSILON:
        return 1
    if cross < -EPSILON:
        return -1
    return 0


def _contains_raw(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> bool:
    dx = bx - ax
    dy = by - ay
    length_sq = dx * dx + dy * dy
    if length_sq <= _EPS_SQ:
        cx, cy = ax, ay
    else:
        t = (px - ax) * dx + (py - ay) * dy
        t /= length_sq
        t = max(0.0, min(1.0, t))
        cx = ax + dx * t
        cy = ay + dy * t
    return hypot(px - cx, py - cy) <= EPSILON


def segments_cross_raw(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> bool:
    """Raw-coordinate :func:`~repro.geometry.segment.segments_cross`.

    Same predicate, same float arithmetic, same tolerance checks — just
    without Point/Segment allocation per call, for the O(m^2) cross-link
    precomputation (asserted equivalent by tests).
    """
    # Segments sharing a (numerically common) endpoint never cross.  This
    # check must come first: the tolerance-window outcomes below assume it.
    if (
        hypot(ax - cx, ay - cy) <= EPSILON
        or hypot(ax - dx, ay - dy) <= EPSILON
        or hypot(bx - cx, by - cy) <= EPSILON
        or hypot(bx - dx, by - dy) <= EPSILON
    ):
        return False

    o1 = _orient_raw(ax, ay, bx, by, cx, cy)
    o2 = _orient_raw(ax, ay, bx, by, dx, dy)
    o3 = _orient_raw(cx, cy, dx, dy, ax, ay)
    o4 = _orient_raw(cx, cy, dx, dy, bx, by)
    if o1 != o2 and o3 != o4 and o1 != 0 and o2 != 0 and o3 != 0 and o4 != 0:
        return True

    # An endpoint of one segment strictly inside the other also makes the
    # interiors intersect; "strictly" is implied because shared endpoints
    # were ruled out above.
    if _contains_raw(ax, ay, bx, by, cx, cy) or _contains_raw(ax, ay, bx, by, dx, dy):
        return True
    if _contains_raw(cx, cy, dx, dy, ax, ay) or _contains_raw(cx, cy, dx, dy, bx, by):
        return True
    return False


def _expand_ranges(np, starts, counts):
    """Concatenate ``arange(start, start+count)`` per row, vectorized."""
    keep = counts > 0
    starts, counts = starts[keep], counts[keep]
    if len(starts) == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    total = int(ends[-1])
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


def _cross_mask(np, a, b):
    """Vectorized :func:`segments_cross_raw` over two coordinate bundles.

    ``a`` and ``b`` are ``(ax, ay, bx, by)`` tuples of equal-length
    arrays.  Same arithmetic as the scalar predicate, with tolerance
    checks on squared distances (see module docstring).
    """
    ax, ay, bx, by = a
    cx, cy, dx, dy = b

    def dist_sq(px, py, qx, qy):
        ex, ey = px - qx, py - qy
        return ex * ex + ey * ey

    shared = (
        (dist_sq(ax, ay, cx, cy) <= _EPS_SQ)
        | (dist_sq(ax, ay, dx, dy) <= _EPS_SQ)
        | (dist_sq(bx, by, cx, cy) <= _EPS_SQ)
        | (dist_sq(bx, by, dx, dy) <= _EPS_SQ)
    )

    def orient(px, py, qx, qy, rx, ry):
        cross = (qx - px) * (ry - py) - (qy - py) * (rx - px)
        return np.where(cross > EPSILON, 1, np.where(cross < -EPSILON, -1, 0))

    o1 = orient(ax, ay, bx, by, cx, cy)
    o2 = orient(ax, ay, bx, by, dx, dy)
    o3 = orient(cx, cy, dx, dy, ax, ay)
    o4 = orient(cx, cy, dx, dy, bx, by)
    proper = (
        (o1 != o2) & (o3 != o4) & (o1 != 0) & (o2 != 0) & (o3 != 0) & (o4 != 0)
    )

    def contains(px, py, qx, qy, rx, ry):
        ex, ey = qx - px, qy - py
        length_sq = ex * ex + ey * ey
        degenerate = length_sq <= _EPS_SQ
        t = ((rx - px) * ex + (ry - py) * ey) / np.where(degenerate, 1.0, length_sq)
        t = np.clip(t, 0.0, 1.0)
        nx = np.where(degenerate, px, px + ex * t)
        ny = np.where(degenerate, py, py + ey * t)
        return dist_sq(rx, ry, nx, ny) <= _EPS_SQ

    touching = (
        contains(ax, ay, bx, by, cx, cy)
        | contains(ax, ay, bx, by, dx, dy)
        | contains(cx, cy, dx, dy, ax, ay)
        | contains(cx, cy, dx, dy, bx, by)
    )
    return ~shared & (proper | touching)


def _candidate_pairs(np, coords, minx, miny, maxx, maxy):
    """Bbox-overlapping (i, j) candidate pairs, i < j, possibly repeated.

    Short links (bounding box comparable to the median) go into a
    uniform grid — two crossing segments have overlapping boxes, so they
    share at least one cell.  The few long links (backbone chords,
    PoP-to-backbone uplinks) are each tested against the x-sorted window
    of boxes they overlap, which avoids flooding the grid with huge
    bbox rectangles.
    """
    span = np.maximum(maxx - minx, maxy - miny)
    x0, x1 = float(minx.min()), float(maxx.max())
    y0, y1 = float(miny.min()), float(maxy.max())
    extent = max(x1 - x0, y1 - y0, 1e-9)
    cell = max(2.0 * float(np.median(span)), extent / 512.0, 1e-9)
    long_mask = span > 4.0 * cell
    short = np.flatnonzero(~long_mask)
    long_idx = np.flatnonzero(long_mask)

    pair_lo: list = []
    pair_hi: list = []

    # --- short x short: uniform grid over bounding boxes -------------
    if len(short) > 1:
        g = max(1, min(int(extent / cell) + 1, 2048))
        ix0 = np.clip(((minx[short] - x0) / cell).astype(np.int64), 0, g - 1)
        ix1 = np.clip(((maxx[short] - x0) / cell).astype(np.int64), 0, g - 1)
        iy0 = np.clip(((miny[short] - y0) / cell).astype(np.int64), 0, g - 1)
        iy1 = np.clip(((maxy[short] - y0) / cell).astype(np.int64), 0, g - 1)
        width = ix1 - ix0 + 1
        cells_per = width * (iy1 - iy0 + 1)
        member = np.repeat(np.arange(len(short)), cells_per)
        local = _expand_ranges(np, np.zeros(len(short), dtype=np.int64), cells_per)
        cell_ids = (iy0[member] + local // width[member]) * g + (
            ix0[member] + local % width[member]
        )
        order = np.argsort(cell_ids, kind="stable")
        member = short[member[order]]
        cell_ids = cell_ids[order]
        # Within each cell, pair every entry with every earlier entry.
        boundaries = np.flatnonzero(np.diff(cell_ids)) + 1
        group_start = np.zeros(len(cell_ids), dtype=np.int64)
        group_start[boundaries] = boundaries
        np.maximum.accumulate(group_start, out=group_start)
        local_rank = np.arange(len(cell_ids)) - group_start
        firsts = member[_expand_ranges(np, group_start, local_rank)]
        seconds = np.repeat(member, local_rank)
        pair_lo.append(np.minimum(firsts, seconds))
        pair_hi.append(np.maximum(firsts, seconds))

    # --- long x everything: windowed sweep over sorted min-x ---------
    if len(long_idx):
        ax, ay, bx, by = coords
        order = np.argsort(minx, kind="stable")
        minx_o = minx[order]
        maxx_o = maxx[order]
        miny_o = miny[order]
        maxy_o = maxy[order]
        for i in long_idx.tolist():
            # Every j with minx_j <= maxx_i and maxx_j >= minx_i ...
            hi = int(np.searchsorted(minx_o, maxx[i], side="right"))
            mask = (
                (maxx_o[:hi] >= minx[i])
                & (miny_o[:hi] <= maxy[i])
                & (maxy_o[:hi] >= miny[i])
            )
            hit = order[:hi][mask]
            hit = hit[hit != i]
            if len(hit):
                # A long link's bounding box is huge but the segment is a
                # thin diagonal: bbox overlap alone admits nearly everything
                # in its strip.  Require the candidate's box to straddle the
                # supporting line (all four corners on one side, beyond the
                # touch tolerance, cannot cross or touch it).
                dxl = bx[i] - ax[i]
                dyl = by[i] - ay[i]
                c1 = dxl * (miny[hit] - ay[i]) - dyl * (minx[hit] - ax[i])
                c2 = dxl * (miny[hit] - ay[i]) - dyl * (maxx[hit] - ax[i])
                c3 = dxl * (maxy[hit] - ay[i]) - dyl * (minx[hit] - ax[i])
                c4 = dxl * (maxy[hit] - ay[i]) - dyl * (maxx[hit] - ax[i])
                tol = EPSILON * 2.0 * max(
                    (dxl * dxl + dyl * dyl) ** 0.5, 1.0
                )
                lo_c = np.minimum(np.minimum(c1, c2), np.minimum(c3, c4))
                hi_c = np.maximum(np.maximum(c1, c2), np.maximum(c3, c4))
                hit = hit[(lo_c <= tol) & (hi_c >= -tol)]
            if len(hit):
                pair_lo.append(np.minimum(hit, i))
                pair_hi.append(np.maximum(hit, i))

    if not pair_lo:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Candidates may repeat (a pair can share several grid cells, and the
    # long sweep revisits long/long pairs from both sides).  Deduplicating
    # here means sorting tens of millions of rows; re-testing a duplicate
    # and re-adding it to a set is far cheaper, so duplicates stay.
    return np.concatenate(pair_lo), np.concatenate(pair_hi)


def _compute_cross_links_numpy(
    links: Sequence[Tuple[LinkKey, Segment]],
) -> Dict[LinkKey, Set[LinkKey]]:
    np = _np
    coords = np.array(
        [(s.a.x, s.a.y, s.b.x, s.b.y) for _, s in links], dtype=np.float64
    )
    ax, ay, bx, by = (np.ascontiguousarray(c) for c in coords.T)
    minx, maxx = np.minimum(ax, bx), np.maximum(ax, bx)
    miny, maxy = np.minimum(ay, by), np.maximum(ay, by)

    left, right = _candidate_pairs(np, (ax, ay, bx, by), minx, miny, maxx, maxy)
    # Exact bbox-overlap filter (the grid over-approximates).
    keep = (
        (minx[left] <= maxx[right])
        & (minx[right] <= maxx[left])
        & (miny[left] <= maxy[right])
        & (miny[right] <= maxy[left])
    )
    left, right = left[keep], right[keep]

    result: Dict[LinkKey, Set[LinkKey]] = {key: set() for key, _ in links}
    keys = [key for key, _ in links]
    for start in range(0, len(left), _CHUNK):
        li = left[start : start + _CHUNK]
        ri = right[start : start + _CHUNK]
        mask = _cross_mask(
            np,
            (ax[li], ay[li], bx[li], by[li]),
            (ax[ri], ay[ri], bx[ri], by[ri]),
        )
        for i, j in zip(li[mask].tolist(), ri[mask].tolist()):
            result[keys[i]].add(keys[j])
            result[keys[j]].add(keys[i])
    return result


def compute_cross_links(
    links: Sequence[Tuple[LinkKey, Segment]],
) -> Dict[LinkKey, Set[LinkKey]]:
    """Map every link key to the set of link keys that properly cross it.

    ``links`` is a sequence of ``(key, segment)`` pairs.  The result is
    symmetric: ``k2 in result[k1]`` iff ``k1 in result[k2]``.  Links sharing
    an endpoint never cross (see :func:`repro.geometry.segment.segments_cross`).
    """
    if (
        _np is not None
        and len(links) >= NUMPY_CROSS_MIN_LINKS
        and os.environ.get("REPRO_KERNEL", "").strip().lower() != "python"
    ):
        return _compute_cross_links_numpy(links)
    result: Dict[LinkKey, Set[LinkKey]] = {key: set() for key, _ in links}
    # Sort by min-x so the inner loop can stop early; run the pair test on
    # raw coordinates (the O(m^2) hot loop of topology construction).
    boxes = [_bbox(seg) for _, seg in links]
    coords = [(seg.a.x, seg.a.y, seg.b.x, seg.b.y) for _, seg in links]
    order = sorted(range(len(links)), key=lambda i: boxes[i][0])
    for idx, i in enumerate(order):
        key_i = links[i][0]
        ax, ay, bx, by = coords[i]
        _minx_i, miny_i, maxx_i, maxy_i = boxes[i]
        crossings_i = result[key_i]
        for j in order[idx + 1 :]:
            box_j = boxes[j]
            if box_j[0] > maxx_i:
                break  # every later link starts right of seg_i's box
            if box_j[3] < miny_i or maxy_i < box_j[1]:
                continue  # x-ranges overlap by construction; check y only
            cx, cy, dx, dy = coords[j]
            if segments_cross_raw(ax, ay, bx, by, cx, cy, dx, dy):
                key_j = links[j][0]
                crossings_i.add(key_j)
                result[key_j].add(key_i)
    return result


def is_planar_embedding(links: Sequence[Tuple[LinkKey, Segment]]) -> bool:
    """Whether no two links properly cross (a plane embedding)."""
    crossings = compute_cross_links(links)
    return all(not others for others in crossings.values())


def crossing_pairs(
    links: Sequence[Tuple[LinkKey, Segment]],
) -> List[Tuple[LinkKey, LinkKey]]:
    """All unordered crossing pairs, each reported once."""
    crossings = compute_cross_links(links)
    pairs: List[Tuple[LinkKey, LinkKey]] = []
    seen: Set[frozenset] = set()
    for key, others in crossings.items():
        for other in others:
            pair = frozenset((key, other))
            if pair not in seen:
                seen.add(pair)
                pairs.append((key, other))
    return pairs
