"""Cross-link computation for embedded graphs.

§III-C of the paper: *"For each link, routers precompute the set of links
across it."*  This module provides that precomputation for an arbitrary set
of embedded links.  A sweep over bounding boxes keeps the common (mostly
planar, geometrically local) ISP case close to linear; the worst case is
the unavoidable O(m^2) pair check.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple, TypeVar

from .segment import Segment, segments_cross

LinkKey = TypeVar("LinkKey", bound=Hashable)


def _bbox(segment: Segment) -> Tuple[float, float, float, float]:
    return (
        min(segment.a.x, segment.b.x),
        min(segment.a.y, segment.b.y),
        max(segment.a.x, segment.b.x),
        max(segment.a.y, segment.b.y),
    )


def _bboxes_overlap(
    b1: Tuple[float, float, float, float], b2: Tuple[float, float, float, float]
) -> bool:
    return not (b1[2] < b2[0] or b2[2] < b1[0] or b1[3] < b2[1] or b2[3] < b1[1])


def compute_cross_links(
    links: Sequence[Tuple[LinkKey, Segment]],
) -> Dict[LinkKey, Set[LinkKey]]:
    """Map every link key to the set of link keys that properly cross it.

    ``links`` is a sequence of ``(key, segment)`` pairs.  The result is
    symmetric: ``k2 in result[k1]`` iff ``k1 in result[k2]``.  Links sharing
    an endpoint never cross (see :func:`repro.geometry.segment.segments_cross`).
    """
    result: Dict[LinkKey, Set[LinkKey]] = {key: set() for key, _ in links}
    # Sort by min-x so the inner loop can stop early.
    order = sorted(range(len(links)), key=lambda i: _bbox(links[i][1])[0])
    boxes = [_bbox(seg) for _, seg in links]
    for idx, i in enumerate(order):
        key_i, seg_i = links[i]
        box_i = boxes[i]
        for j in order[idx + 1 :]:
            box_j = boxes[j]
            if box_j[0] > box_i[2]:
                break  # every later link starts right of seg_i's box
            if not _bboxes_overlap(box_i, box_j):
                continue
            key_j, seg_j = links[j]
            if segments_cross(seg_i, seg_j):
                result[key_i].add(key_j)
                result[key_j].add(key_i)
    return result


def is_planar_embedding(links: Sequence[Tuple[LinkKey, Segment]]) -> bool:
    """Whether no two links properly cross (a plane embedding)."""
    crossings = compute_cross_links(links)
    return all(not others for others in crossings.values())


def crossing_pairs(
    links: Sequence[Tuple[LinkKey, Segment]],
) -> List[Tuple[LinkKey, LinkKey]]:
    """All unordered crossing pairs, each reported once."""
    crossings = compute_cross_links(links)
    pairs: List[Tuple[LinkKey, LinkKey]] = []
    seen: Set[frozenset] = set()
    for key, others in crossings.items():
        for other in others:
            pair = frozenset((key, other))
            if pair not in seen:
                seen.add(pair)
                pairs.append((key, other))
    return pairs
