"""Cross-link computation for embedded graphs.

§III-C of the paper: *"For each link, routers precompute the set of links
across it."*  This module provides that precomputation for an arbitrary set
of embedded links.  A sweep over bounding boxes keeps the common (mostly
planar, geometrically local) ISP case close to linear; the worst case is
the unavoidable O(m^2) pair check.
"""

from __future__ import annotations

from math import hypot
from typing import Dict, Hashable, List, Sequence, Set, Tuple, TypeVar

from .point import EPSILON
from .segment import Segment

LinkKey = TypeVar("LinkKey", bound=Hashable)

_EPS_SQ = EPSILON * EPSILON


def _bbox(segment: Segment) -> Tuple[float, float, float, float]:
    return (
        min(segment.a.x, segment.b.x),
        min(segment.a.y, segment.b.y),
        max(segment.a.x, segment.b.x),
        max(segment.a.y, segment.b.y),
    )


def _bboxes_overlap(
    b1: Tuple[float, float, float, float], b2: Tuple[float, float, float, float]
) -> bool:
    return not (b1[2] < b2[0] or b2[2] < b1[0] or b1[3] < b2[1] or b2[3] < b1[1])


def _orient_raw(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> int:
    cross = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
    if cross > EPSILON:
        return 1
    if cross < -EPSILON:
        return -1
    return 0


def _contains_raw(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> bool:
    dx = bx - ax
    dy = by - ay
    length_sq = dx * dx + dy * dy
    if length_sq <= _EPS_SQ:
        cx, cy = ax, ay
    else:
        t = (px - ax) * dx + (py - ay) * dy
        t /= length_sq
        t = max(0.0, min(1.0, t))
        cx = ax + dx * t
        cy = ay + dy * t
    return hypot(px - cx, py - cy) <= EPSILON


def segments_cross_raw(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> bool:
    """Raw-coordinate :func:`~repro.geometry.segment.segments_cross`.

    Same predicate, same float arithmetic, same tolerance checks — just
    without Point/Segment allocation per call, for the O(m^2) cross-link
    precomputation (asserted equivalent by tests).
    """
    # Segments sharing a (numerically common) endpoint never cross.  This
    # check must come first: the tolerance-window outcomes below assume it.
    if (
        hypot(ax - cx, ay - cy) <= EPSILON
        or hypot(ax - dx, ay - dy) <= EPSILON
        or hypot(bx - cx, by - cy) <= EPSILON
        or hypot(bx - dx, by - dy) <= EPSILON
    ):
        return False

    o1 = _orient_raw(ax, ay, bx, by, cx, cy)
    o2 = _orient_raw(ax, ay, bx, by, dx, dy)
    o3 = _orient_raw(cx, cy, dx, dy, ax, ay)
    o4 = _orient_raw(cx, cy, dx, dy, bx, by)
    if o1 != o2 and o3 != o4 and o1 != 0 and o2 != 0 and o3 != 0 and o4 != 0:
        return True

    # An endpoint of one segment strictly inside the other also makes the
    # interiors intersect; "strictly" is implied because shared endpoints
    # were ruled out above.
    if _contains_raw(ax, ay, bx, by, cx, cy) or _contains_raw(ax, ay, bx, by, dx, dy):
        return True
    if _contains_raw(cx, cy, dx, dy, ax, ay) or _contains_raw(cx, cy, dx, dy, bx, by):
        return True
    return False


def compute_cross_links(
    links: Sequence[Tuple[LinkKey, Segment]],
) -> Dict[LinkKey, Set[LinkKey]]:
    """Map every link key to the set of link keys that properly cross it.

    ``links`` is a sequence of ``(key, segment)`` pairs.  The result is
    symmetric: ``k2 in result[k1]`` iff ``k1 in result[k2]``.  Links sharing
    an endpoint never cross (see :func:`repro.geometry.segment.segments_cross`).
    """
    result: Dict[LinkKey, Set[LinkKey]] = {key: set() for key, _ in links}
    # Sort by min-x so the inner loop can stop early; run the pair test on
    # raw coordinates (the O(m^2) hot loop of topology construction).
    boxes = [_bbox(seg) for _, seg in links]
    coords = [(seg.a.x, seg.a.y, seg.b.x, seg.b.y) for _, seg in links]
    order = sorted(range(len(links)), key=lambda i: boxes[i][0])
    for idx, i in enumerate(order):
        key_i = links[i][0]
        ax, ay, bx, by = coords[i]
        _minx_i, miny_i, maxx_i, maxy_i = boxes[i]
        crossings_i = result[key_i]
        for j in order[idx + 1 :]:
            box_j = boxes[j]
            if box_j[0] > maxx_i:
                break  # every later link starts right of seg_i's box
            if box_j[3] < miny_i or maxy_i < box_j[1]:
                continue  # x-ranges overlap by construction; check y only
            cx, cy, dx, dy = coords[j]
            if segments_cross_raw(ax, ay, bx, by, cx, cy, dx, dy):
                key_j = links[j][0]
                crossings_i.add(key_j)
                result[key_j].add(key_i)
    return result


def is_planar_embedding(links: Sequence[Tuple[LinkKey, Segment]]) -> bool:
    """Whether no two links properly cross (a plane embedding)."""
    crossings = compute_cross_links(links)
    return all(not others for others in crossings.values())


def crossing_pairs(
    links: Sequence[Tuple[LinkKey, Segment]],
) -> List[Tuple[LinkKey, LinkKey]]:
    """All unordered crossing pairs, each reported once."""
    crossings = compute_cross_links(links)
    pairs: List[Tuple[LinkKey, LinkKey]] = []
    seen: Set[frozenset] = set()
    for key, others in crossings.items():
        for other in others:
            pair = frozenset((key, other))
            if pair not in seen:
                seen.add(pair)
                pairs.append((key, other))
    return pairs
