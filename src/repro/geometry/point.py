"""2-D points and direction helpers.

The paper assumes every router knows the (approximate) coordinates of all
routers in the AS (§II-A).  RTR's first phase steers packets with a
right-hand rule that rotates a *sweeping line* counterclockwise around the
current node (§III-B), so the geometry layer must provide exact-enough
angle arithmetic for counterclockwise ordering of neighbors.

Coordinates are plain floats; the paper explicitly does not require highly
accurate coordinates, so float arithmetic with a small epsilon is adequate.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple

#: Tolerance used by all geometric predicates in this package.  The paper's
#: simulation area is 2000 x 2000, so 1e-9 is far below any meaningful
#: coordinate difference.
EPSILON = 1e-9

TWO_PI = 2.0 * math.pi


class Point(NamedTuple):
    """An immutable point (or free vector) in the plane."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":  # type: ignore[override]
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":  # type: ignore[override]
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        """Dot product with ``other`` treated as a vector."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the cross product (positive when ``other`` is CCW)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of this point treated as a vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def angle(self) -> float:
        """Direction of this vector in radians, in ``[0, 2*pi)``."""
        return math.atan2(self.y, self.x) % TWO_PI

    def is_close(self, other: "Point", tol: float = EPSILON) -> bool:
        """Whether ``other`` lies within ``tol`` of this point."""
        return self.distance_to(other) <= tol


def orientation(a: Point, b: Point, c: Point) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns ``+1`` when the triple turns counterclockwise, ``-1`` when it
    turns clockwise, and ``0`` when the three points are (numerically)
    collinear.
    """
    cross = (b - a).cross(c - a)
    if cross > EPSILON:
        return 1
    if cross < -EPSILON:
        return -1
    return 0


def ccw_angle(reference: Point, target: Point) -> float:
    """Counterclockwise angle from vector ``reference`` to vector ``target``.

    The result is in ``(0, 2*pi]``: a target pointing exactly along the
    reference maps to ``2*pi`` rather than ``0``.  RTR's sweeping rule rotates
    the sweep line *away* from the reference link, so the reference direction
    itself must sort last — this is what makes a packet fall back to its
    previous hop only when no other live neighbor exists (the tree-branch
    double-traversal behaviour of §IV-B).
    """
    angle = (target.angle() - reference.angle()) % TWO_PI
    if angle <= EPSILON:
        return TWO_PI
    return angle


def centroid(points: Iterator[Point]) -> Point:
    """Arithmetic mean of a non-empty iterable of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid() requires at least one point")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))
