"""Failure-area regions.

The paper models a large-scale failure as a *continuous area* in the plane:
routers inside it and links across it all fail (§II-A).  The simulation of
§IV uses circles of random radius, but the design explicitly makes no
assumption about the area's shape or location, so this module provides a
small region algebra:

* :class:`Circle` — the shape used by the paper's evaluation,
* :class:`Polygon` — arbitrary simple polygons (convex or not),
* :class:`HalfPlane` — unbounded areas, e.g. "everything east of a fiber cut",
* :class:`UnionRegion` — unions, for multiple simultaneous failure areas.

Every region answers two questions:  does it contain a point (a router has
failed), and does a segment cross it (a link has failed).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence, Tuple

from .point import EPSILON, Point
from .segment import Segment, segments_intersect


class FailureRegion(ABC):
    """Abstract continuous area of the plane."""

    @abstractmethod
    def contains(self, p: Point) -> bool:
        """Whether point ``p`` lies inside the region (boundary counts)."""

    @abstractmethod
    def crosses(self, segment: Segment) -> bool:
        """Whether any part of ``segment`` lies inside the region."""

    @abstractmethod
    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)``; infinite for unbounded regions."""

    def union(self, other: "FailureRegion") -> "UnionRegion":
        """The union of this region and ``other``."""
        return UnionRegion([self, other])


class Circle(FailureRegion):
    """A closed disc — the failure-area shape of the paper's evaluation.

    A segment crosses the disc iff its closest point to the center is within
    the radius; a segment with an endpoint inside trivially satisfies this.
    """

    def __init__(self, center: Point, radius: float) -> None:
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.center = center
        self.radius = float(radius)

    def __repr__(self) -> str:
        return f"Circle(center={self.center!r}, radius={self.radius})"

    def contains(self, p: Point) -> bool:
        return self.center.distance_to(p) <= self.radius + EPSILON

    def crosses(self, segment: Segment) -> bool:
        return segment.distance_to_point(self.center) <= self.radius + EPSILON

    def bounding_box(self) -> Tuple[float, float, float, float]:
        cx, cy, r = self.center.x, self.center.y, self.radius
        return (cx - r, cy - r, cx + r, cy + r)

    def area(self) -> float:
        """Area of the disc."""
        return math.pi * self.radius * self.radius


class Polygon(FailureRegion):
    """A simple (non self-intersecting) polygon, convex or not."""

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        self.vertices: List[Point] = list(vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices)"

    def edges(self) -> List[Segment]:
        """The boundary segments, in vertex order."""
        n = len(self.vertices)
        return [Segment(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)]

    def contains(self, p: Point) -> bool:
        # Boundary counts as inside.
        for edge in self.edges():
            if edge.contains_point(p):
                return True
        # Ray casting toward +x.
        inside = False
        n = len(self.vertices)
        for i in range(n):
            a, b = self.vertices[i], self.vertices[(i + 1) % n]
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if x_cross > p.x:
                    inside = not inside
        return inside

    def crosses(self, segment: Segment) -> bool:
        if self.contains(segment.a) or self.contains(segment.b):
            return True
        return any(segments_intersect(segment, edge) for edge in self.edges())

    def bounding_box(self) -> Tuple[float, float, float, float]:
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return (min(xs), min(ys), max(xs), max(ys))

    def area(self) -> float:
        """Unsigned area via the shoelace formula."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            a, b = self.vertices[i], self.vertices[(i + 1) % n]
            total += a.cross(b)
        return abs(total) / 2.0


class HalfPlane(FailureRegion):
    """All points ``p`` with ``normal . (p - anchor) >= 0``.

    Models unbounded failure areas such as "everything on one side of a
    severed corridor" — the paper stresses that the area may lie on the
    border of the network (§III-B), and a half-plane is the extreme case.
    """

    def __init__(self, anchor: Point, normal: Point) -> None:
        if normal.norm() <= EPSILON:
            raise ValueError("normal vector must be non-zero")
        self.anchor = anchor
        self.normal = normal

    def __repr__(self) -> str:
        return f"HalfPlane(anchor={self.anchor!r}, normal={self.normal!r})"

    def contains(self, p: Point) -> bool:
        return self.normal.dot(p - self.anchor) >= -EPSILON

    def crosses(self, segment: Segment) -> bool:
        # A segment crosses the half-plane iff at least one endpoint is in it
        # (the half-plane is convex and closed).
        return self.contains(segment.a) or self.contains(segment.b)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        inf = math.inf
        return (-inf, -inf, inf, inf)


class UnionRegion(FailureRegion):
    """Union of several regions — multiple simultaneous failure areas."""

    def __init__(self, regions: Iterable[FailureRegion]) -> None:
        self.regions: List[FailureRegion] = []
        for region in regions:
            # Flatten nested unions so iteration stays shallow.
            if isinstance(region, UnionRegion):
                self.regions.extend(region.regions)
            else:
                self.regions.append(region)
        if not self.regions:
            raise ValueError("a union needs at least one region")

    def __repr__(self) -> str:
        return f"UnionRegion({len(self.regions)} regions)"

    def contains(self, p: Point) -> bool:
        return any(r.contains(p) for r in self.regions)

    def crosses(self, segment: Segment) -> bool:
        return any(r.crosses(segment) for r in self.regions)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        boxes = [r.bounding_box() for r in self.regions]
        return (
            min(b[0] for b in boxes),
            min(b[1] for b in boxes),
            max(b[2] for b in boxes),
            max(b[3] for b in boxes),
        )
