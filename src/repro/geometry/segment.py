"""Line segments and crossing predicates.

Links of an embedded topology are straight segments between router
coordinates.  Two notions of "crossing" matter to RTR:

* **link/link crossing** — two segments whose *interiors* intersect.  This is
  what the paper's Constraints 1 and 2 (§III-C) forbid on the phase-1
  forwarding path, and what the per-link ``cross_link`` sets precompute.
  Segments that merely share an endpoint (links incident to a common router)
  do *not* cross.

* **link/region crossing** — a segment that intersects the failure area, in
  which case the link has failed (§II-A).  Implemented by the region classes
  in :mod:`repro.geometry.region` on top of the distance helpers here.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from .point import EPSILON, Point, orientation


class Segment(NamedTuple):
    """A closed straight segment between two endpoints."""

    a: Point
    b: Point

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    def midpoint(self) -> Point:
        """The point halfway between the endpoints."""
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def direction(self) -> Point:
        """The (unnormalised) vector from ``a`` to ``b``."""
        return self.b - self.a

    def contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """Whether ``p`` lies on the segment, within ``tol``."""
        return self.distance_to_point(p) <= tol

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the nearest point of the segment."""
        return p.distance_to(self.closest_point_to(p))

    def closest_point_to(self, p: Point) -> Point:
        """The point of the segment closest to ``p``."""
        d = self.direction()
        length_sq = d.dot(d)
        if length_sq <= EPSILON * EPSILON:
            return self.a
        t = (p - self.a).dot(d) / length_sq
        t = max(0.0, min(1.0, t))
        return self.a + d * t

    def shares_endpoint_with(self, other: "Segment", tol: float = EPSILON) -> bool:
        """Whether the two segments have a (numerically) common endpoint."""
        return (
            self.a.is_close(other.a, tol)
            or self.a.is_close(other.b, tol)
            or self.b.is_close(other.a, tol)
            or self.b.is_close(other.b, tol)
        )


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """Whether the two closed segments intersect at all (including endpoints)."""
    o1 = orientation(s1.a, s1.b, s2.a)
    o2 = orientation(s1.a, s1.b, s2.b)
    o3 = orientation(s2.a, s2.b, s1.a)
    o4 = orientation(s2.a, s2.b, s1.b)

    if o1 != o2 and o3 != o4:
        return True
    # Tolerance cases: an endpoint of one segment lying on the other (within
    # EPSILON) intersects even when the orientation sign has not collapsed to
    # zero yet — this keeps ``segments_cross`` a strict subset of this
    # predicate for nearly-collinear configurations.
    if s1.contains_point(s2.a) or s1.contains_point(s2.b):
        return True
    if s2.contains_point(s1.a) or s2.contains_point(s1.b):
        return True
    return False


def segments_cross(s1: Segment, s2: Segment) -> bool:
    """Whether two segments *properly* cross (interior intersection).

    This is the predicate behind the paper's "link across another link":
    links that only touch at a shared router do not cross.  Collinear
    overlapping segments are treated as crossing since their interiors
    intersect.
    """
    if s1.shares_endpoint_with(s2):
        return False

    o1 = orientation(s1.a, s1.b, s2.a)
    o2 = orientation(s1.a, s1.b, s2.b)
    o3 = orientation(s2.a, s2.b, s1.a)
    o4 = orientation(s2.a, s2.b, s1.b)

    if o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4):
        return True

    # An endpoint of one segment lying strictly inside the other also makes
    # the interiors intersect (e.g. a T-junction without a shared router).
    for p in (s2.a, s2.b):
        if s1.contains_point(p) and not (p.is_close(s1.a) or p.is_close(s1.b)):
            return True
    for p in (s1.a, s1.b):
        if s2.contains_point(p) and not (p.is_close(s2.a) or p.is_close(s2.b)):
            return True
    return False


def intersection_point(s1: Segment, s2: Segment) -> Optional[Point]:
    """The intersection point of two segments, or ``None``.

    For collinear overlapping segments (which intersect in a sub-segment)
    an arbitrary common point is returned.
    """
    d1 = s1.direction()
    d2 = s2.direction()
    denom = d1.cross(d2)
    if abs(denom) > EPSILON:
        t = (s2.a - s1.a).cross(d2) / denom
        u = (s2.a - s1.a).cross(d1) / denom
        if -EPSILON <= t <= 1.0 + EPSILON and -EPSILON <= u <= 1.0 + EPSILON:
            return s1.a + d1 * max(0.0, min(1.0, t))
        return None
    # Parallel: intersect only if collinear and overlapping.
    if not segments_intersect(s1, s2):
        return None
    for p in (s2.a, s2.b, s1.a, s1.b):
        if s1.contains_point(p) and s2.contains_point(p):
            return p
    return None
