"""``repro.obs`` — zero-dependency instrumentation for the RTR pipeline.

One module is the single observability surface of the whole system:

* a **metrics registry** (:mod:`repro.obs.registry`) — counters, gauges,
  fixed-bucket histograms;
* a **span tracer** (:mod:`repro.obs.spans`) — nested monotonic timings
  over the Dijkstra/incremental/MRC kernels, SPT cache, RTR phases,
  chaos injections, and evaluation sweeps;
* **run provenance** (:mod:`repro.obs.manifest`,
  :mod:`repro.obs.export`) — every instrumented run emits a manifest
  (seed, git sha, python, config hash, topology ids), a JSONL event
  stream, and a Prometheus text exposition, rendered back by
  ``repro obs report``;
* **logging** (:mod:`repro.obs.logconfig`) — the ``repro``-rooted stdlib
  logger hierarchy.

Gating: observability is **off by default** (``REPRO_OBS=1`` or
:func:`enable` turns it on).  Disabled, every facade call is a boolean
check returning a shared no-op object, so the routing hot paths pay
effectively nothing — asserted by the no-op tests, which require the
pinned Table III sweep to be bit-identical with obs on and off.

The facade is process-global on purpose: instrumentation threads through
layers that never share constructor arguments, and parallel evaluation
workers each own a process-local instance whose snapshot is merged
deterministically into the parent (:mod:`repro.eval.parallel`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence

from .atomic import atomic_write_json, atomic_write_text
from .logconfig import configure_logging, get_logger
from .manifest import RunManifest, config_hash, git_sha, iso_utc
from .registry import (
    DEFAULT_EDGES,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    histogram_quantiles,
)
from .spans import NULL_SPAN, Span, SpanAggregate, Tracer
from .export import (
    latest_run_dir,
    load_run,
    render_prometheus,
    render_report,
    run_report_doc,
    write_run_artifacts,
)

__all__ = [
    "DEFAULT_EDGES",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "SpanAggregate",
    "Tracer",
    "atomic_write_json",
    "atomic_write_text",
    "bucket_quantile",
    "config_hash",
    "configure_logging",
    "current_span_id",
    "default_run_dir",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "get_logger",
    "git_sha",
    "histogram_quantiles",
    "inc",
    "iso_utc",
    "latest_run_dir",
    "load_run",
    "merge_snapshot",
    "observe",
    "render_prometheus",
    "render_report",
    "reset",
    "run_context",
    "run_report_doc",
    "snapshot",
    "span",
    "temporarily_enabled",
    "write_run_artifacts",
]

#: Environment switch; read once at import, toggled by enable()/disable().
_TRUTHY = ("1", "true", "yes", "on")
_enabled: bool = os.environ.get("REPRO_OBS", "0").strip().lower() in _TRUTHY

#: Process-global state.  Workers in a process pool each get their own
#: copy (fresh after fork+reset or spawn) and ship snapshots back.
metrics = MetricsRegistry()
tracer = Tracer()
_events_custom_count = 0


def enabled() -> bool:
    """Whether instrumentation is currently active in this process."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


@contextmanager
def temporarily_enabled(active: bool = True):
    """Scoped enable/disable — test helper, restores the prior state."""
    global _enabled
    prior = _enabled
    _enabled = active
    try:
        yield
    finally:
        _enabled = prior


# ----------------------------------------------------------------------
# Recording facade — every call is a no-op when disabled
# ----------------------------------------------------------------------


def span(name: str, **attrs):
    """A timed span context manager (shared no-op object when disabled)."""
    if not _enabled:
        return NULL_SPAN
    return tracer.span(name, attrs or None)


def current_span_id() -> Optional[int]:
    """Id of the innermost open span, or ``None`` (always ``None`` when off)."""
    if not _enabled:
        return None
    return tracer.current_span_id()


def inc(name: str, n: float = 1) -> None:
    """Increment a counter."""
    if _enabled:
        metrics.inc(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge."""
    if _enabled:
        metrics.set_gauge(name, value)


def observe(name: str, value: float, edges: Optional[Iterable[float]] = None) -> None:
    """Record one histogram observation."""
    if _enabled:
        metrics.observe(name, value, edges)


def event(kind: str, **fields) -> None:
    """Append one custom structured event to the JSONL stream."""
    global _events_custom_count
    if not _enabled:
        return
    if len(tracer.events) < tracer.max_events:
        payload = {"type": kind, "span_id": tracer.current_span_id()}
        payload.update(fields)
        tracer.events.append(payload)
        _events_custom_count += 1
    else:
        tracer.dropped_events += 1


# ----------------------------------------------------------------------
# State management: reset / snapshot / merge
# ----------------------------------------------------------------------


def reset() -> None:
    """Drop every counter, span aggregate, and buffered event."""
    global _events_custom_count
    metrics.clear()
    tracer.reset()
    _events_custom_count = 0


def snapshot() -> Dict[str, object]:
    """Picklable state for cross-process transfer and export."""
    return {
        "metrics": metrics.snapshot(),
        "span_aggregates": tracer.aggregate_snapshot(),
        "dropped_events": tracer.dropped_events,
    }


def merge_snapshot(snap: Dict[str, object]) -> None:
    """Deterministically fold one worker :func:`snapshot` into this process.

    Counters and histogram buckets add, gauges take the max, span
    aggregates merge per path.  Callers must merge payloads in a
    deterministic order (sorted shard order in
    :mod:`repro.eval.parallel`) so float sums are reproducible.
    """
    if not snap:
        return
    metrics.merge(snap.get("metrics", {}))  # type: ignore[arg-type]
    tracer.merge_aggregates(snap.get("span_aggregates", {}))  # type: ignore[arg-type]
    tracer.dropped_events += int(snap.get("dropped_events", 0))  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Run context — manifest + artifact emission around one sweep/bench
# ----------------------------------------------------------------------


def default_run_dir() -> Path:
    """Base directory for run artifacts (``REPRO_OBS_DIR`` or ./obs-runs)."""
    return Path(os.environ.get("REPRO_OBS_DIR", "obs-runs"))


@contextmanager
def run_context(
    name: str,
    seed: Optional[int] = None,
    config: Optional[dict] = None,
    topologies: Sequence[str] = (),
    out_dir: Optional[Path] = None,
    reset_state: bool = True,
):
    """Instrument one run end to end; yields the manifest (or ``None``).

    When enabled: resets process state (unless ``reset_state=False``),
    opens a root span named after the run, and on exit writes
    ``manifest.json`` / ``events.jsonl`` / ``metrics.prom`` /
    ``metrics.json`` into ``<out_dir>/<name>-<config_hash>``.  The
    written directory is exposed as ``manifest.artifacts_dir``.  When
    disabled the body runs untouched and ``None`` is yielded.
    """
    if not _enabled:
        yield None
        return
    if reset_state:
        reset()
    manifest = RunManifest(
        name=name, seed=seed, config=config, topologies=list(topologies)
    )
    try:
        with span(name):
            yield manifest
    finally:
        # Wall-clock end stamp: provenance only, outside every
        # deterministic path and excluded from config_hash.
        manifest.finish()
        base = Path(out_dir) if out_dir is not None else default_run_dir()
        directory = base / f"{name}-{manifest.config_hash}"
        snap = snapshot()
        write_run_artifacts(
            directory,
            manifest.as_dict(),
            snap["metrics"],  # type: ignore[arg-type]
            snap["span_aggregates"],  # type: ignore[arg-type]
            tracer.events,
        )
        manifest.artifacts_dir = str(directory)
