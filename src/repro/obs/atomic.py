"""Torn-write-proof file emission.

Soak runs checkpoint for hours and may die at any instant — a ``kill
-9`` mid-``write_text`` must never leave a truncated ``manifest.json``
or checkpoint journal behind, because resume reads whatever is on disk.
The cure is the classic same-directory temp file + ``fsync`` +
``os.replace`` dance: the visible path always holds either the previous
complete version or the new complete version, never a prefix.

Used by every obs artifact writer and by the :mod:`repro.soak` journal.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional


def atomic_write_text(path: Path, text: str, sync: bool = True) -> Path:
    """Atomically replace ``path`` with ``text``.

    The temp file lives in ``path``'s directory so ``os.replace`` stays
    a same-filesystem rename (atomic on POSIX).  With ``sync`` the data
    is fsynced before the rename and the directory entry after it, so
    the replacement survives power loss, not just process death.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            if sync:
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if sync:
        _fsync_dir(path.parent)
    return path


def atomic_write_json(
    path: Path,
    obj: object,
    indent: Optional[int] = 2,
    sync: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``obj`` serialized as JSON.

    Keys are sorted and floats round-trip exactly (``json`` emits
    ``repr``-exact doubles), so identical objects always produce
    byte-identical files — the soak resume parity guarantee leans on
    this.
    """
    text = json.dumps(obj, indent=indent, sort_keys=True) + "\n"
    return atomic_write_text(path, text, sync=sync)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry; best-effort on platforms without it."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
