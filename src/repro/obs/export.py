"""Structured export: JSONL event streams, Prometheus text, reports.

Every instrumented run leaves three artifacts in its run directory:

* ``manifest.json`` — the :class:`~repro.obs.manifest.RunManifest`;
* ``events.jsonl`` — one JSON object per line: finished spans and custom
  events, in completion order;
* ``metrics.prom`` / ``metrics.json`` — the final registry state as a
  Prometheus text exposition and as plain JSON (the report reads the
  JSON; the ``.prom`` file is for scraping/ingestion tooling).

:func:`render_report` turns a loaded run back into the terminal view the
``repro obs report`` CLI prints: a per-span time breakdown (indented by
nesting) plus the top counters.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional

from .atomic import atomic_write_json, atomic_write_text
from .logconfig import get_logger
from .registry import histogram_quantiles

log = get_logger(__name__)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name sanitized to the Prometheus grammar."""
    return _NAME_RE.sub("_", name)


def render_prometheus(metrics_snapshot: Dict[str, object]) -> str:
    """Prometheus text exposition of one registry snapshot."""
    lines: List[str] = []
    for name, value in metrics_snapshot.get("counters", {}).items():  # type: ignore[union-attr]
        prom = f"repro_{_prom_name(name)}_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in metrics_snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
        prom = f"repro_{_prom_name(name)}"
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, data in metrics_snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
        prom = f"repro_{_prom_name(name)}"
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for edge, count in zip(data["edges"], data["counts"]):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{edge}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {data['sum']}")
        lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_run_artifacts(
    directory: Path,
    manifest_dict: Dict[str, object],
    metrics_snapshot: Dict[str, object],
    span_aggregates: Dict[str, Dict[str, float]],
    events: List[dict],
) -> Path:
    """Write manifest/events/metrics artifacts; returns the directory.

    Every file goes through :mod:`repro.obs.atomic` — a crash mid-write
    leaves the previous complete version in place, never truncated JSON.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write_json(directory / "manifest.json", manifest_dict)
    atomic_write_text(
        directory / "events.jsonl",
        "".join(json.dumps(event, sort_keys=True) + "\n" for event in events),
    )
    metrics_doc = {
        "metrics": metrics_snapshot,
        "span_aggregates": span_aggregates,
    }
    atomic_write_json(directory / "metrics.json", metrics_doc)
    atomic_write_text(
        directory / "metrics.prom", render_prometheus(metrics_snapshot)
    )
    _record_in_store(directory, manifest_dict, metrics_snapshot, span_aggregates, events)
    return directory


def _record_in_store(
    directory: Path,
    manifest_dict: Dict[str, object],
    metrics_snapshot: Dict[str, object],
    span_aggregates: Dict[str, Dict[str, float]],
    events: List[dict],
) -> None:
    """Mirror the run into the ``REPRO_STORE`` run store, if configured.

    Best-effort on purpose: a broken or locked store must never fail the
    instrumented run whose artifacts were already written.
    """
    store_path = os.environ.get("REPRO_STORE")
    if not store_path:
        return
    try:
        from ..store import RunStore

        with RunStore(store_path) as store:
            store.record_run(
                manifest_dict,
                metrics_snapshot,
                span_aggregates,
                events,
                source="live",
                run_dir=str(directory),
            )
    except Exception as exc:  # noqa: BLE001 — observability must not break runs
        log.warning(
            "REPRO_STORE=%s: failed to record run %s: %s",
            store_path,
            manifest_dict.get("name"),
            exc,
        )


def load_run(directory: Path) -> Dict[str, object]:
    """Load one run directory back into plain dicts."""
    directory = Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    metrics_doc = json.loads((directory / "metrics.json").read_text())
    events: List[dict] = []
    events_path = directory / "events.jsonl"
    if events_path.exists():
        for line in events_path.read_text().splitlines():
            if line.strip():
                events.append(json.loads(line))
    return {
        "manifest": manifest,
        "metrics": metrics_doc.get("metrics", {}),
        "span_aggregates": metrics_doc.get("span_aggregates", {}),
        "events": events,
    }


def latest_run_dir(base: Path) -> Optional[Path]:
    """The most recently written run directory under ``base``, if any.

    Ordering is deterministic: manifest mtime first, directory name as
    the tie-break, so two runs landing within one filesystem timestamp
    granule always resolve the same way.
    """
    base = Path(base)
    if not base.is_dir():
        return None
    candidates = [d for d in base.iterdir() if (d / "manifest.json").exists()]
    if not candidates:
        return None
    return max(
        candidates,
        key=lambda d: ((d / "manifest.json").stat().st_mtime, d.name),
    )


def run_report_doc(run: Dict[str, object]) -> Dict[str, object]:
    """The machine-readable report (``repro obs report --json``).

    The loaded run plus derived histogram quantiles; raw events are
    summarized by count (the JSONL stream stays on disk).
    """
    metrics: Dict[str, object] = run.get("metrics", {})  # type: ignore[assignment]
    quantiles = {
        name: histogram_quantiles(data)
        for name, data in sorted(metrics.get("histograms", {}).items())  # type: ignore[union-attr]
    }
    return {
        "manifest": run.get("manifest", {}),
        "metrics": metrics,
        "span_aggregates": run.get("span_aggregates", {}),
        "quantiles": quantiles,
        "events_count": len(run.get("events", [])),  # type: ignore[arg-type]
    }


def render_report(run: Dict[str, object], top: int = 15) -> str:
    """Terminal report: span time breakdown + top counters."""
    manifest = run["manifest"]  # type: ignore[assignment]
    aggregates: Dict[str, Dict[str, float]] = run["span_aggregates"]  # type: ignore[assignment]
    counters: Dict[str, float] = run["metrics"].get("counters", {})  # type: ignore[union-attr]

    lines: List[str] = []
    lines.append(
        f"run {manifest.get('name')}  seed={manifest.get('seed')}  "
        f"config={manifest.get('config_hash')}  git={manifest.get('git_sha')}  "
        f"python={manifest.get('python')}"
    )
    topologies = manifest.get("topologies") or []
    if topologies:
        lines.append(f"topologies: {', '.join(str(t) for t in topologies)}")

    lines.append("")
    lines.append("span breakdown (self-inclusive totals):")
    header = f"  {'span':40s} {'count':>8s} {'total_ms':>12s} {'mean_ms':>10s} {'max_ms':>10s}"
    lines.append(header)
    root_total = sum(
        data["total_s"] for path, data in aggregates.items() if "/" not in path
    )
    for path in sorted(aggregates):
        data = aggregates[path]
        depth = path.count("/")
        label = ("  " * depth) + path.rsplit("/", 1)[-1]
        total_ms = 1000.0 * data["total_s"]
        mean_ms = total_ms / data["count"] if data["count"] else 0.0
        pct = (
            f" {100.0 * data['total_s'] / root_total:5.1f}%"
            if root_total > 0 and depth == 0
            else ""
        )
        lines.append(
            f"  {label:40s} {int(data['count']):>8d} {total_ms:>12.2f} "
            f"{mean_ms:>10.3f} {1000.0 * data['max_s']:>10.3f}{pct}"
        )
    if not aggregates:
        lines.append("  (no spans recorded)")

    lines.append("")
    lines.append(f"top counters (of {len(counters)}):")
    ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    for name, value in ranked:
        shown = int(value) if float(value).is_integer() else value
        lines.append(f"  {name:48s} {shown}")
    if not counters:
        lines.append("  (no counters recorded)")

    histograms: Dict[str, dict] = run["metrics"].get("histograms", {})  # type: ignore[union-attr]
    if histograms:
        lines.append("")
        lines.append("histogram quantiles (bucket-estimated):")
        lines.append(
            f"  {'histogram':40s} {'count':>8s} {'p50':>12s} {'p95':>12s} {'p99':>12s}"
        )
        for name in sorted(histograms):
            data = histograms[name]
            q = histogram_quantiles(data)
            cells = "".join(
                f" {q[label]:>12.6f}" if q[label] is not None else f" {'-':>12s}"
                for label in ("p50", "p95", "p99")
            )
            lines.append(f"  {name:40s} {int(data['count']):>8d}{cells}")
    return "\n".join(lines)
