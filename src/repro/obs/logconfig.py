"""Stdlib logging for the ``repro`` logger hierarchy.

Every module logs under a ``repro.``-rooted name via :func:`get_logger`;
nothing is printed until :func:`configure_logging` installs a handler
(the root ``repro`` logger carries a :class:`logging.NullHandler` so an
un-configured library stays silent, per stdlib convention).  The CLI
configures WARNING by default; ``REPRO_LOG=DEBUG`` (or any level name)
overrides it.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"

# Library convention: stay silent until the application configures us —
# without this, WARNING records would hit logging.lastResort and spam
# stderr during chaos sweeps.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: Union[int, str] = "INFO", stream=None
) -> logging.Logger:
    """Install (or retune) one stream handler on the ``repro`` root logger.

    Idempotent: repeated calls adjust the level of the existing handler
    instead of stacking new ones.  Returns the configured root logger.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    handler = _find_handler(root)
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.set_name("repro-obs")
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)  # type: ignore[attr-defined]
    handler.setLevel(level)
    return root


def _find_handler(root: logging.Logger) -> Optional[logging.Handler]:
    for handler in root.handlers:
        if handler.get_name() == "repro-obs":
            return handler
    return None
