"""Run provenance: manifests and canonical config hashing.

A :class:`RunManifest` pins everything needed to reproduce one sweep or
benchmark run — seed, git commit, interpreter, a canonical hash of the
driver configuration, and the topology ids it touched.  The same config
hash is recorded into ``benchmarks/BENCH_*.json`` rows so a perf number
can always be traced back to the exact configuration that produced it.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional, Sequence


def config_hash(config: object) -> str:
    """Canonical short hash of an arbitrary JSON-able configuration.

    Keys are sorted and non-JSON values fall back to ``repr`` so the hash
    depends only on configuration *content*, never on dict ordering or
    object identity.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_sha() -> str:
    """Short commit hash of this checkout (``-dirty`` suffixed), or ``unknown``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--abbrev=12"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


def iso_utc(ts: float) -> str:
    """Wall-clock timestamp as ISO-8601 UTC with millisecond precision."""
    return datetime.fromtimestamp(ts, timezone.utc).isoformat(timespec="milliseconds")


@dataclass
class RunManifest:
    """Provenance of one instrumented run.

    The wall-clock fields (``started_unix``/``finished_unix``, rendered
    as ``started_at``/``finished_at``/``duration_s``) and ``hostname``
    are provenance only: they are stamped outside every deterministic
    code path and deliberately excluded from :attr:`config_hash`, which
    depends on the *configuration* alone.
    """

    name: str
    seed: Optional[int] = None
    config: Optional[dict] = None
    topologies: Sequence[str] = ()
    started_unix: float = field(default_factory=time.time)
    git_sha: str = field(default_factory=git_sha)
    python: str = field(default_factory=platform.python_version)
    hostname: str = field(default_factory=platform.node)
    #: Stamped by :func:`repro.obs.run_context` just before artifacts
    #: are written; ``None`` while the run is still open.
    finished_unix: Optional[float] = None
    #: Filled in by :func:`repro.obs.run_context` after artifacts are
    #: written; ``None`` while the run is still open.
    artifacts_dir: Optional[str] = None

    @property
    def config_hash(self) -> str:
        return config_hash(self.config if self.config is not None else {})

    def finish(self, now: Optional[float] = None) -> None:
        """Stamp the wall-clock end of the run (idempotent)."""
        if self.finished_unix is None:
            self.finished_unix = time.time() if now is None else now

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "name": self.name,
            "seed": self.seed,
            "config": self.config,
            "config_hash": self.config_hash,
            "topologies": list(self.topologies),
            "started_unix": round(self.started_unix, 3),
            "started_at": iso_utc(self.started_unix),
            "git_sha": self.git_sha,
            "python": self.python,
            "hostname": self.hostname,
        }
        if self.finished_unix is not None:
            doc["finished_at"] = iso_utc(self.finished_unix)
            doc["duration_s"] = round(self.finished_unix - self.started_unix, 6)
        return doc
