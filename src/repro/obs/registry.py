"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is a plain in-process container — no background threads, no
global locks, no third-party clients.  Protocol code reports through the
facade in :mod:`repro.obs`, which skips the registry entirely when
observability is disabled, so the hot paths pay only a boolean check.

Merge semantics (used when parallel shard workers hand their registries
back to the parent, see :mod:`repro.eval.parallel`):

* counters and histogram buckets **add**,
* gauges take the **max** (order-independent, so any deterministic merge
  order yields the same result),
* histogram edge lists must agree exactly — a mismatch is a programming
  error and raises.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket edges, in seconds — tuned for kernel/phase
#: timings that range from tens of microseconds to a few seconds.
DEFAULT_EDGES: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class Histogram:
    """Fixed-bucket histogram (cumulative counts are derived on export)."""

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: Tuple[float, ...] = DEFAULT_EDGES) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram edges must be strictly increasing: {edges}")
        self.edges = tuple(edges)
        #: counts[i] observes values <= edges[i]; the last slot is +Inf.
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from the bucket boundaries."""
        return bucket_quantile(self.edges, self.counts, self.count, q)

    def quantiles(
        self, qs: Iterable[float] = (0.5, 0.95, 0.99)
    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` estimates."""
        return {_q_label(q): self.quantile(q) for q in qs}


def _q_label(q: float) -> str:
    pct = 100.0 * q
    return f"p{pct:g}".replace(".", "_")


def bucket_quantile(
    edges: Iterable[float],
    counts: Iterable[float],
    total: int,
    q: float,
) -> Optional[float]:
    """Quantile estimate from fixed histogram buckets.

    Linear interpolation inside the bucket containing the target rank
    (Prometheus ``histogram_quantile`` semantics): the first bucket's
    lower bound is 0 (observations are nonnegative timings), and a rank
    landing in the +Inf overflow bucket clamps to the last finite edge —
    the estimate is then a lower bound, which is the conservative
    direction for a latency objective.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if total <= 0:
        return None
    edges = list(edges)
    counts = list(counts)
    target = q * total
    cumulative = 0.0
    lower = 0.0
    for edge, count in zip(edges, counts):
        if count and cumulative + count >= target:
            fraction = (target - cumulative) / count
            return lower + fraction * (edge - lower)
        cumulative += count
        lower = edge
    return edges[-1] if edges else None


def histogram_quantiles(
    data: Dict[str, object], qs: Iterable[float] = (0.5, 0.95, 0.99)
) -> Dict[str, Optional[float]]:
    """Quantile estimates from one exported histogram dict.

    Operates on the :meth:`Histogram.as_dict` / ``metrics.json`` shape
    (``edges``/``counts``/``count``) so loaded runs and live registries
    share one estimator.
    """
    edges = list(data.get("edges", ()))  # type: ignore[arg-type]
    counts = list(data.get("counts", ()))  # type: ignore[arg-type]
    total = int(data.get("count", 0))  # type: ignore[arg-type]
    return {
        _q_label(q): bucket_quantile(edges, counts, total, q) for q in qs
    }


class MetricsRegistry:
    """Named counters, gauges, and histograms with deterministic merge."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(
        self, name: str, value: float, edges: Optional[Iterable[float]] = None
    ) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(tuple(edges) if edges is not None else DEFAULT_EDGES)
            self.histograms[name] = hist
        hist.observe(value)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain, picklable dict of the current state (sorted keys)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict() for k in sorted(self.histograms)
            },
        }

    def merge(self, snap: Dict[str, object]) -> None:
        """Fold one :meth:`snapshot` payload into this registry."""
        for name, value in snap.get("counters", {}).items():  # type: ignore[union-attr]
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():  # type: ignore[union-attr]
            self.gauges[name] = max(self.gauges.get(name, value), value)
        for name, data in snap.get("histograms", {}).items():  # type: ignore[union-attr]
            edges = tuple(data["edges"])
            hist = self.histograms.get(name)
            if hist is None:
                hist = Histogram(edges)
                self.histograms[name] = hist
            elif hist.edges != edges:
                raise ValueError(
                    f"histogram {name!r} edge mismatch on merge: "
                    f"{hist.edges} vs {edges}"
                )
            for i, c in enumerate(data["counts"]):
                hist.counts[i] += c
            hist.sum += data["sum"]
            hist.count += data["count"]

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )
