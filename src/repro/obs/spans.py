"""Span tracing: nested monotonic timings over the recovery pipeline.

A span is one timed region (``with tracer.span("dijkstra.csr"):``).
Spans nest; each finished span is aggregated under its *path* — the tuple
of ancestor names plus its own — so the report can render a per-phase
breakdown (``eval.sweep / rtr.phase2 / dijkstra.csr``) without keeping
every event.  Raw span events are additionally retained (bounded) for the
JSONL export and for trace correlation (:mod:`repro.simulator.trace`
stamps hop events with the enclosing span id).

Timing uses :func:`time.perf_counter` — monotonic, unaffected by wall
clock adjustments.  The tracer is not thread-safe by design: the
simulation is single-threaded per process, and parallel evaluation runs
one tracer per worker process (merged on reassembly).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

#: Cap on retained raw span events; aggregates keep counting past it.
DEFAULT_MAX_EVENTS = 100_000


class SpanAggregate:
    """count / total / min / max of every finished span on one path."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One active span; created by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[dict]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self.parent_id = stack[-1][0] if stack else None
        stack.append((self.span_id, self.name))
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = perf_counter() - self._t0
        tracer = self.tracer
        stack = tracer._stack
        path = tuple(name for _, name in stack)
        stack.pop()
        agg = tracer.aggregates.get(path)
        if agg is None:
            agg = SpanAggregate()
            tracer.aggregates[path] = agg
        agg.add(duration)
        if len(tracer.events) < tracer.max_events:
            event = {
                "type": "span",
                "name": self.name,
                "path": "/".join(path),
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start_s": round(self._t0 - tracer.epoch, 9),
                "duration_s": round(duration, 9),
            }
            if self.attrs:
                event["attrs"] = self.attrs
            tracer.events.append(event)
        else:
            tracer.dropped_events += 1
        return False


class Tracer:
    """Owns the span stack, per-path aggregates, and the raw event buffer."""

    __slots__ = (
        "epoch",
        "aggregates",
        "events",
        "max_events",
        "dropped_events",
        "_next_id",
        "_stack",
    )

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.max_events = max_events
        self.reset()

    def reset(self) -> None:
        self.epoch = perf_counter()
        self.aggregates: Dict[Tuple[str, ...], SpanAggregate] = {}
        self.events: List[dict] = []
        self.dropped_events = 0
        self._next_id = 1
        self._stack: List[Tuple[int, str]] = []

    def span(self, name: str, attrs: Optional[dict] = None) -> Span:
        return Span(self, name, attrs)

    def current_span_id(self) -> Optional[int]:
        return self._stack[-1][0] if self._stack else None

    def aggregate_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Aggregates keyed by ``/``-joined path (picklable, sorted)."""
        return {
            "/".join(path): self.aggregates[path].as_dict()
            for path in sorted(self.aggregates)
        }

    def merge_aggregates(self, snap: Dict[str, Dict[str, float]]) -> None:
        """Fold one :meth:`aggregate_snapshot` payload into this tracer."""
        for path_str, data in snap.items():
            path = tuple(path_str.split("/"))
            agg = self.aggregates.get(path)
            if agg is None:
                agg = SpanAggregate()
                self.aggregates[path] = agg
            agg.count += int(data["count"])
            agg.total_s += data["total_s"]
            agg.min_s = min(agg.min_s, data["min_s"])
            agg.max_s = max(agg.max_s, data["max_s"])
