"""Routing substrate: Dijkstra, SPTs, incremental recomputation, tables."""

from .paths import Path
from .spt import ShortestPathTree
from .dijkstra import (
    dijkstra_run_count,
    penalized_shortest_path_tree,
    reverse_shortest_path_tree,
    shortest_path,
    shortest_path_or_none,
    shortest_path_tree,
)
from .cache import SPTCache
from .incremental import incremental_distance, updated_tree
from .tables import RoutingTable
from .source_route import BYTES_PER_ENTRY, SourceRoute
from .linkstate import ConvergenceConfig, ConvergenceReport, LinkStateProtocol
from .flooding import FloodingReport, FloodingSimulator, Lsa

__all__ = [
    "Path",
    "ShortestPathTree",
    "SPTCache",
    "dijkstra_run_count",
    "penalized_shortest_path_tree",
    "reverse_shortest_path_tree",
    "shortest_path",
    "shortest_path_or_none",
    "shortest_path_tree",
    "incremental_distance",
    "updated_tree",
    "RoutingTable",
    "BYTES_PER_ENTRY",
    "SourceRoute",
    "ConvergenceConfig",
    "ConvergenceReport",
    "LinkStateProtocol",
    "FloodingReport",
    "FloodingSimulator",
    "Lsa",
]
