"""Scenario-scoped shortest-path-tree cache.

One failure scenario triggers the *same* ``G - E`` tree computation from
many call sites: the oracle classifies every (initiator, destination)
case against ``G - E2``, FCP recomputes from the same node with the same
carried failure set for every destination, and RTR phase 2 starts from
the initiator's pre-failure SPT — which is identical across *all*
scenarios of a sweep.  An :class:`SPTCache` keys full trees by
``(topology identity, topology version, root, orientation, exclusion
signature)`` so each distinct tree is computed once per process instead
of once per flow.

Exclusion signatures are compact integer bitmasks over the CSR view's
dense node indices and interned link ids — two exclusion sets collide on
a key iff they exclude exactly the same elements of this topology.

Correctness: a full tree answers every point query the early-terminating
Dijkstra would (same distances, same parent chains — parents of settled
nodes are frozen, and every node on a root→target chain settles before
the target), so serving cached full trees is result-identical, not just
approximately equal.  The §IV ``sp_computations`` accounting is a
*recorded* charge, counted by the protocols themselves; caching the
underlying tree never changes reported metrics.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Iterable, Optional, Set, Tuple

from .. import obs
from ..errors import NoPathError, RoutingError
from ..topology import Link, Topology
from .dijkstra import _dijkstra_csr
from .paths import Path
from .spt import ShortestPathTree

#: Default LRU capacity.  Trees are O(nodes) dicts; at catalog sizes
#: (≤ a few hundred nodes) this bounds the cache to tens of megabytes.
#: At 50k+ nodes each tree is megabytes — size deliberately via
#: :data:`SPT_CACHE_ENV` or the ``--spt-cache-entries`` CLI flag.
DEFAULT_MAX_ENTRIES = 1024

#: Environment override for the default capacity of caches the sweep
#: drivers build internally.  Environment-based so it reaches pool
#: workers (which inherit ``os.environ``) without widening every driver
#: signature.
SPT_CACHE_ENV = "REPRO_SPT_CACHE_ENTRIES"


def default_max_entries() -> int:
    """Capacity for caches constructed without an explicit ``max_entries``."""
    raw = os.environ.get(SPT_CACHE_ENV, "").strip()
    if not raw:
        return DEFAULT_MAX_ENTRIES
    try:
        value = int(raw)
    except ValueError:
        raise RoutingError(
            f"invalid {SPT_CACHE_ENV}={raw!r}; expected a positive integer"
        ) from None
    if value < 1:
        raise RoutingError(
            f"invalid {SPT_CACHE_ENV}={raw!r}; expected a positive integer"
        )
    return value


class SPTCache:
    """LRU cache of full shortest-path trees, shared across call sites.

    Returned trees are shared objects — callers must treat them as
    immutable (``updated_tree`` already copies before mutating).
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_entries")

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.max_entries = (
            default_max_entries() if max_entries is None else max_entries
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # key -> (topo, tree); the topology reference pins the id() used
        # in the key so it cannot be recycled while the entry lives.
        self._entries: "OrderedDict[tuple, Tuple[Topology, ShortestPathTree]]" = (
            OrderedDict()
        )

    def _tree(
        self,
        topo: Topology,
        root: int,
        toward_root: bool,
        excluded_nodes: Optional[Iterable[int]],
        excluded_links: Optional[Iterable[Link]],
    ) -> ShortestPathTree:
        csr = topo.csr()
        node_mask = csr.node_mask(excluded_nodes) if excluded_nodes else 0
        link_mask = csr.link_mask(excluded_links) if excluded_links else 0
        key = (id(topo), csr.version, toward_root, root, node_mask, link_mask)
        entry = self._entries.get(key)
        if entry is not None:
            if entry[0] is topo:
                self._entries.move_to_end(key)
                self.hits += 1
                obs.inc("spt_cache.hits")
                return entry[1]
            # Signature collision: the bitmask key matched but the pinned
            # topology is a different object (an ``id()`` recycled after
            # the original graph died while this entry outlived it, or a
            # forged entry).  Serving the stored tree would answer queries
            # about the wrong graph — count a miss, drop the stale entry,
            # and recompute.
            del self._entries[key]
            obs.inc("spt_cache.collisions")
        self.misses += 1
        obs.inc("spt_cache.misses")
        node_excl = csr.node_flags(excluded_nodes) if excluded_nodes else None
        link_excl = csr.link_flags(excluded_links) if excluded_links else None
        tree = _dijkstra_csr(topo, root, toward_root, node_excl, link_excl)
        self._entries[key] = (topo, tree)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.inc("spt_cache.evictions")
            # Canonical eviction-pressure counter: sustained growth on a
            # large sweep means the pool is thrashing and ``max_entries``
            # should be raised (``--spt-cache-entries`` at the CLI).
            obs.inc("routing.sptcache.evictions")
        return tree

    # ------------------------------------------------------------------
    # Public queries — mirror the :mod:`repro.routing.dijkstra` wrappers
    # ------------------------------------------------------------------

    def forward_tree(
        self,
        topo: Topology,
        source: int,
        excluded_nodes: Optional[Set[int]] = None,
        excluded_links: Optional[Set[Link]] = None,
    ) -> ShortestPathTree:
        """Cached equivalent of :func:`~repro.routing.shortest_path_tree`."""
        return self._tree(topo, source, False, excluded_nodes, excluded_links)

    def reverse_tree(
        self,
        topo: Topology,
        destination: int,
        excluded_nodes: Optional[Set[int]] = None,
        excluded_links: Optional[Set[Link]] = None,
    ) -> ShortestPathTree:
        """Cached equivalent of :func:`~repro.routing.reverse_shortest_path_tree`."""
        return self._tree(topo, destination, True, excluded_nodes, excluded_links)

    def shortest_path(
        self,
        topo: Topology,
        source: int,
        destination: int,
        excluded_nodes: Optional[Set[int]] = None,
        excluded_links: Optional[Set[Link]] = None,
    ) -> Path:
        """Cached equivalent of :func:`~repro.routing.shortest_path`."""
        if source == destination:
            if excluded_nodes and source in excluded_nodes:
                raise NoPathError(source, destination)
            return Path((source,), 0.0)
        tree = self.forward_tree(topo, source, excluded_nodes, excluded_links)
        if not tree.reaches(destination):
            raise NoPathError(source, destination)
        return tree.path_from(destination)

    def shortest_path_or_none(
        self,
        topo: Topology,
        source: int,
        destination: int,
        excluded_nodes: Optional[Set[int]] = None,
        excluded_links: Optional[Set[Link]] = None,
    ) -> Optional[Path]:
        """Cached equivalent of :func:`~repro.routing.shortest_path_or_none`."""
        try:
            return self.shortest_path(
                topo, source, destination, excluded_nodes, excluded_links
            )
        except NoPathError:
            return None

    def seed_tree(
        self,
        topo: Topology,
        root: int,
        tree: ShortestPathTree,
        toward_root: bool = True,
    ) -> None:
        """Register an externally computed *exclusion-free* tree.

        Batched warmers (:meth:`repro.routing.tables.RoutingTable.warm`)
        compute many trees in one kernel call; seeding them here lets
        every later cache probe hit instead of recomputing.  The tree
        must be exactly what :meth:`forward_tree` / :meth:`reverse_tree`
        would have produced with no exclusions — the batched kernels
        guarantee that.  Counts neither a hit nor a miss.
        """
        csr = topo.csr()
        key = (id(topo), csr.version, toward_root, root, 0, 0)
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = (topo, tree)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.inc("spt_cache.evictions")
            obs.inc("routing.sptcache.evictions")

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/size counters for observability and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }

    def hit_rate(self) -> float:
        """Fraction of probes served from the cache (0.0 before any probe)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SPTCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
