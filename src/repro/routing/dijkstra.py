"""Dijkstra shortest paths with exclusion sets, on the CSR kernel.

The recovery algorithms never mutate the topology: they route on
``G - failed`` by passing exclusion sets.  This keeps one immutable
topology shared by thousands of test cases.

The inner loop runs on the flat-array :class:`~repro.topology.csr.CSRView`
— dense integer node indices, parallel cost arrays, and per-call 0/1
exclusion flag arrays — instead of dict lookups, ``Link.of`` construction,
and frozenset probes.  Results are bit-identical to the dict-based
reference implementation (asserted by the golden equivalence tests):
nodes are interned in sorted id order so index comparisons reproduce the
deterministic smaller-parent-id tie-break, and arcs keep the adjacency
dict's iteration order so every tolerance-window float outcome matches.

Tie-breaking is deterministic (prefer the smaller parent id), so routing
tables and recovery paths are reproducible across runs, and hop-by-hop
forwarding built from per-destination reverse trees is loop-free even among
equal-cost alternatives.

Large graphs dispatch to the vectorized numpy kernels in
:mod:`repro.routing.kernels` (``REPRO_KERNEL`` selects the backend; the
default ``auto`` keeps small graphs and targeted queries here).  The numpy
kernels are bit-identical to this reference on the graphs they accept.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import FrozenSet, Iterable, Optional, Set

from .. import obs
from ..errors import NoPathError, UnknownNodeError
from ..topology import Link, Topology
from . import kernels
from .paths import Path
from .spt import ShortestPathTree

_EMPTY_NODES: FrozenSet[int] = frozenset()
_EMPTY_LINKS: FrozenSet[Link] = frozenset()

_INF = float("inf")

#: Total CSR Dijkstra executions in this process — cheap observability for
#: the benchmark harness (``BENCH_core.json`` records per-bench deltas).
_RUN_COUNT = 0


def dijkstra_run_count() -> int:
    """Number of Dijkstra kernel runs performed by this process so far."""
    return _RUN_COUNT


def _dijkstra_csr(
    topo: Topology,
    root: int,
    toward_root: bool,
    node_excl: Optional[bytearray],
    link_excl: Optional[bytearray],
    target: Optional[int] = None,
) -> ShortestPathTree:
    """Core Dijkstra on the CSR view with prebuilt exclusion flags.

    ``toward_root=False`` relaxes edges in direction root -> neighbor using
    ``cost(u, v)``; ``toward_root=True`` computes node -> root distances by
    relaxing with ``cost(v, u)`` (the cost of *entering* the settled node).
    Stops early when ``target`` is settled.
    """
    global _RUN_COUNT
    _RUN_COUNT += 1
    backend, np_view = kernels.select_backend(topo.csr(), target)
    if backend == "numpy":
        kernel = lambda: kernels.dijkstra_numpy(  # noqa: E731
            topo, np_view, root, toward_root, node_excl, link_excl
        )
    else:
        kernel = lambda: _dijkstra_csr_kernel(  # noqa: E731
            topo, root, toward_root, node_excl, link_excl, target
        )
    if not obs.enabled():
        return kernel()
    with obs.span("dijkstra.csr"):
        obs.inc("dijkstra.runs")
        return kernel()


def _dijkstra_csr_kernel(
    topo: Topology,
    root: int,
    toward_root: bool,
    node_excl: Optional[bytearray],
    link_excl: Optional[bytearray],
    target: Optional[int] = None,
) -> ShortestPathTree:
    csr = topo.csr()
    pos = csr.pos
    root_index = pos.get(root)
    if root_index is None:
        raise UnknownNodeError(root)
    target_index = pos.get(target, -1) if target is not None else -1

    indptr = csr.indptr
    nbr = csr.nbr
    weight = csr.wrev if toward_root else csr.wfwd
    lid = csr.lid

    n = csr.n
    dist = [_INF] * n
    parent = [-1] * n
    settled = bytearray(n)
    dist[root_index] = 0.0
    heap = [(0.0, root_index)]
    while heap:
        d, u = heappop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if u == target_index:
            break
        for i in range(indptr[u], indptr[u + 1]):
            v = nbr[i]
            if settled[v]:
                continue
            if node_excl is not None and node_excl[v]:
                continue
            if link_excl is not None and link_excl[lid[i]]:
                continue
            candidate = d + weight[i]
            known = dist[v]
            if candidate < known - 1e-12:
                dist[v] = candidate
                parent[v] = u
                heappush(heap, (candidate, v))
            elif candidate <= known + 1e-12 and u < parent[v]:
                # Deterministic tie-break: keep the smaller parent id
                # (index order equals id order by construction).
                parent[v] = u
    ids = csr.ids
    dist_map = {}
    parent_map = {}
    for i in range(n):
        d = dist[i]
        if d != _INF:
            dist_map[ids[i]] = d
            p = parent[i]
            parent_map[ids[i]] = ids[p] if p >= 0 else None
    return ShortestPathTree(root, dist_map, parent_map, toward_root)


def _dijkstra(
    topo: Topology,
    root: int,
    toward_root: bool,
    excluded_nodes: Iterable[int],
    excluded_links: Iterable[Link],
    target: Optional[int] = None,
) -> ShortestPathTree:
    """Core Dijkstra with set-typed exclusions (compatibility shim)."""
    csr = topo.csr()
    node_excl = csr.node_flags(excluded_nodes) if excluded_nodes else None
    link_excl = csr.link_flags(excluded_links) if excluded_links else None
    return _dijkstra_csr(topo, root, toward_root, node_excl, link_excl, target)


def shortest_path_tree(
    topo: Topology,
    source: int,
    excluded_nodes: Optional[Set[int]] = None,
    excluded_links: Optional[Set[Link]] = None,
) -> ShortestPathTree:
    """Forward SPT: distances ``source -> node`` for every reachable node."""
    return _dijkstra(
        topo,
        source,
        toward_root=False,
        excluded_nodes=excluded_nodes or _EMPTY_NODES,
        excluded_links=excluded_links or _EMPTY_LINKS,
    )


def reverse_shortest_path_tree(
    topo: Topology,
    destination: int,
    excluded_nodes: Optional[Set[int]] = None,
    excluded_links: Optional[Set[Link]] = None,
) -> ShortestPathTree:
    """Reverse SPT: ``node -> destination`` distances and next hops.

    ``tree.next_hop(v)`` is ``v``'s routing-table next hop toward
    ``destination`` — following next hops from any node reproduces that
    node's shortest path, so paths built this way are consistent and
    loop-free.
    """
    return _dijkstra(
        topo,
        destination,
        toward_root=True,
        excluded_nodes=excluded_nodes or _EMPTY_NODES,
        excluded_links=excluded_links or _EMPTY_LINKS,
    )


def _penalized_csr_kernel(
    topo: Topology,
    root: int,
    link_units,
    quant: int,
    link_excl: Optional[bytearray],
    target: Optional[int] = None,
) -> ShortestPathTree:
    """Reference heap Dijkstra under the load-penalized metric.

    Identical to :func:`_dijkstra_csr_kernel` (forward direction) with
    every arc weight substituted by ``wfwd * (quant + units[lid])`` —
    the integer-quantized congestion multiplier of
    :mod:`repro.te.penalty`.  Distances are in penalized units.
    """
    csr = topo.csr()
    root_index = csr.pos.get(root)
    if root_index is None:
        raise UnknownNodeError(root)
    target_index = csr.pos.get(target, -1) if target is not None else -1

    indptr = csr.indptr
    nbr = csr.nbr
    weight = csr.wfwd
    lid = csr.lid

    n = csr.n
    dist = [_INF] * n
    parent = [-1] * n
    settled = bytearray(n)
    dist[root_index] = 0.0
    heap = [(0.0, root_index)]
    while heap:
        d, u = heappop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if u == target_index:
            break
        for i in range(indptr[u], indptr[u + 1]):
            v = nbr[i]
            if settled[v]:
                continue
            if link_excl is not None and link_excl[lid[i]]:
                continue
            candidate = d + weight[i] * (quant + link_units[lid[i]])
            known = dist[v]
            if candidate < known - 1e-12:
                dist[v] = candidate
                parent[v] = u
                heappush(heap, (candidate, v))
            elif candidate <= known + 1e-12 and u < parent[v]:
                parent[v] = u
    ids = csr.ids
    dist_map = {}
    parent_map = {}
    for i in range(n):
        d = dist[i]
        if d != _INF:
            dist_map[ids[i]] = d
            p = parent[i]
            parent_map[ids[i]] = ids[p] if p >= 0 else None
    return ShortestPathTree(root, dist_map, parent_map, toward_root=False)


def penalized_shortest_path_tree(
    topo: Topology,
    source: int,
    link_units,
    quant: int,
    excluded_links: Optional[Set[Link]] = None,
    target: Optional[int] = None,
) -> ShortestPathTree:
    """Forward SPT minimizing Σ ``cost · (quant + units(link))``.

    ``link_units`` is a lid-indexed sequence of non-negative integer
    penalty units (see :class:`repro.te.penalty.LinkPenalty`); ``quant``
    is the integer quantization base, so zero units everywhere yields the
    base-metric SPT with all distances scaled by ``quant``.  The backend
    follows ``REPRO_KERNEL`` (the numpy kernel is bit-identical to the
    reference on exact graphs); a ``target`` early-exit always stays on
    the reference kernel, like the base dispatcher.  Tree distances are
    in penalized units — re-cost paths with
    :func:`repro.te.penalty.recost_path` before comparing against
    base-metric optima.
    """
    global _RUN_COUNT
    _RUN_COUNT += 1
    csr = topo.csr()
    link_excl = csr.link_flags(excluded_links) if excluded_links else None
    max_units = int(max(link_units, default=0))
    if target is not None:
        backend, np_view = "python", None
    else:
        backend, np_view = kernels.penalized_backend(csr, quant, max_units)
    if backend == "numpy":
        kernel = lambda: kernels.penalized_numpy(  # noqa: E731
            topo, np_view, source, link_units, quant, None, link_excl
        )
    else:
        kernel = lambda: _penalized_csr_kernel(  # noqa: E731
            topo, source, link_units, quant, link_excl, target
        )
    if not obs.enabled():
        return kernel()
    with obs.span("dijkstra.penalized"):
        obs.inc("dijkstra.runs")
        return kernel()


def shortest_path(
    topo: Topology,
    source: int,
    destination: int,
    excluded_nodes: Optional[Set[int]] = None,
    excluded_links: Optional[Set[Link]] = None,
) -> Path:
    """The shortest ``source -> destination`` path, or :class:`NoPathError`.

    Uses early-terminating Dijkstra from the source.
    """
    if source == destination:
        # The zero-hop path exists only if the node itself is usable: an
        # excluded source/destination can reach nothing, not even itself
        # (consistency with the exclusion contract of the non-trivial case).
        if excluded_nodes and source in excluded_nodes:
            raise NoPathError(source, destination)
        return Path((source,), 0.0)
    tree = _dijkstra(
        topo,
        source,
        toward_root=False,
        excluded_nodes=excluded_nodes or _EMPTY_NODES,
        excluded_links=excluded_links or _EMPTY_LINKS,
        target=destination,
    )
    if not tree.reaches(destination):
        raise NoPathError(source, destination)
    return tree.path_from(destination)


def shortest_path_or_none(
    topo: Topology,
    source: int,
    destination: int,
    excluded_nodes: Optional[Set[int]] = None,
    excluded_links: Optional[Set[Link]] = None,
) -> Optional[Path]:
    """Like :func:`shortest_path` but returns ``None`` when disconnected."""
    try:
        return shortest_path(topo, source, destination, excluded_nodes, excluded_links)
    except NoPathError:
        return None
