"""Dijkstra shortest paths with exclusion sets.

The recovery algorithms never mutate the topology: they route on
``G - failed`` by passing exclusion sets.  This keeps one immutable
topology shared by thousands of test cases.

Tie-breaking is deterministic (prefer the smaller parent id), so routing
tables and recovery paths are reproducible across runs, and hop-by-hop
forwarding built from per-destination reverse trees is loop-free even among
equal-cost alternatives.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Optional, Set

from ..errors import NoPathError
from ..topology import Link, Topology
from .paths import Path
from .spt import ShortestPathTree

_EMPTY_NODES: FrozenSet[int] = frozenset()
_EMPTY_LINKS: FrozenSet[Link] = frozenset()


def _dijkstra(
    topo: Topology,
    root: int,
    toward_root: bool,
    excluded_nodes: FrozenSet[int],
    excluded_links: FrozenSet[Link],
    target: Optional[int] = None,
) -> ShortestPathTree:
    """Core Dijkstra.

    ``toward_root=False`` relaxes edges in direction root -> neighbor using
    ``cost(u, v)``; ``toward_root=True`` computes node -> root distances by
    relaxing with ``cost(v, u)`` (the cost of *entering* the settled node).
    Stops early when ``target`` is settled.
    """
    dist: Dict[int, float] = {root: 0.0}
    parent: Dict[int, Optional[int]] = {root: None}
    settled: Set[int] = set()
    heap = [(0.0, root)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            break
        for v in topo.neighbors(u):
            if v in settled or v in excluded_nodes:
                continue
            if excluded_links and Link.of(u, v) in excluded_links:
                continue
            step = topo.cost(v, u) if toward_root else topo.cost(u, v)
            candidate = d + step
            known = dist.get(v)
            if known is None or candidate < known - 1e-12:
                dist[v] = candidate
                parent[v] = u
                heapq.heappush(heap, (candidate, v))
            elif known is not None and abs(candidate - known) <= 1e-12:
                # Deterministic tie-break: keep the smaller parent id.
                if u < parent[v]:  # type: ignore[operator]
                    parent[v] = u
    return ShortestPathTree(root, dist, parent, toward_root)


def shortest_path_tree(
    topo: Topology,
    source: int,
    excluded_nodes: Optional[Set[int]] = None,
    excluded_links: Optional[Set[Link]] = None,
) -> ShortestPathTree:
    """Forward SPT: distances ``source -> node`` for every reachable node."""
    return _dijkstra(
        topo,
        source,
        toward_root=False,
        excluded_nodes=frozenset(excluded_nodes) if excluded_nodes else _EMPTY_NODES,
        excluded_links=frozenset(excluded_links) if excluded_links else _EMPTY_LINKS,
    )


def reverse_shortest_path_tree(
    topo: Topology,
    destination: int,
    excluded_nodes: Optional[Set[int]] = None,
    excluded_links: Optional[Set[Link]] = None,
) -> ShortestPathTree:
    """Reverse SPT: ``node -> destination`` distances and next hops.

    ``tree.next_hop(v)`` is ``v``'s routing-table next hop toward
    ``destination`` — following next hops from any node reproduces that
    node's shortest path, so paths built this way are consistent and
    loop-free.
    """
    return _dijkstra(
        topo,
        destination,
        toward_root=True,
        excluded_nodes=frozenset(excluded_nodes) if excluded_nodes else _EMPTY_NODES,
        excluded_links=frozenset(excluded_links) if excluded_links else _EMPTY_LINKS,
    )


def shortest_path(
    topo: Topology,
    source: int,
    destination: int,
    excluded_nodes: Optional[Set[int]] = None,
    excluded_links: Optional[Set[Link]] = None,
) -> Path:
    """The shortest ``source -> destination`` path, or :class:`NoPathError`.

    Uses early-terminating Dijkstra from the source.
    """
    if source == destination:
        return Path((source,), 0.0)
    tree = _dijkstra(
        topo,
        source,
        toward_root=False,
        excluded_nodes=frozenset(excluded_nodes) if excluded_nodes else _EMPTY_NODES,
        excluded_links=frozenset(excluded_links) if excluded_links else _EMPTY_LINKS,
        target=destination,
    )
    if not tree.reaches(destination):
        raise NoPathError(source, destination)
    return tree.path_from(destination)


def shortest_path_or_none(
    topo: Topology,
    source: int,
    destination: int,
    excluded_nodes: Optional[Set[int]] = None,
    excluded_links: Optional[Set[Link]] = None,
) -> Optional[Path]:
    """Like :func:`shortest_path` but returns ``None`` when disconnected."""
    try:
        return shortest_path(topo, source, destination, excluded_nodes, excluded_links)
    except NoPathError:
        return None
