"""Packet-level LSA flooding — the IGP convergence process, simulated.

:mod:`repro.routing.linkstate` computes the convergence *timeline*
analytically; this module actually runs it: link-state advertisements are
individual messages moving over surviving links through the event queue,
with sequence numbers, duplicate suppression, and per-router SPF runs.
It exists for three reasons:

* it validates the analytic model (with a constant per-hop delay the two
  must agree exactly — asserted by tests),
* it counts *messages*, which the analytic model cannot (flooding cost is
  the classic argument for hold-down timers),
* it lets examples show the control plane and RTR's data-plane recovery
  on the same clock.

Model: each detector originates one LSA (origin id + sequence number)
after ``detection_delay + lsa_hold_down``; a router receiving a new LSA
stores it and re-floods to every live neighbor except the sender;
duplicates are counted and dropped.  A router is converged ``spf_time``
after the last new LSA it will ever receive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Optional, Set

from ..simulator.delays import DelayModel, PaperDelayModel
from ..simulator.events import EventQueue
from ..topology import Link, Topology
from .linkstate import ConvergenceConfig


class Lsa(NamedTuple):
    """One link-state advertisement instance."""

    origin: int
    sequence: int


@dataclass
class FloodingReport:
    """Everything the packetized flooding run produced."""

    #: Per-router instant its routing table is valid again.
    router_converged_at: Dict[int, float]
    #: When the last router converged.
    network_converged_at: float
    #: Total LSA transmissions (each hop of each copy).
    messages_sent: int
    #: Transmissions discarded as duplicates at the receiver.
    duplicates_received: int
    #: Per-router arrival time of each origin's LSA.
    arrival_times: Dict[int, Dict[int, float]] = field(default_factory=dict)


class FloodingSimulator:
    """Discrete-event LSA flooding over the surviving topology."""

    def __init__(
        self,
        topo: Topology,
        failed_nodes: Set[int],
        failed_links: Set[Link],
        config: Optional[ConvergenceConfig] = None,
        delay_model: Optional[DelayModel] = None,
    ) -> None:
        self.topo = topo
        self.failed_nodes = set(failed_nodes)
        self.failed_links = set(failed_links)
        self.config = config or ConvergenceConfig()
        # The analytic model charges flood_hop_delay per hop; default to a
        # delay model reproducing exactly that so the two agree.
        self.delay_model = delay_model or PaperDelayModel(
            router_delay=0.0, propagation=self.config.flood_hop_delay
        )
        self.queue = EventQueue()
        self._live_nodes = {
            n for n in topo.nodes() if n not in self.failed_nodes
        }
        # Router state.
        self._seen: Dict[int, Set[Lsa]] = {n: set() for n in self._live_nodes}
        self._arrivals: Dict[int, Dict[int, float]] = {
            n: {} for n in self._live_nodes
        }
        self.messages_sent = 0
        self.duplicates_received = 0

    # ------------------------------------------------------------------

    def detectors(self) -> Set[int]:
        """Live routers adjacent to a failed element."""
        found: Set[int] = set()
        for link in self.failed_links:
            for end in (link.u, link.v):
                if end in self._live_nodes:
                    found.add(end)
        for node in self.failed_nodes:
            if not self.topo.has_node(node):
                continue
            for nb in self.topo.neighbors(node):
                if nb in self._live_nodes:
                    found.add(nb)
        return found

    def _usable(self, a: int, b: int) -> bool:
        return (
            b in self._live_nodes
            and Link.of(a, b) not in self.failed_links
        )

    def _transmit(self, sender: int, receiver: int, lsa: Lsa) -> None:
        delay = self.delay_model.hop_delay(self.topo, Link.of(sender, receiver))
        self.messages_sent += 1
        self.queue.schedule_in(delay, lambda: self._receive(receiver, sender, lsa))

    def _receive(self, router: int, sender: int, lsa: Lsa) -> None:
        if lsa in self._seen[router]:
            self.duplicates_received += 1
            return
        self._seen[router].add(lsa)
        self._arrivals[router][lsa.origin] = self.queue.now
        for nb in self.topo.neighbors(router):
            if nb == sender or not self._usable(router, nb):
                continue
            self._transmit(router, nb, lsa)

    def _originate(self, router: int, lsa: Lsa) -> None:
        self._seen[router].add(lsa)
        self._arrivals[router][lsa.origin] = self.queue.now
        for nb in self.topo.neighbors(router):
            if self._usable(router, nb):
                self._transmit(router, nb, lsa)

    # ------------------------------------------------------------------

    def run(self) -> FloodingReport:
        """Flood every detector's LSA and compute convergence times."""
        origin_time = self.config.detection_delay + self.config.lsa_hold_down
        for i, detector in enumerate(sorted(self.detectors())):
            lsa = Lsa(origin=detector, sequence=1)
            self.queue.schedule(
                origin_time, lambda d=detector, l=lsa: self._originate(d, l)
            )
        self.queue.run()

        converged: Dict[int, float] = {}
        for router in self._live_nodes:
            arrivals = self._arrivals[router]
            last = max(arrivals.values()) if arrivals else 0.0
            converged[router] = last + self.config.spf_time
        network = max(converged.values()) if converged else 0.0
        return FloodingReport(
            router_converged_at=converged,
            network_converged_at=network,
            messages_sent=self.messages_sent,
            duplicates_received=self.duplicates_received,
            arrival_times=self._arrivals,
        )
