"""Incremental shortest-path-tree recomputation for failures.

§III-D of the paper: *"RTR adopts incremental recomputation [Narvaez et
al.] to calculate the shortest path from the recovery initiator to the
destination, which can be achieved within a few milliseconds even for
graphs with a thousand nodes."*

This module implements the deletion case of the Narvaez-style dynamic SPT
algorithm: given an SPT computed before the failure and a batch of removed
links/nodes, it updates only the affected subtree instead of recomputing
from scratch.  The result is identical to a fresh Dijkstra on
``G - removed`` (asserted by property-based tests), which is exactly the
guarantee RTR's phase 2 relies on.

Only deletions can occur during a failure event, and deleting a *non-tree*
link never changes any distance — so the affected set is precisely the
subtree hanging below the removed tree edges and removed nodes.

Like the core Dijkstra, the relax loops run on the flat-array CSR view:
removed links become a 0/1 flag array over interned link ids, removed
nodes a flag array over dense node indices, and neighbor iteration walks
the parallel arc arrays instead of re-deriving ``Link`` objects.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set

from .. import obs
from ..topology import Link, Topology
from . import kernels
from .spt import ShortestPathTree


def _children_map(tree: ShortestPathTree) -> Dict[int, List[int]]:
    children: Dict[int, List[int]] = {}
    for node, parent in tree.parent.items():
        if parent is not None:
            children.setdefault(parent, []).append(node)
    return children


def updated_tree(
    topo: Topology,
    tree: ShortestPathTree,
    removed_links: Iterable[Link] = (),
    removed_nodes: Iterable[int] = (),
) -> ShortestPathTree:
    """A new SPT equal to Dijkstra on ``G - removed``, computed incrementally.

    ``tree`` must be a valid SPT of ``topo`` (forward or reverse); it is not
    modified.  Removed nodes lose all incident links and are dropped from
    the result.  Affected nodes that cannot be reattached become
    unreachable (absent from ``dist``).
    """
    if not obs.enabled():
        return _updated_tree_kernel(topo, tree, removed_links, removed_nodes)
    with obs.span("spt.incremental"):
        obs.inc("spt.incremental_updates")
        return _updated_tree_kernel(topo, tree, removed_links, removed_nodes)


def _updated_tree_kernel(
    topo: Topology,
    tree: ShortestPathTree,
    removed_links: Iterable[Link] = (),
    removed_nodes: Iterable[int] = (),
) -> ShortestPathTree:
    csr = topo.csr()
    pos, ids = csr.pos, csr.ids
    indptr, nbr, lid = csr.indptr, csr.nbr, csr.lid
    wfwd, wrev = csr.wfwd, csr.wrev
    pair_lid = csr.pair_lid

    removed_node_set: Set[int] = set(removed_nodes)
    removed_link_flags = csr.link_flags(removed_links)
    node_removed = bytearray(csr.n)
    for node in removed_node_set:
        i = pos.get(node)
        if i is None:
            continue
        node_removed[i] = 1
        for arc in range(indptr[i], indptr[i + 1]):
            removed_link_flags[lid[arc]] = 1

    new = tree.copy()
    if new.root in removed_node_set:
        # The root itself failed: nothing is reachable.
        return ShortestPathTree(new.root, {}, {}, new.toward_root)

    # 1. Directly affected: nodes whose tree edge to the parent was removed.
    directly_affected = set(n for n in removed_node_set if n in new.dist)
    for node, parent in new.parent.items():
        if parent is None:
            continue
        if removed_link_flags[pair_lid[(node, parent)]]:
            directly_affected.add(node)

    if not directly_affected:
        return new  # only non-tree links removed: no distance can change

    # 2. The full affected set is the union of their subtrees.
    children = _children_map(new)
    affected: Set[int] = set()
    stack = list(directly_affected)
    while stack:
        node = stack.pop()
        if node in affected:
            continue
        affected.add(node)
        stack.extend(children.get(node, ()))

    for node in affected:
        del new.dist[node]
        del new.parent[node]
    affected -= removed_node_set  # failed nodes are gone for good

    # 3. Reattach via a Dijkstra seeded from the intact boundary.  Large
    # affected regions route through the masked-fixpoint numpy reattach
    # (bit-identical, see repro.routing.kernels); localized failures stay
    # on the boundary-seeded heap below, which only touches the region.
    backend, np_view = kernels.incremental_backend(csr, len(affected))
    if backend == "numpy":
        return kernels.reattach_numpy(
            topo, np_view, new, affected, node_removed, removed_link_flags
        )
    toward_root = new.toward_root
    heap: List[tuple] = []
    best: Dict[int, float] = {}
    best_parent: Dict[int, int] = {}
    intact_dist = new.dist

    def relax(node: int, via: int, candidate: float) -> None:
        known = best.get(node)
        if known is None or candidate < known - 1e-12:
            best[node] = candidate
            best_parent[node] = via
            heapq.heappush(heap, (candidate, node))
        elif abs(candidate - known) <= 1e-12 and via < best_parent[node]:
            best_parent[node] = via

    for node in affected:
        u = pos[node]
        for arc in range(indptr[u], indptr[u + 1]):
            v = nbr[arc]
            if node_removed[v]:
                continue
            via = ids[v]
            if via in affected:
                continue
            if removed_link_flags[lid[arc]]:
                continue
            base = intact_dist.get(via)
            if base is None:
                continue  # neighbor was already unreachable pre-failure
            # Arc node -> via: entering cost toward the root is
            # cost(node, via) = wfwd; away from it cost(via, node) = wrev.
            step = wfwd[arc] if toward_root else wrev[arc]
            relax(node, via, base + step)

    settled: Set[int] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled or node not in affected:
            continue
        settled.add(node)
        new.dist[node] = d
        new.parent[node] = best_parent[node]
        u = pos[node]
        for arc in range(indptr[u], indptr[u + 1]):
            v = nbr[arc]
            if node_removed[v]:
                continue
            neighbor = ids[v]
            if neighbor not in affected or neighbor in settled:
                continue
            if removed_link_flags[lid[arc]]:
                continue
            # Relaxing neighbor via node: entering cost of the neighbor is
            # cost(neighbor, node) = wrev of this arc toward the root,
            # cost(node, neighbor) = wfwd away from it.
            step = wrev[arc] if toward_root else wfwd[arc]
            relax(neighbor, node, d + step)
    return new


def incremental_distance(
    topo: Topology,
    tree: ShortestPathTree,
    node: int,
    removed_links: Iterable[Link] = (),
    removed_nodes: Iterable[int] = (),
) -> Optional[float]:
    """Post-failure distance between ``node`` and the root, or ``None``."""
    new = updated_tree(topo, tree, removed_links, removed_nodes)
    return new.dist.get(node)
