"""Vectorized (numpy) shortest-path kernels and backend selection.

The heap-based pure-Python kernel in :mod:`repro.routing.dijkstra` is the
*reference*: every golden byte in the repo is pinned to its output.  This
module adds numpy kernels that reproduce that output **bit for bit** on
the graphs where that equivalence is provable, plus the policy that
decides which backend a given computation uses.

Backend selection (``REPRO_KERNEL`` environment variable):

* ``auto`` (default) — numpy when it is importable, the graph has at
  least :data:`AUTO_MIN_NODES` nodes, the costs are *exact* (strictly
  positive integers, see :class:`~repro.topology.npcsr.NumpyCSR`), and
  the query has no early-termination target; pure Python otherwise.
* ``python`` — always the reference kernel.
* ``numpy`` — force numpy for every *eligible* computation (small graphs
  included).  Ineligible computations — non-integral costs, targeted
  early-exit queries — always stay on the reference kernel, because the
  vectorized kernels cannot reproduce them exactly.  Raises
  :class:`~repro.errors.RoutingError` when numpy is not importable.

Why bit-identical is achievable: with strictly positive integer costs,
every distance is an exactly-representable integer, so the reference
kernel's ``1e-12`` tolerance window collapses to exact comparisons, its
final distances equal the Bellman–Ford fixpoint, and its deterministic
tie-break yields ``parent[v] = min{u : dist[u] + w(u, v) == dist[v]}``.
Both quantities are computed here with whole-array sweeps: distances by
iterating a gather + ``np.minimum.reduceat`` relaxation to fixpoint
(or an O(arcs) frontier BFS when every cost is 1), parents by a single
arg-min pass over the converged distances.  DESIGN.md §12 spells out the
argument; the golden and property tests enforce it.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import RoutingError, UnknownNodeError
from ..topology.npcsr import NumpyCSR, numpy_or_none, numpy_view
from .spt import ShortestPathTree

#: Environment variable selecting the kernel backend.
KERNEL_ENV = "REPRO_KERNEL"

#: ``auto`` only picks numpy at or above this node count — below it the
#: per-call numpy overhead rivals the whole pure-Python run.
AUTO_MIN_NODES = 1024

#: ``auto`` only routes an incremental-SPT reattach through numpy when the
#: affected subtree has at least this many nodes *and* is at least this
#: fraction of the graph — each numpy sweep touches every arc, so small
#: localized failures are better served by the boundary-seeded heap.
AUTO_MIN_AFFECTED = 1024
AUTO_MIN_AFFECTED_FRAC = 0.125

_MODES = ("auto", "python", "numpy")

_INF = float("inf")

#: Vectorized kernel executions in this process (single-source trees count
#: 1, batched calls count one per root) — lets tests assert the numpy path
#: actually ran, symmetric with ``dijkstra.dijkstra_run_count``.
_NUMPY_RUNS = 0


def numpy_run_count() -> int:
    """Number of numpy kernel runs (per-root) performed by this process."""
    return _NUMPY_RUNS


def env_backend_mode(env_var: str, modes: Sequence[str], error: type) -> str:
    """Validated backend mode from ``env_var`` (first of ``modes`` when unset).

    Shared by ``REPRO_KERNEL`` (routing kernels) and ``REPRO_WALK`` (the
    batched walk plane) so both dispatch variables parse identically.
    """
    mode = os.environ.get(env_var, modes[0]).strip().lower() or modes[0]
    if mode not in modes:
        raise error(
            f"invalid {env_var}={mode!r}; expected one of {', '.join(modes)}"
        )
    return mode


def kernel_mode() -> str:
    """The validated ``REPRO_KERNEL`` setting (``auto`` when unset)."""
    return env_backend_mode(KERNEL_ENV, _MODES, RoutingError)


def numpy_available() -> bool:
    """Whether the numpy backend can be used at all in this process."""
    return numpy_or_none() is not None


def _eligible_view(csr) -> Optional[NumpyCSR]:
    """The numpy mirror when the graph's costs admit exact vector kernels."""
    view = numpy_view(csr)
    if view is None or not view.exact:
        return None
    return view


def select_backend(csr, target: Optional[int] = None) -> Tuple[str, Optional[NumpyCSR]]:
    """Resolve the backend for one single-source computation.

    Returns ``("python", None)`` or ``("numpy", mirror)``.  ``target`` is
    the early-exit destination, which always forces the reference kernel
    (a partially settled tree has no whole-array equivalent).
    """
    mode = kernel_mode()
    if mode == "python":
        return "python", None
    if mode == "numpy" and not numpy_available():
        raise RoutingError(
            f"{KERNEL_ENV}=numpy but numpy is not importable; "
            "install the [fast] extra or unset the variable"
        )
    if target is not None:
        return "python", None
    if mode == "auto" and (not numpy_available() or csr.n < AUTO_MIN_NODES):
        return "python", None
    view = _eligible_view(csr)
    if view is None:
        return "python", None
    return "numpy", view


def incremental_backend(csr, affected_count: int) -> Tuple[str, Optional[NumpyCSR]]:
    """Backend for an incremental-SPT reattach over ``affected_count`` nodes."""
    mode = kernel_mode()
    if mode == "python":
        return "python", None
    if mode == "numpy" and not numpy_available():
        raise RoutingError(
            f"{KERNEL_ENV}=numpy but numpy is not importable; "
            "install the [fast] extra or unset the variable"
        )
    if mode == "auto":
        if (
            not numpy_available()
            or affected_count < AUTO_MIN_AFFECTED
            or affected_count < csr.n * AUTO_MIN_AFFECTED_FRAC
        ):
            return "python", None
    view = _eligible_view(csr)
    if view is None:
        return "python", None
    return "numpy", view


# ----------------------------------------------------------------------
# Array-level primitives
# ----------------------------------------------------------------------


def _gather_weights(view: NumpyCSR, toward_root: bool):
    """Per-arc entering cost at the slice owner's side (gather direction).

    At node ``v``'s slice, the arc to neighbor ``u`` stores
    ``wfwd = cost(v, u)`` and ``wrev = cost(u, v)``.  A forward tree
    relaxes ``dist[v] = dist[u] + cost(u, v)`` (gather ``wrev``); a
    reverse tree relaxes ``dist[v] = cost(v, u) + dist[u]`` (gather
    ``wfwd``).
    """
    return view.wfwd if toward_root else view.wrev


def _gather_usable(view: NumpyCSR, node_excl, link_excl):
    """Boolean per-arc mask for the gather direction, or ``None``.

    An arc at ``v``'s slice is unusable when ``v`` itself is excluded
    (nothing may *enter* an excluded node — matching the reference
    kernel, which checks only the relaxation target) or when its link is
    excluded.  An excluded *source* needs no mask: it keeps an infinite
    distance, except the root, whose out-arcs must relax exactly like the
    reference kernel relaxes them.
    """
    np = numpy_or_none()
    usable = None
    if link_excl is not None:
        flags = np.frombuffer(bytes(link_excl), dtype=np.uint8)
        usable = flags[view.lid] == 0
    if node_excl is not None:
        flags = np.frombuffer(bytes(node_excl), dtype=np.uint8)
        owner_ok = flags[view.node_arc] == 0
        usable = owner_ok if usable is None else (usable & owner_ok)
    return usable


def _segment_min(np, values, view: NumpyCSR):
    """Per-node minimum of a per-arc array (empty slices -> +inf).

    ``np.minimum.reduceat`` needs two guards: an appended +inf sentinel so
    trailing indices equal to ``m`` stay in bounds (and the final slice,
    which reduceat runs to the end of the array, absorbs it harmlessly),
    and an explicit overwrite for zero-degree nodes, for which reduceat
    returns the element *at* the slice start instead of an identity.
    """
    extended = np.append(values, _INF)
    reduced = np.minimum.reduceat(extended, view.indptr[:-1])
    reduced[view.deg == 0] = _INF
    return reduced


def _parent_pass(np, view: NumpyCSR, dist, weights, usable):
    """``parent[v] = min{u : dist[u] + w(u, v) == dist[v]}`` (else -1).

    Exact float comparisons are sound here because the caller only runs
    this on *exact* views (integer distances).
    """
    gathered = dist[view.nbr] + (
        weights if usable is None else np.where(usable, weights, _INF)
    )
    ok = np.isfinite(gathered) & (gathered == dist[view.node_arc])
    candidates = np.where(ok, view.nbr, view.n)
    extended = np.append(candidates, np.int64(view.n))
    best = np.minimum.reduceat(extended, view.indptr[:-1])
    best[view.deg == 0] = view.n
    return np.where(best < view.n, best, -1)


def _ranges_to_indices(np, starts, counts):
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` vectorized.

    Zero-length ranges are dropped up front — with them present the
    difference-scatter below would write twice to one boundary slot.
    """
    keep = counts > 0
    starts, counts = starts[keep], counts[keep]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


def _bfs_unit(np, view: NumpyCSR, root_index: int, node_excl, link_excl):
    """Distances by frontier-wave BFS — valid only when every cost is 1.

    O(arcs) total work: each wave expands only the arcs *out of* the
    frontier (scatter direction), so the wave masks differ from the
    gather masks — here the *neighbor* endpoint is the relaxation target.
    """
    n = view.n
    dist = np.full(n, _INF)
    visited = np.zeros(n, dtype=bool)
    if node_excl is not None:
        # Excluded nodes can never be entered; pre-marking them visited
        # bars every wave from claiming them.
        visited |= np.frombuffer(bytes(node_excl), dtype=np.uint8) != 0
    link_bad = None
    if link_excl is not None:
        flags = np.frombuffer(bytes(link_excl), dtype=np.uint8)
        link_bad = flags[view.lid] != 0
    # The root is always usable (the reference kernel pins dist[root]=0
    # and relaxes its out-arcs even when the root itself is excluded).
    dist[root_index] = 0.0
    visited[root_index] = True
    frontier = np.array([root_index], dtype=np.int64)
    level = 0.0
    while frontier.size:
        arcs = _ranges_to_indices(np, view.indptr[frontier], view.deg[frontier])
        if link_bad is not None and arcs.size:
            arcs = arcs[~link_bad[arcs]]
        targets = view.nbr[arcs]
        targets = np.unique(targets)
        targets = targets[~visited[targets]]
        level += 1.0
        dist[targets] = level
        visited[targets] = True
        frontier = targets
    return dist


def _sweep(np, view: NumpyCSR, dist, weights, usable, update_mask=None, pin=None):
    """Iterate gather relaxations to fixpoint; returns converged ``dist``.

    ``update_mask`` restricts which rows may change (incremental reattach);
    ``pin`` is a node index whose distance is held at its seed value.
    Converges in at most eccentricity+1 sweeps; with positive costs the
    bound ``n + 1`` can never be hit (asserted defensively).
    """
    masked = weights if usable is None else np.where(usable, weights, _INF)
    for _ in range(view.n + 1):
        gathered = dist[view.nbr] + masked
        reduced = _segment_min(np, gathered, view)
        new = np.minimum(dist, reduced)
        if pin is not None:
            new[pin] = dist[pin]
        if update_mask is not None:
            new = np.where(update_mask, new, dist)
        if np.array_equal(new, dist):
            return dist
        dist = new
    raise AssertionError("sweep kernel failed to converge")  # pragma: no cover


# ----------------------------------------------------------------------
# Single-source trees
# ----------------------------------------------------------------------


def _solve_arrays(np, view: NumpyCSR, root_index: int, toward_root, node_excl, link_excl):
    """Converged (dist, parent) arrays for one root."""
    weights = _gather_weights(view, toward_root)
    usable = _gather_usable(view, node_excl, link_excl)
    if view.unit:
        dist = _bfs_unit(np, view, root_index, node_excl, link_excl)
    else:
        dist = np.full(view.n, _INF)
        dist[root_index] = 0.0
        dist = _sweep(np, view, dist, weights, usable, pin=root_index)
    parent = _parent_pass(np, view, dist, weights, usable)
    parent[root_index] = -1
    return dist, parent


def _tree_from_arrays(csr, root: int, dist, parent, toward_root: bool) -> ShortestPathTree:
    """Build a ShortestPathTree bit-identical to the reference kernel's.

    The reference inserts nodes in ascending dense-index order (== id
    order) and stores plain Python floats; ``tolist`` preserves both the
    exact bits and that insertion order.
    """
    np = numpy_or_none()
    ids = csr.ids  # python list, index -> id
    reach = np.flatnonzero(np.isfinite(dist))
    keys = [ids[i] for i in reach.tolist()]
    dist_map: Dict[int, float] = dict(zip(keys, dist[reach].tolist()))
    parent_map: Dict[int, Optional[int]] = {
        k: (ids[p] if p >= 0 else None)
        for k, p in zip(keys, parent[reach].tolist())
    }
    return ShortestPathTree(root, dist_map, parent_map, toward_root)


def dijkstra_numpy(
    topo,
    view: NumpyCSR,
    root: int,
    toward_root: bool,
    node_excl: Optional[bytearray],
    link_excl: Optional[bytearray],
) -> ShortestPathTree:
    """Full single-source tree on the numpy backend (no early exit)."""
    global _NUMPY_RUNS
    np = numpy_or_none()
    csr = topo.csr()
    root_index = csr.pos.get(root)
    if root_index is None:
        raise UnknownNodeError(root)
    _NUMPY_RUNS += 1
    if obs.enabled():
        obs.inc("dijkstra.numpy_runs")
    dist, parent = _solve_arrays(np, view, root_index, toward_root, node_excl, link_excl)
    return _tree_from_arrays(csr, root, dist, parent, toward_root)


# ----------------------------------------------------------------------
# Penalized-metric trees (repro.te congestion-aware routing)
# ----------------------------------------------------------------------


def penalized_eligible(view: Optional[NumpyCSR], quant: int, max_units: int) -> bool:
    """Whether the penalized weights stay exactly representable.

    The congestion-aware metric multiplies every base cost by
    ``quant + units(link)`` (all integers), so the bit-identical sweep
    argument of DESIGN.md §12 holds iff the worst simple-path sum of
    *penalized* costs still fits below 2**53.
    """
    if view is None or not view.exact:
        return False
    if view.m == 0:
        return True
    worst_base = max(float(view.wfwd.max()), float(view.wrev.max()))
    return worst_base * (quant + max_units) * max(view.n, 1) < 2.0**53


def penalized_backend(
    csr, quant: int, max_units: int
) -> Tuple[str, Optional[NumpyCSR]]:
    """Resolve the backend for one penalized-metric computation.

    Mirrors :func:`select_backend`: ``REPRO_KERNEL=python`` forces the
    reference kernel, ``numpy`` forces numpy for eligible graphs (and
    errors when numpy is absent), ``auto`` picks numpy at scale.
    Ineligible penalized weights (non-exact base costs, or products too
    large for exact float64 sums) always stay on the reference kernel.
    """
    mode = kernel_mode()
    if mode == "python":
        return "python", None
    if mode == "numpy" and not numpy_available():
        raise RoutingError(
            f"{KERNEL_ENV}=numpy but numpy is not importable; "
            "install the [fast] extra or unset the variable"
        )
    if mode == "auto" and (not numpy_available() or csr.n < AUTO_MIN_NODES):
        return "python", None
    view = _eligible_view(csr)
    if not penalized_eligible(view, quant, max_units):
        return "python", None
    return "numpy", view


def penalized_numpy(
    topo,
    view: NumpyCSR,
    root: int,
    units,
    quant: int,
    node_excl: Optional[bytearray],
    link_excl: Optional[bytearray],
) -> ShortestPathTree:
    """Forward SPT under the load-penalized metric, vectorized.

    ``units`` is a lid-indexed integer array of penalty units; the
    per-arc gather weight becomes ``wrev * (quant + units[lid])`` —
    symmetric per link, so both directions of an adjacency see the same
    multiplier.  Distances are in penalized (scaled) units; callers
    re-cost paths in the base metric (:func:`repro.te.penalty.recost_path`).
    Bit-identical to the reference heap kernel with the same substituted
    weights (same integer-exactness argument as the base kernels).
    """
    global _NUMPY_RUNS
    np = numpy_or_none()
    csr = topo.csr()
    root_index = csr.pos.get(root)
    if root_index is None:
        raise UnknownNodeError(root)
    _NUMPY_RUNS += 1
    if obs.enabled():
        obs.inc("dijkstra.numpy_runs")
        obs.inc("te.penalized.numpy_runs")
    units_arr = np.asarray(units, dtype=np.float64)
    weights = view.wrev * (float(quant) + units_arr[view.lid])
    usable = _gather_usable(view, node_excl, link_excl)
    dist = np.full(view.n, _INF)
    dist[root_index] = 0.0
    dist = _sweep(np, view, dist, weights, usable, pin=root_index)
    parent = _parent_pass(np, view, dist, weights, usable)
    parent[root_index] = -1
    return _tree_from_arrays(csr, root, dist, parent, toward_root=False)


# ----------------------------------------------------------------------
# Batched multi-source
# ----------------------------------------------------------------------

#: Roots per dense-sweep chunk — bounds the (chunk x arcs) temporaries to a
#: few tens of MB even on 100k-node graphs.
BATCH_CHUNK = 32


def batched_dijkstra_arrays(
    topo,
    roots: Sequence[int],
    toward_root: bool = False,
    node_excl: Optional[bytearray] = None,
    link_excl: Optional[bytearray] = None,
    view: Optional[NumpyCSR] = None,
):
    """(R, n) ``dist`` and ``parent`` matrices for many roots in one call.

    Rows follow ``roots`` order; columns are dense node indices
    (``topo.csr().ids`` maps them back to node ids).  ``parent`` holds
    dense indices, -1 for roots/unreached.  Unit-cost graphs run one
    O(arcs) BFS per root into the preallocated output; general integer
    graphs run dense chunked sweeps (:data:`BATCH_CHUNK` roots at a time)
    so the per-sweep work is one (chunk x arcs) gather.  Requires the
    numpy backend (callers fall back to per-root reference trees via
    ``REPRO_KERNEL=python``).
    """
    global _NUMPY_RUNS
    np = numpy_or_none()
    if np is None:
        raise RoutingError("batched_dijkstra requires numpy (install the [fast] extra)")
    csr = topo.csr()
    if view is None:
        view = _eligible_view(csr)
        if view is None:
            raise RoutingError(
                "batched_dijkstra requires exact (positive integer) link costs"
            )
    root_idx = []
    for root in roots:
        i = csr.pos.get(root)
        if i is None:
            raise UnknownNodeError(root)
        root_idx.append(i)
    n, r = view.n, len(root_idx)
    dist_mat = np.full((r, n), _INF)
    parent_mat = np.full((r, n), -1, dtype=np.int64)
    weights = _gather_weights(view, toward_root)
    usable = _gather_usable(view, node_excl, link_excl)
    _NUMPY_RUNS += r
    if obs.enabled():
        obs.inc("dijkstra.numpy_runs", r)
        obs.inc("dijkstra.batched_roots", r)

    if view.unit:
        for row, root_index in enumerate(root_idx):
            dist = _bfs_unit(np, view, root_index, node_excl, link_excl)
            dist_mat[row] = dist
            parent = _parent_pass(np, view, dist, weights, usable)
            parent[root_index] = -1
            parent_mat[row] = parent
        return dist_mat, parent_mat

    masked = weights if usable is None else np.where(usable, weights, _INF)
    extended_indptr = view.indptr[:-1]
    for lo in range(0, r, BATCH_CHUNK):
        hi = min(lo + BATCH_CHUNK, r)
        chunk = root_idx[lo:hi]
        block = dist_mat[lo:hi]
        rows = np.arange(len(chunk))
        block[rows, chunk] = 0.0
        pad = np.full((len(chunk), 1), _INF)
        for _ in range(n + 1):
            gathered = block[:, view.nbr] + masked[None, :]
            gathered = np.concatenate([gathered, pad], axis=1)
            reduced = np.minimum.reduceat(gathered, extended_indptr, axis=1)
            reduced[:, view.deg == 0] = _INF
            new = np.minimum(block, reduced)
            new[rows, chunk] = 0.0
            if np.array_equal(new, block):
                break
            block = new
        else:  # pragma: no cover - positive costs always converge
            raise AssertionError("batched sweep failed to converge")
        dist_mat[lo:hi] = block
        for row, root_index in zip(range(lo, hi), chunk):
            parent = _parent_pass(np, view, dist_mat[row], weights, usable)
            parent[root_index] = -1
            parent_mat[row] = parent
    return dist_mat, parent_mat


def batched_trees(
    topo,
    roots: Sequence[int],
    toward_root: bool = False,
    excluded_nodes: Iterable[int] = (),
    excluded_links: Iterable = (),
) -> List[ShortestPathTree]:
    """Many single-source trees in one call, bit-identical to the reference.

    Uses the batched numpy kernel when eligible; otherwise falls back to
    per-root reference Dijkstra (same results, just not batched).
    """
    from . import dijkstra as _dijkstra_mod

    csr = topo.csr()
    node_excl = csr.node_flags(excluded_nodes) if excluded_nodes else None
    link_excl = csr.link_flags(excluded_links) if excluded_links else None
    backend, view = select_backend(csr)
    if backend == "numpy":
        dist_mat, parent_mat = batched_dijkstra_arrays(
            topo, roots, toward_root, node_excl, link_excl, view=view
        )
        return [
            _tree_from_arrays(csr, root, dist_mat[i], parent_mat[i], toward_root)
            for i, root in enumerate(roots)
        ]
    return [
        _dijkstra_mod._dijkstra_csr(topo, root, toward_root, node_excl, link_excl)
        for root in roots
    ]


# ----------------------------------------------------------------------
# Incremental-SPT reattach
# ----------------------------------------------------------------------


def reattach_numpy(
    topo,
    view: NumpyCSR,
    new: ShortestPathTree,
    affected: Iterable[int],
    node_removed: bytearray,
    removed_link_flags: bytearray,
) -> ShortestPathTree:
    """Numpy reattach step of the incremental SPT update.

    ``new`` is the tree copy with every affected node already deleted;
    ``affected`` are the (alive) nodes to reattach.  Computes the same
    boundary-seeded Dijkstra as the reference reattach loop as a
    masked fixpoint: intact distances are fixed seeds, only affected rows
    may change, removed links/nodes are masked out.  Results (values and
    ``new.dist`` insertion order — ascending (distance, id), the heap's
    settle order) are bit-identical to the reference loop.
    """
    global _NUMPY_RUNS
    np = numpy_or_none()
    csr = topo.csr()
    pos, ids = csr.pos, csr.ids
    _NUMPY_RUNS += 1
    if obs.enabled():
        obs.inc("spt.incremental_numpy")

    n = view.n
    aff_mask = np.zeros(n, dtype=bool)
    for node in affected:
        aff_mask[pos[node]] = True

    dist = np.full(n, _INF)
    for node, d in new.dist.items():
        dist[pos[node]] = d

    weights = _gather_weights(view, new.toward_root)
    usable = _gather_usable(view, None, removed_link_flags)
    # Arcs into removed nodes can never relax; arcs *from* removed nodes
    # die on their own (a removed node's distance is +inf).
    removed_arr = np.frombuffer(bytes(node_removed), dtype=np.uint8) != 0
    if removed_arr.any():
        owner_ok = ~removed_arr[view.node_arc]
        usable = owner_ok if usable is None else (usable & owner_ok)

    dist = _sweep(np, view, dist, weights, usable, update_mask=aff_mask)
    parent = _parent_pass(np, view, dist, weights, usable)

    # Insert reattached nodes in the reference heap's settle order:
    # ascending (distance, id) — id order equals index order.
    reattached = np.flatnonzero(aff_mask & np.isfinite(dist))
    order = np.lexsort((reattached, dist[reattached]))
    for i in reattached[order].tolist():
        node = ids[i]
        new.dist[node] = float(dist[i])
        new.parent[node] = ids[parent[i]] if parent[i] >= 0 else None
    return new
