"""Link-state protocol (IGP) convergence model.

RTR exists *because* IGP convergence is slow (§I): after a failure, routers
detect unreachable neighbors, hold down their topology updates to prevent
route flapping (§II-A), flood link-state advertisements, recompute, and only
then have valid routing tables again.  RTR operates exactly during this
window.

This module models that timeline.  It does not simulate every LSA packet;
it computes, per router, the instant at which the router has received every
update and finished its SPF run — which is all the recovery evaluation
needs (e.g. Fig. 10 measures overhead "until IGP convergence finishes").

Timeline for a failure at t=0, per the knobs in :class:`ConvergenceConfig`:

* each router adjacent to a failed element detects it at ``detection_delay``
  (hello/BFD timeout),
* the router waits ``lsa_hold_down`` before originating its update
  (the paper: routers "do not immediately disseminate topology updates"),
* the update floods over the surviving graph at ``flood_hop_delay`` per hop,
* each receiving router finishes recomputation ``spf_time`` after its last
  update arrives.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set

from ..topology import Link, Topology
from .tables import RoutingTable


class ConvergenceConfig(NamedTuple):
    """Timing knobs of the IGP convergence model (seconds).

    Defaults give a few-second convergence, consistent with the paper's
    motivation that convergence "usually takes several seconds even for a
    single link failure".
    """

    detection_delay: float = 0.15
    lsa_hold_down: float = 2.0
    flood_hop_delay: float = 0.01
    spf_time: float = 0.005


class ConvergenceReport(NamedTuple):
    """Result of the convergence computation."""

    #: Per-live-router instant at which its table is valid again.
    router_converged_at: Dict[int, float]
    #: When the last router converged (the length of the RTR window).
    network_converged_at: float
    #: Routers that detected a failure and originated updates.
    detectors: Set[int]


def _flood_hops(topo: Topology, origin: int, live_nodes: Set[int], failed_links: Set[Link]) -> Dict[int, int]:
    """BFS hop counts over the surviving graph from ``origin``."""
    hops = {origin: 0}
    frontier = [origin]
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            for v in topo.neighbors(u):
                if v not in live_nodes or v in hops:
                    continue
                if Link.of(u, v) in failed_links:
                    continue
                hops[v] = hops[u] + 1
                next_frontier.append(v)
        frontier = next_frontier
    return hops


class LinkStateProtocol:
    """Pre/post-failure routing views plus the convergence timeline."""

    def __init__(self, topo: Topology, config: Optional[ConvergenceConfig] = None) -> None:
        self.topo = topo
        self.config = config or ConvergenceConfig()
        #: The consistent pre-failure view every router shares (§II-A).
        self.before = RoutingTable(topo)
        self._after: Optional[RoutingTable] = None
        self._failed_nodes: Set[int] = set()
        self._failed_links: Set[Link] = set()

    def apply_failure(self, failed_nodes: Set[int], failed_links: Set[Link]) -> ConvergenceReport:
        """Record a failure event and compute the convergence timeline."""
        self._failed_nodes = set(failed_nodes)
        self._failed_links = set(failed_links)
        self._after = None

        live_nodes = {n for n in self.topo.nodes() if n not in failed_nodes}
        detectors: Set[int] = set()
        for link in failed_links:
            for end in (link.u, link.v):
                if end in live_nodes:
                    detectors.add(end)
        for node in failed_nodes:
            if not self.topo.has_node(node):
                continue
            for nb in self.topo.neighbors(node):
                if nb in live_nodes:
                    detectors.add(nb)

        cfg = self.config
        origin_time = cfg.detection_delay + cfg.lsa_hold_down
        converged: Dict[int, float] = {}
        # Every live router converges once it has heard from every detector
        # it can reach; routers cut off from a detector never hear about that
        # part of the failure, but also never need those routes.
        for origin in detectors:
            hops = _flood_hops(self.topo, origin, live_nodes, self._failed_links)
            for router, h in hops.items():
                arrival = origin_time + h * cfg.flood_hop_delay
                converged[router] = max(converged.get(router, 0.0), arrival)
        for router in live_nodes:
            converged.setdefault(router, 0.0)  # nothing to learn
            converged[router] += cfg.spf_time
        network = max(converged.values()) if converged else 0.0
        return ConvergenceReport(converged, network, detectors)

    @property
    def after(self) -> RoutingTable:
        """Routing on the surviving topology (valid after convergence)."""
        if self._after is None:
            survivor = self.topo.copy(name=f"{self.topo.name}-post-failure")
            for link in list(survivor.links()):
                if (
                    link in self._failed_links
                    or link.u in self._failed_nodes
                    or link.v in self._failed_nodes
                ):
                    survivor.remove_link(link.u, link.v)
            self._after = RoutingTable(survivor)
        return self._after
