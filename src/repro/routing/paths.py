"""Path values shared by the routing layer."""

from __future__ import annotations

from typing import Iterator, NamedTuple, Tuple

from ..errors import RoutingError


class Path(NamedTuple):
    """An explicit routing path with its total cost.

    ``nodes`` includes both endpoints; a path of ``h`` hops has ``h + 1``
    nodes.  The zero-hop path (source == destination) is valid and has cost
    0 — it arises when the recovery initiator *is* the destination's
    neighbor... not quite: it arises when the destination is the initiator
    itself, which the evaluation filters out, but the representation allows
    it so algorithms stay total.
    """

    nodes: Tuple[int, ...]
    cost: float

    @property
    def source(self) -> int:
        """First node of the path."""
        return self.nodes[0]

    @property
    def destination(self) -> int:
        """Last node of the path."""
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.nodes) - 1

    def hops(self) -> Iterator[Tuple[int, int]]:
        """Consecutive ``(from, to)`` node pairs along the path."""
        return zip(self.nodes[:-1], self.nodes[1:])

    def validate(self) -> None:
        """Raise if the path is structurally malformed."""
        if not self.nodes:
            raise RoutingError("empty path")
        if len(set(self.nodes)) != len(self.nodes):
            raise RoutingError(f"path revisits a node: {self.nodes}")

    def __str__(self) -> str:
        return " -> ".join(f"v{n}" for n in self.nodes) + f" (cost {self.cost:g})"
