"""Source-route headers.

RTR's second phase inserts the entire recovery path in the packet header
(§III-D); routers along it forward on the recorded route without any
routing-table lookup.  FCP's source-routing variant uses the same
mechanism.  Node and link ids are 16-bit (§III-B), so header accounting
charges :data:`BYTES_PER_ENTRY` per recorded id.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import RoutingError
from .paths import Path

#: The paper represents ids with 16 bits.
BYTES_PER_ENTRY = 2


class SourceRoute:
    """A strict source route being consumed hop by hop."""

    def __init__(self, nodes: Sequence[int]) -> None:
        if not nodes:
            raise RoutingError("a source route needs at least one node")
        self.nodes: Tuple[int, ...] = tuple(nodes)
        self._cursor = 0

    @classmethod
    def from_path(cls, path: Path) -> "SourceRoute":
        """Build a route from a computed path."""
        return cls(path.nodes)

    @property
    def current(self) -> int:
        """The node the packet is currently at, per the route."""
        return self.nodes[self._cursor]

    @property
    def destination(self) -> int:
        """Final node of the route."""
        return self.nodes[-1]

    @property
    def finished(self) -> bool:
        """Whether the route has been fully consumed."""
        return self._cursor == len(self.nodes) - 1

    def next_hop(self) -> int:
        """The node to forward to next."""
        if self.finished:
            raise RoutingError("source route already at its destination")
        return self.nodes[self._cursor + 1]

    def advance(self) -> int:
        """Consume one hop and return the new current node."""
        hop = self.next_hop()
        self._cursor += 1
        return hop

    def remaining_hops(self) -> int:
        """Hops left until the destination."""
        return len(self.nodes) - 1 - self._cursor

    def header_bytes(self) -> int:
        """Bytes the route occupies in the packet header."""
        return BYTES_PER_ENTRY * len(self.nodes)

    def as_list(self) -> List[int]:
        """The full recorded route (not just the remainder)."""
        return list(self.nodes)

    def __repr__(self) -> str:
        return f"SourceRoute({list(self.nodes)!r}, at={self._cursor})"
