"""Shortest-path trees.

A :class:`ShortestPathTree` stores, for one root, the distance and parent
pointer of every reachable node.  Two orientations exist:

* **forward** (``toward_root=False``): distances are root -> node, parents
  point back toward the root.  Produced by Dijkstra from a source.
* **reverse** (``toward_root=True``): distances are node -> root, and the
  parent of ``v`` is ``v``'s *next hop toward the root*.  This is what a
  routing table needs — hop-by-hop forwarding toward a destination — and
  it handles asymmetric link costs correctly (§II-A allows
  ``c_ij != c_ji``).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..errors import NoPathError
from .paths import Path


class ShortestPathTree:
    """Distances and parent pointers from/to a single root."""

    def __init__(
        self,
        root: int,
        dist: Dict[int, float],
        parent: Dict[int, Optional[int]],
        toward_root: bool,
    ) -> None:
        self.root = root
        self.dist = dist
        self.parent = parent
        self.toward_root = toward_root

    def reaches(self, node: int) -> bool:
        """Whether ``node`` is connected to the root."""
        return node in self.dist

    def distance(self, node: int) -> float:
        """Shortest-path cost between the root and ``node``."""
        try:
            return self.dist[node]
        except KeyError:
            if self.toward_root:
                raise NoPathError(node, self.root) from None
            raise NoPathError(self.root, node) from None

    def next_hop(self, node: int) -> Optional[int]:
        """Next hop from ``node`` toward the root (reverse trees only)."""
        assert self.toward_root, "next_hop() is defined on reverse trees"
        return self.parent.get(node)

    def path_from(self, node: int) -> Path:
        """Path ``node -> root`` (reverse tree) or ``root -> node`` (forward).

        Reverse trees chain next hops from ``node`` to the root; forward
        trees chain parents from ``node`` back to the root and then flip.
        """
        if not self.reaches(node):
            if self.toward_root:
                raise NoPathError(node, self.root)
            raise NoPathError(self.root, node)
        chain = [node]
        current = node
        while current != self.root:
            current = self.parent[current]  # type: ignore[assignment]
            chain.append(current)
        if self.toward_root:
            return Path(tuple(chain), self.dist[node])
        return Path(tuple(reversed(chain)), self.dist[node])

    def reachable_nodes(self) -> Iterator[int]:
        """Every node connected to the root (including the root)."""
        return iter(self.dist)

    def tree_links(self) -> Iterator[Tuple[int, int]]:
        """The ``(child, parent)`` pairs forming the tree."""
        return (
            (node, parent)
            for node, parent in self.parent.items()
            if parent is not None
        )

    def copy(self) -> "ShortestPathTree":
        """An independent copy (incremental updates mutate in place)."""
        return ShortestPathTree(
            self.root, dict(self.dist), dict(self.parent), self.toward_root
        )
