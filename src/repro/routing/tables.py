"""Routing tables for hop-by-hop default forwarding.

Intra-domain link-state routing (§II-A): every router knows the topology
and forwards along shortest paths.  A :class:`RoutingTable` is the fleet of
per-destination reverse shortest-path trees, computed lazily and shared —
``next_hop(u, dst)`` is what router ``u`` looks up when a data packet for
``dst`` arrives, and is what RTR checks when it decides that the default
next hop is unreachable.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, Mapping, Optional

from ..errors import UnknownNodeError
from ..topology import Link, Topology
from .cache import SPTCache
from .dijkstra import reverse_shortest_path_tree
from .kernels import batched_trees
from .paths import Path
from .spt import ShortestPathTree


class RoutingTable:
    """Lazily computed all-pairs next hops over one topology snapshot.

    An optional shared :class:`~repro.routing.cache.SPTCache` lets several
    tables (and the recovery protocols) reuse one pool of trees.
    """

    def __init__(self, topo: Topology, cache: Optional[SPTCache] = None) -> None:
        self.topo = topo
        self._cache = cache
        self._trees: Dict[int, ShortestPathTree] = {}

    def tree_to(self, destination: int) -> ShortestPathTree:
        """The reverse SPT rooted at ``destination`` (cached)."""
        if not self.topo.has_node(destination):
            raise UnknownNodeError(destination)
        tree = self._trees.get(destination)
        if tree is None:
            if self._cache is not None:
                tree = self._cache.reverse_tree(self.topo, destination)
            else:
                tree = reverse_shortest_path_tree(self.topo, destination)
            self._trees[destination] = tree
        return tree

    def next_hop(self, node: int, destination: int) -> Optional[int]:
        """Routing-table next hop of ``node`` toward ``destination``.

        ``None`` when the destination is unreachable in this snapshot or
        when ``node`` is the destination itself.
        """
        if node == destination:
            return None
        tree = self.tree_to(destination)
        if not tree.reaches(node):
            return None
        return tree.next_hop(node)

    def path(self, source: int, destination: int) -> Optional[Path]:
        """The default routing path, or ``None`` if unreachable."""
        tree = self.tree_to(destination)
        if not tree.reaches(source):
            return None
        return tree.path_from(source)

    def distance(self, source: int, destination: int) -> Optional[float]:
        """Shortest-path cost, or ``None`` if unreachable."""
        tree = self.tree_to(destination)
        return tree.dist.get(source)

    def destinations(self) -> Iterator[int]:
        """All possible destinations (every node)."""
        return self.topo.nodes()

    def warm(self, destinations: Iterable[int]) -> int:
        """Precompute the trees for ``destinations`` in one batched pass.

        Uses the batched multi-source kernel
        (:func:`~repro.routing.kernels.batched_trees`) — on eligible
        graphs all roots are solved over contiguous buffers instead of
        one heap run per destination, which is how a traffic sweep warms
        the table for its demand-matrix destination set before touching
        per-flow queries.  Results are bit-identical to the lazy path.
        Returns the number of trees actually computed (already-cached
        destinations are skipped).
        """
        missing = []
        for dst in destinations:
            if not self.topo.has_node(dst):
                raise UnknownNodeError(dst)
            if dst not in self._trees and dst not in missing:
                missing.append(dst)
        if not missing:
            return 0
        # The shared SPTCache keys by exclusion signature too, so warmed
        # trees are registered there as well when a cache is attached.
        for dst, tree in zip(missing, batched_trees(self.topo, missing, toward_root=True)):
            self._trees[dst] = tree
            if self._cache is not None:
                self._cache.seed_tree(self.topo, dst, tree, toward_root=True)
        return len(missing)

    def precompute_all(self) -> None:
        """Force computation of every per-destination tree."""
        for dst in self.topo.nodes():
            self.tree_to(dst)

    def edge_loads_to(
        self, destination: int, demands: Mapping[int, float]
    ) -> Dict[Link, float]:
        """Per-link demand flowing toward ``destination``, in one tree pass.

        ``demands`` maps source node -> demand rate; every source routes
        along its default next-hop chain, and each tree edge accumulates
        the total demand crossing it.  One reverse-SPT traversal serves
        all sources of the root (the traffic layer's batched alternative
        to walking ``path(source, destination)`` per pair), and sources
        are processed in decreasing (distance, id) order so float sums
        have a fixed order regardless of dict iteration.
        """
        tree = self.tree_to(destination)
        carry: Dict[int, float] = {}
        for source, demand in demands.items():
            if source == destination or demand <= 0.0 or not tree.reaches(source):
                continue
            carry[source] = carry.get(source, 0.0) + demand
        loads: Dict[Link, float] = {}
        # Only nodes that carry flow matter, and distance strictly
        # decreases along every next hop, so a max-distance heap visits
        # exactly the flow-carrying nodes in the same (distance desc,
        # id asc) order a full-tree sweep would — identical float
        # accumulation order at a fraction of the work when demand
        # touches few of the tree's nodes (sampled matrices at scale).
        heap = [(-tree.distance(node), node) for node in carry]
        heapq.heapify(heap)
        queued = {node for _, node in heap}
        while heap:
            _, node = heapq.heappop(heap)
            flow = carry.get(node, 0.0)
            if flow <= 0.0:
                continue
            nxt = tree.next_hop(node)
            if nxt is None:
                continue
            link = Link.of(node, nxt)
            loads[link] = loads.get(link, 0.0) + flow
            if nxt != destination:
                carry[nxt] = carry.get(nxt, 0.0) + flow
                if nxt not in queued:
                    queued.add(nxt)
                    heapq.heappush(heap, (-tree.distance(nxt), nxt))
        return loads
