"""Pluggable recovery schemes: one contract, one registry, many schemes.

Adding a scheme is one module: subclass
:class:`~repro.schemes.base.RecoveryScheme`, decorate it with
:func:`register_scheme`, and every driver — serial runner, parallel
shards, traffic engine, CLI — can run it by name.  External modules load
through the ``REPRO_SCHEME_MODULES`` environment variable (see
:mod:`repro.schemes.registry`).
"""

from .base import RecoveryScheme, SchemeInstance, SchemeLifecycleError
from .registry import (
    PLUGIN_ENV,
    build_schemes,
    create_scheme,
    get_scheme,
    register_scheme,
    scheme_names,
    unknown_scheme_error,
    validate_names,
)
from .faults import FaultedScheme

# Built-in schemes self-register on import, in the paper's comparison order.
from .rtr import RTRScheme
from .fcp import FCPScheme
from .mrc import MRCScheme
from .ospf import OSPFScheme
from .oracle import OracleScheme

# The r3 scheme lives in the TE layer (repro.te.r3) but registers here
# with the built-ins.  Import the *module* (not the class): when
# repro.te.r3 is imported first, it re-enters this package mid-body and
# its class does not exist yet — the module object binding is cycle-safe
# and registration completes when its body resumes.
from ..te import r3 as _te_r3


def __getattr__(name: str):
    if name == "R3Scheme":
        return _te_r3.R3Scheme
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "RecoveryScheme",
    "SchemeInstance",
    "SchemeLifecycleError",
    "PLUGIN_ENV",
    "build_schemes",
    "create_scheme",
    "get_scheme",
    "register_scheme",
    "scheme_names",
    "unknown_scheme_error",
    "validate_names",
    "FaultedScheme",
    "RTRScheme",
    "FCPScheme",
    "MRCScheme",
    "OSPFScheme",
    "OracleScheme",
    "R3Scheme",
]
