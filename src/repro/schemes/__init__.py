"""Pluggable recovery schemes: one contract, one registry, many schemes.

Adding a scheme is one module: subclass
:class:`~repro.schemes.base.RecoveryScheme`, decorate it with
:func:`register_scheme`, and every driver — serial runner, parallel
shards, traffic engine, CLI — can run it by name.  External modules load
through the ``REPRO_SCHEME_MODULES`` environment variable (see
:mod:`repro.schemes.registry`).
"""

from .base import RecoveryScheme, SchemeInstance, SchemeLifecycleError
from .registry import (
    PLUGIN_ENV,
    build_schemes,
    create_scheme,
    get_scheme,
    register_scheme,
    scheme_names,
    unknown_scheme_error,
    validate_names,
)
from .faults import FaultedScheme

# Built-in schemes self-register on import, in the paper's comparison order.
from .rtr import RTRScheme
from .fcp import FCPScheme
from .mrc import MRCScheme
from .ospf import OSPFScheme
from .oracle import OracleScheme

__all__ = [
    "RecoveryScheme",
    "SchemeInstance",
    "SchemeLifecycleError",
    "PLUGIN_ENV",
    "build_schemes",
    "create_scheme",
    "get_scheme",
    "register_scheme",
    "scheme_names",
    "unknown_scheme_error",
    "validate_names",
    "FaultedScheme",
    "RTRScheme",
    "FCPScheme",
    "MRCScheme",
    "OSPFScheme",
    "OracleScheme",
]
