"""The recovery-scheme contract: a three-stage lifecycle.

The paper's evaluation is a head-to-head of recovery schemes, and the
comparison set keeps growing (enhanced-MRC variants, proactive
alternate-path schemes, plain IGP reconvergence).  Every scheme reduces
to the same lifecycle, mirroring what a real deployment amortizes at
each timescale:

1. :meth:`RecoveryScheme.prepare` — once per **topology**: bind the
   shared routing table and sweep-wide :class:`~repro.routing.SPTCache`,
   build whatever per-topology state the scheme precomputes (MRC's
   backup configurations, for example);
2. :meth:`RecoveryScheme.instantiate` — once per **convergence window**
   (one :class:`~repro.failures.FailureScenario`): build the per-scenario
   protocol state a router would hold until the IGP reconverges (RTR's
   phase-1 walks and phase-2 trees, FCP's header machinery);
3. :meth:`SchemeInstance.recover` — once per **packet pair** (one
   :class:`~repro.eval.cases.TestCase`): run a single recovery attempt
   and return the existing :class:`~repro.simulator.RecoveryResult`.

Drivers (:class:`~repro.eval.runner.EvaluationRunner`, the traffic
engine, the parallel shards) speak only this contract, so adding a
scheme is one module plus a :func:`~repro.schemes.register_scheme`
decorator — no runner, sharding, or traffic edits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Optional

from ..errors import EvaluationError
from ..routing import RoutingTable, SPTCache
from ..topology import Topology

if TYPE_CHECKING:  # typing only — repro.eval imports this package
    from ..chaos import ChaosRuntime, FaultPlan
    from ..eval.cases import TestCase
    from ..failures import FailureScenario
    from ..simulator import RecoveryResult


class SchemeLifecycleError(EvaluationError):
    """A scheme method was called out of lifecycle order."""


class SchemeInstance:
    """Per-scenario state of one scheme: one IGP convergence window.

    The default implementation adapts the repository's protocol objects
    (:class:`~repro.core.RTR`, :class:`~repro.baselines.FCP`, ...), which
    all expose ``recover(initiator, destination, trigger_neighbor)``.
    Schemes with a different shape override :meth:`recover` directly.
    """

    def __init__(self, scheme_name: str, protocol: object) -> None:
        self.scheme_name = scheme_name
        self.protocol = protocol

    def recover(self, case: "TestCase") -> "RecoveryResult":
        """Run one recovery attempt for ``case`` and return its result."""
        return self.protocol.recover(  # type: ignore[attr-defined]
            case.initiator, case.destination, case.trigger
        )

    def can_plan(self) -> bool:
        """Whether :meth:`plan` may replace :meth:`recover` for this window.

        True when the protocol compiles cases into walk plans
        (``plan_recovery``) and its optional ``plan_supported()`` gate —
        schemes pin themselves to the sequential path under chaos or
        adaptive configs — currently holds.
        """
        protocol = self.protocol
        cls = type(protocol)
        if getattr(cls, "plan_recovery", None) is None:
            return False
        # A subclass overriding recover() without re-deriving plan_recovery
        # has custom per-case behaviour the plans would silently bypass —
        # such protocols stay on the sequential path.
        for klass in cls.__mro__:
            if "plan_recovery" in klass.__dict__:
                break
            if "recover" in klass.__dict__:
                return False
        gate = getattr(protocol, "plan_supported", None)
        return bool(gate()) if gate is not None else True

    def plan(self, case: "TestCase"):
        """Compile ``case`` into a :class:`~repro.simulator.WalkPlan`."""
        return self.protocol.plan_recovery(  # type: ignore[attr-defined]
            case.initiator, case.destination, case.trigger
        )

    def walk_engine(self):
        """The forwarding engine batched walks of this instance run on."""
        return getattr(self.protocol, "engine", None)

    def degrade(self, plan: "FaultPlan", runtime: "ChaosRuntime") -> bool:
        """Swap this instance's world for a fault-injected one.

        The generic hook behind :class:`~repro.schemes.faults.FaultedScheme`
        for schemes without native degraded-mode support: the protocol's
        ``view``/``engine`` pair is replaced by a
        :class:`~repro.chaos.DegradedLocalView` and a
        :class:`~repro.chaos.ChaosForwardingEngine` sharing one runtime,
        so detection faults, secondary flaps, and the hop clock perturb
        the scheme exactly as they would RTR.  Returns ``False`` when the
        scheme has no forwarding surface to degrade (e.g. the oracle).
        """
        from ..chaos import ChaosForwardingEngine, DegradedLocalView

        protocol = self.protocol
        view = getattr(protocol, "view", None)
        engine = getattr(protocol, "engine", None)
        scenario = getattr(protocol, "scenario", None)
        if view is None or engine is None or scenario is None:
            return False
        degraded = DegradedLocalView(scenario, plan, runtime)
        protocol.view = degraded  # type: ignore[attr-defined]
        protocol.engine = ChaosForwardingEngine(  # type: ignore[attr-defined]
            protocol.topo, degraded, runtime, engine.delay_model
        )
        return True


class RecoveryScheme:
    """Base class of every registered recovery scheme.

    Subclasses set :attr:`name`, implement :meth:`_instantiate`, and may
    override :meth:`_prepare` for per-topology precomputation.  The
    constructor must accept (and is free to ignore) arbitrary keyword
    options — drivers pass one shared option bag to every scheme so that
    e.g. ``rtr_config`` can ride through a generic runner untouched.
    """

    #: Registry key and ``--approaches`` name of this scheme.
    name: ClassVar[str] = ""

    def __init__(self, **options: object) -> None:
        self.options = options
        self.topo: Optional[Topology] = None
        self.routing: Optional[RoutingTable] = None
        self.sp_cache: Optional[SPTCache] = None
        self._prepared = False

    # -- stage 1: once per topology ------------------------------------

    def prepare(
        self, topo: Topology, routing: RoutingTable, sp_cache: SPTCache
    ) -> None:
        """Bind per-topology shared state; must precede :meth:`instantiate`."""
        self.topo = topo
        self.routing = routing
        self.sp_cache = sp_cache
        self._prepared = True
        self._prepare()

    def _prepare(self) -> None:
        """Per-topology precomputation hook (default: nothing)."""

    # -- stage 2: once per convergence window --------------------------

    def instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        """Build the per-scenario protocol state of one convergence window."""
        if not self._prepared:
            raise SchemeLifecycleError(
                f"scheme {self.name!r} was instantiated before prepare(); "
                "call prepare(topo, routing, sp_cache) once per topology first"
            )
        return self._instantiate(scenario)

    def _instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        raise NotImplementedError

    def instantiate_degraded(
        self, scenario: "FailureScenario", plan: "FaultPlan"
    ) -> Optional[SchemeInstance]:
        """Native fault-injected instantiation, or ``None`` (the default).

        Schemes with their own degraded-mode machinery (RTR's hardened
        retry ladder) override this; for everyone else
        :class:`~repro.schemes.faults.FaultedScheme` falls back to the
        generic :meth:`SchemeInstance.degrade` view/engine swap.
        """
        return None

    # -- introspection -------------------------------------------------

    @classmethod
    def describe(cls) -> str:
        """One-line summary (the docstring's first line) for listings."""
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""
