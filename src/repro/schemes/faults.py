"""Fault injection as a scheme-wrapping decorator.

:class:`FaultedScheme` applies a :class:`~repro.chaos.FaultPlan` to *any*
registered scheme.  Schemes with native degraded-mode support (RTR's
hardened retry ladder) keep their own machinery via
:meth:`~repro.schemes.base.RecoveryScheme.instantiate_degraded`; the rest
get the generic :meth:`~repro.schemes.base.SchemeInstance.degrade`
view/engine swap, so detection misses, delayed notifications, secondary
flaps, and the shared hop clock perturb FCP or MRC exactly as they would
RTR.  A scheme with no forwarding surface at all (the oracle) cannot be
degraded — that is logged and counted, never silently ignored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import obs
from ..chaos import ChaosRuntime, FaultPlan
from ..routing import RoutingTable, SPTCache
from ..topology import Topology
from .base import RecoveryScheme, SchemeInstance

if TYPE_CHECKING:
    from ..failures import FailureScenario

log = obs.get_logger(__name__)


class FaultedScheme(RecoveryScheme):
    """Decorator running ``inner`` under an injected :class:`FaultPlan`."""

    def __init__(self, inner: RecoveryScheme, plan: FaultPlan) -> None:
        super().__init__()
        self.inner = inner
        self.plan = plan
        self.name = inner.name  # mirrors the wrapped scheme in records/obs

    def prepare(
        self, topo: Topology, routing: RoutingTable, sp_cache: SPTCache
    ) -> None:
        super().prepare(topo, routing, sp_cache)
        self.inner.prepare(topo, routing, sp_cache)

    def _instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        native = self.inner.instantiate_degraded(scenario, self.plan)
        if native is not None:
            return native
        instance = self.inner.instantiate(scenario)
        runtime = ChaosRuntime(self.plan, scenario)
        if not instance.degrade(self.plan, runtime):
            obs.inc(f"chaos.degrade.unsupported.{self.name}")
            log.warning(
                "scheme %s has no degradable forwarding surface; "
                "FaultPlan has no effect on it",
                self.name,
            )
        return instance
