"""FCP (Failure-Carrying Packets) as a registered scheme."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..baselines import FCP
from .base import RecoveryScheme, SchemeInstance
from .registry import register_scheme

if TYPE_CHECKING:
    from ..failures import FailureScenario


@register_scheme
class FCPScheme(RecoveryScheme):
    """Failure-Carrying Packets: failed links ride in the packet header."""

    name = "FCP"

    def _instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        return SchemeInstance(
            self.name,
            FCP(self.topo, scenario, routing=self.routing, cache=self.sp_cache),
        )
