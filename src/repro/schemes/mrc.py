"""MRC (Multiple Routing Configurations) as a registered scheme."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..baselines import MRC, BackupConfiguration, generate_configurations
from .base import RecoveryScheme, SchemeInstance
from .registry import register_scheme

if TYPE_CHECKING:
    from ..failures import FailureScenario


@register_scheme
class MRCScheme(RecoveryScheme):
    """Multiple Routing Configurations: precomputed backup configurations."""

    name = "MRC"

    def __init__(self, mrc_seed: int = 0, **options: object) -> None:
        super().__init__(**options)
        self.mrc_seed = mrc_seed
        self._configs: Optional[List[BackupConfiguration]] = None

    def _configurations(self) -> List[BackupConfiguration]:
        # Lazy, not in _prepare(): configuration generation is the
        # expensive per-topology step, and shards that never instantiate
        # (empty case subsets) must not pay for it — serial and parallel
        # sweeps would otherwise diverge in obs spans and wall time.
        if self._configs is None:
            self._configs = generate_configurations(self.topo, seed=self.mrc_seed)
        return self._configs

    def _instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        return SchemeInstance(
            self.name,
            MRC(
                self.topo,
                scenario,
                configurations=self._configurations(),
                routing=self.routing,
            ),
        )
