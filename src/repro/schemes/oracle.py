"""The ground-truth oracle as a registered scheme.

Not a deployable protocol — the oracle sees the exact failure set — but
registering it makes the optimality reference runnable through the same
driver as everything else (handy for sanity sweeps and Theorem 2 spot
checks from the CLI).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..baselines import Oracle
from ..errors import SimulationError
from ..routing import SPTCache
from ..simulator import RecoveryAccounting, RecoveryResult, WalkPlan
from .base import RecoveryScheme, SchemeInstance
from .registry import register_scheme

if TYPE_CHECKING:
    from ..failures import FailureScenario


class _OracleProtocol:
    """Adapter giving :class:`~repro.baselines.Oracle` the protocol shape."""

    def __init__(self, oracle: Oracle) -> None:
        self.oracle = oracle

    def recover(
        self, initiator: int, destination: int, trigger_neighbor: int
    ) -> RecoveryResult:
        if initiator in self.oracle.scenario.failed_nodes:
            raise SimulationError(f"initiator {initiator} failed in this scenario")
        accounting = RecoveryAccounting()
        accounting.count_sp(1)
        path = self.oracle.recovery_path(initiator, destination)
        return RecoveryResult(
            approach=OracleScheme.name,
            delivered=path is not None,
            path=path,
            accounting=accounting,
        )

    def plan_recovery(
        self, initiator: int, destination: int, trigger_neighbor: int
    ) -> WalkPlan:
        """Walk-free scheme: the whole case resolves at compile time."""
        return WalkPlan(
            immediate=self.recover(initiator, destination, trigger_neighbor)
        )


@register_scheme
class OracleScheme(RecoveryScheme):
    """Ground truth: optimal path in ``G - E2`` with the full failure set."""

    name = "Oracle"

    def _instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        cache: Optional[SPTCache] = self.sp_cache
        return SchemeInstance(
            self.name, _OracleProtocol(Oracle(self.topo, scenario, cache=cache))
        )
