"""OSPF reconvergence as a first-class baseline scheme.

The paper's §I framing — and its Fig. 2 motivation — is that plain IGP
reconvergence *does* eventually recover every recoverable pair, it just
takes the full convergence window to do it.  Modelling that as a scheme
makes "do nothing clever and wait" a row in every table: the packet
waits out :class:`~repro.routing.LinkStateProtocol`'s network
convergence time, then follows the post-convergence shortest path
(optimal by construction, so its stretch is 1.0 and its cost is pure
delay plus the traffic lost during the window).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..baselines import Oracle
from ..errors import SimulationError
from ..routing import LinkStateProtocol
from ..simulator import RecoveryAccounting, RecoveryResult, WalkPlan
from .base import RecoveryScheme, SchemeInstance
from .registry import register_scheme

if TYPE_CHECKING:
    from ..failures import FailureScenario


class _OSPFProtocol:
    """One convergence window: wait for the IGP, then route optimally."""

    def __init__(self, oracle: Oracle, converged_at: float) -> None:
        self.oracle = oracle
        self.converged_at = converged_at

    def recover(
        self, initiator: int, destination: int, trigger_neighbor: int
    ) -> RecoveryResult:
        if initiator in self.oracle.scenario.failed_nodes:
            raise SimulationError(f"initiator {initiator} failed in this scenario")
        accounting = RecoveryAccounting()
        # The packet (conceptually, its successors) waits out the window;
        # route computation happens in the control plane during that wait,
        # so no on-demand shortest-path computations are charged.
        accounting.advance_clock(self.converged_at)
        path = self.oracle.recovery_path(initiator, destination)
        return RecoveryResult(
            approach=OSPFScheme.name,
            delivered=path is not None,
            path=path,
            accounting=accounting,
            # The pre-recovery outage window: traffic launched before the
            # IGP converges is lost, which is the paper's Fig. 2 motivation
            # for reacting faster than reconvergence.
            phase1_duration=self.converged_at,
        )

    def plan_recovery(
        self, initiator: int, destination: int, trigger_neighbor: int
    ) -> WalkPlan:
        """Walk-free scheme: the whole case resolves at compile time."""
        return WalkPlan(
            immediate=self.recover(initiator, destination, trigger_neighbor)
        )


@register_scheme
class OSPFScheme(RecoveryScheme):
    """OSPF reconvergence: wait out the IGP window, then route optimally."""

    name = "OSPF"

    def _instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        report = LinkStateProtocol(self.topo).apply_failure(
            set(scenario.failed_nodes), set(scenario.failed_links)
        )
        oracle = Oracle(self.topo, scenario, cache=self.sp_cache)
        return SchemeInstance(
            self.name, _OSPFProtocol(oracle, report.network_converged_at)
        )
