"""Name-keyed registry of recovery schemes.

Schemes self-register at import time with :func:`register_scheme`; the
built-ins are registered when :mod:`repro.schemes` is imported.  External
schemes load from the ``REPRO_SCHEME_MODULES`` environment variable — a
comma-separated list of importable module paths (e.g.
``examples.custom_scheme``) imported on the first lookup miss, which also
makes plugin schemes available inside process-pool workers: the variable
is inherited, and every worker resolves names through this registry.
"""

from __future__ import annotations

import difflib
import importlib
import os
from typing import Dict, Iterable, Optional, Sequence, Tuple, Type

from .base import RecoveryScheme

#: Environment variable naming extra modules to import for registration.
PLUGIN_ENV = "REPRO_SCHEME_MODULES"

_REGISTRY: Dict[str, Type[RecoveryScheme]] = {}
_plugins_loaded = False


def register_scheme(cls: Type[RecoveryScheme]) -> Type[RecoveryScheme]:
    """Class decorator: add ``cls`` to the registry under ``cls.name``.

    Re-registration of the *same* class (or a re-executed definition of
    it, as ``runpy`` produces) is idempotent; two distinct schemes
    claiming one name is an error.
    """
    if not issubclass(cls, RecoveryScheme):
        raise TypeError(
            f"@register_scheme needs a RecoveryScheme subclass, got {cls!r}"
        )
    name = cls.name
    if not name:
        raise ValueError(
            f"scheme class {cls.__qualname__} must set a non-empty `name`"
        )
    existing = _REGISTRY.get(name)
    if (
        existing is not None
        and existing is not cls
        and existing.__qualname__ != cls.__qualname__
    ):
        raise ValueError(
            f"scheme name {name!r} is already registered by "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    _REGISTRY[name] = cls
    return cls


def _load_plugins() -> None:
    """Import the modules named by ``REPRO_SCHEME_MODULES`` (once)."""
    global _plugins_loaded
    if _plugins_loaded:
        return
    _plugins_loaded = True
    spec = os.environ.get(PLUGIN_ENV, "")
    for module in filter(None, (part.strip() for part in spec.split(","))):
        importlib.import_module(module)


def unknown_scheme_error(name: str) -> ValueError:
    """The registry's lookup failure: lists schemes and the nearest match."""
    registered = ", ".join(sorted(_REGISTRY))
    message = f"unknown recovery scheme {name!r}: registered schemes are {registered}"
    close = difflib.get_close_matches(name, sorted(_REGISTRY), n=1)
    if close:
        message += f"; did you mean {close[0]!r}?"
    return ValueError(message)


def get_scheme(name: str) -> Type[RecoveryScheme]:
    """The scheme class registered under ``name`` (loads plugins on miss)."""
    cls = _REGISTRY.get(name)
    if cls is None:
        _load_plugins()
        cls = _REGISTRY.get(name)
    if cls is None:
        raise unknown_scheme_error(name)
    return cls


def scheme_names() -> Tuple[str, ...]:
    """Registered scheme names, sorted (plugins loaded first)."""
    _load_plugins()
    return tuple(sorted(_REGISTRY))


def validate_names(names: Iterable[str]) -> None:
    """Raise the registry's :class:`ValueError` on the first unknown name."""
    for name in names:
        get_scheme(name)


def create_scheme(name: str, **options: object) -> RecoveryScheme:
    """Construct one scheme by name with the shared option bag."""
    return get_scheme(name)(**options)


def build_schemes(
    names: Sequence[str],
    fault_plan: Optional[object] = None,
    **options: object,
) -> Dict[str, RecoveryScheme]:
    """Construct one scheme per name, fault-wrapped when a plan is given.

    The returned dict preserves ``names`` order.  ``fault_plan`` (a
    :class:`~repro.chaos.FaultPlan`) applies to *every* scheme via
    :class:`~repro.schemes.faults.FaultedScheme` — schemes with native
    degraded-mode support (RTR) keep their own machinery, the rest get
    the generic degraded view/engine swap.
    """
    from .faults import FaultedScheme

    schemes: Dict[str, RecoveryScheme] = {}
    for name in names:
        scheme = create_scheme(name, **options)
        if fault_plan is not None and not fault_plan.is_null():  # type: ignore[attr-defined]
            scheme = FaultedScheme(scheme, fault_plan)
        schemes[name] = scheme
    return schemes
