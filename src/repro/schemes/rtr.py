"""RTR as a registered scheme (the paper's contribution)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core import RTR, RTRConfig
from .base import RecoveryScheme, SchemeInstance
from .registry import register_scheme

if TYPE_CHECKING:
    from ..chaos import FaultPlan
    from ..failures import FailureScenario


@register_scheme
class RTRScheme(RecoveryScheme):
    """Reactive Two-phase Rerouting: failure-collecting walk + SPT reroute."""

    name = "RTR"

    def __init__(
        self,
        rtr_config: Optional[RTRConfig] = None,
        fault_plan: Optional["FaultPlan"] = None,
        **options: object,
    ) -> None:
        super().__init__(**options)
        self.rtr_config = rtr_config
        #: Plan set when constructed directly with one (bypassing the
        #: :class:`~repro.schemes.faults.FaultedScheme` wrapper).
        self.fault_plan = fault_plan

    def _new_rtr(self, scenario: "FailureScenario", fault_plan) -> RTR:
        return RTR(
            self.topo,
            scenario,
            routing=self.routing,
            config=self.rtr_config,
            fault_plan=fault_plan,
            sp_cache=self.sp_cache,
        )

    def _instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        return SchemeInstance(self.name, self._new_rtr(scenario, self.fault_plan))

    def instantiate_degraded(
        self, scenario: "FailureScenario", plan: "FaultPlan"
    ) -> SchemeInstance:
        """Native degraded mode: RTR's own hardened ladder.

        The phase-1 retry/backoff and phase-2 resend/re-invocation knobs
        are RTR-specific (they live in :class:`~repro.core.RTRConfig` and
        default to :meth:`RTRConfig.hardened` under faults), so the
        fault wrapper hands the plan to RTR itself instead of applying
        the generic view/engine swap.
        """
        return SchemeInstance(self.name, self._new_rtr(scenario, plan))
