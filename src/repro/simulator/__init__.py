"""Packet-level simulation substrate: packets, delays, events, accounting."""

from .packet import (
    BYTES_PER_ID,
    DEFAULT_PAYLOAD_BYTES,
    FIXED_RTR_HEADER_BYTES,
    Mode,
    Packet,
    RecoveryHeader,
)
from .delays import (
    DEFAULT_DELAY_MODEL,
    PAPER_PROPAGATION_S,
    ROUTER_DELAY_S,
    DelayModel,
    DistanceDelayModel,
    PaperDelayModel,
)
from .events import EventQueue
from .stats import RecoveryAccounting, RecoveryResult, aggregate_results
from .trace import DropEvent, ForwardingTrace, HopEvent
from .engine import (
    ForwardingEngine,
    NextHopFn,
    RouteOutcome,
    WalkOutcome,
)

__all__ = [
    "BYTES_PER_ID",
    "DEFAULT_PAYLOAD_BYTES",
    "FIXED_RTR_HEADER_BYTES",
    "Mode",
    "Packet",
    "RecoveryHeader",
    "DEFAULT_DELAY_MODEL",
    "PAPER_PROPAGATION_S",
    "ROUTER_DELAY_S",
    "DelayModel",
    "DistanceDelayModel",
    "PaperDelayModel",
    "EventQueue",
    "RecoveryAccounting",
    "RecoveryResult",
    "aggregate_results",
    "DropEvent",
    "ForwardingTrace",
    "HopEvent",
    "ForwardingEngine",
    "NextHopFn",
    "RouteOutcome",
    "WalkOutcome",
]
