"""Packet-level simulation substrate: packets, delays, events, accounting."""

from .packet import (
    BYTES_PER_ID,
    DEFAULT_PAYLOAD_BYTES,
    FIXED_RTR_HEADER_BYTES,
    Mode,
    Packet,
    RecoveryHeader,
)
from .delays import (
    DEFAULT_DELAY_MODEL,
    PAPER_PROPAGATION_S,
    ROUTER_DELAY_S,
    DelayModel,
    DistanceDelayModel,
    PaperDelayModel,
)
from .events import EventQueue
from .stats import RecoveryAccounting, RecoveryResult, aggregate_results
from .trace import DropEvent, ForwardingTrace, HopEvent
from .engine import (
    ForwardingEngine,
    NextHopFn,
    RouteOutcome,
    WalkOutcome,
)
from .budget import (
    HOP_BUDGET_FACTOR,
    HOP_BUDGET_SLACK,
    table_walk_hop_budget,
    walk_hop_budget,
)
from .walkspec import (
    CallbackWalkSpec,
    SourceRouteSpec,
    TableWalkOutcome,
    TableWalkSpec,
    WalkPlan,
)

# batch pulls in topology.npcsr and (lazily) chaos.lowering; import it last
# so the engine/spec layers above never see a partially-initialized package.
from .batch import (
    AUTO_MIN_WALK_BATCH,
    WALK_ENV,
    WalkBatch,
    batched_walk_count,
    numpy_walks_available,
    run_table_walk,
    walk_mode,
)

__all__ = [
    "BYTES_PER_ID",
    "DEFAULT_PAYLOAD_BYTES",
    "FIXED_RTR_HEADER_BYTES",
    "Mode",
    "Packet",
    "RecoveryHeader",
    "DEFAULT_DELAY_MODEL",
    "PAPER_PROPAGATION_S",
    "ROUTER_DELAY_S",
    "DelayModel",
    "DistanceDelayModel",
    "PaperDelayModel",
    "EventQueue",
    "RecoveryAccounting",
    "RecoveryResult",
    "aggregate_results",
    "DropEvent",
    "ForwardingTrace",
    "HopEvent",
    "ForwardingEngine",
    "NextHopFn",
    "RouteOutcome",
    "WalkOutcome",
    "HOP_BUDGET_FACTOR",
    "HOP_BUDGET_SLACK",
    "table_walk_hop_budget",
    "walk_hop_budget",
    "CallbackWalkSpec",
    "SourceRouteSpec",
    "TableWalkOutcome",
    "TableWalkSpec",
    "WalkPlan",
    "AUTO_MIN_WALK_BATCH",
    "WALK_ENV",
    "WalkBatch",
    "batched_walk_count",
    "numpy_walks_available",
    "run_table_walk",
    "walk_mode",
]
