"""The batched walk plane: backend-dispatched packet-walk mechanics.

This is the mechanics half of the forwarding plane's decision/mechanics
split (DESIGN.md §15).  Schemes compile each case into a walk spec
(:mod:`repro.simulator.walkspec`); a :class:`WalkBatch` executes any mix
of specs and hands each caller its outcome:

* the **reference backend** runs one packet at a time through the
  existing :class:`~repro.simulator.engine.ForwardingEngine` loops (and
  the table-walk loop below) — bit-identical by construction, and the
  only backend chaos-degraded walks ever use, because per-step fault
  draws are order-dependent (:mod:`repro.chaos.lowering`);
* the **numpy backend** advances all eligible packets over CSR arrays —
  route hops are resolved with one vectorized arc lookup and blocked-arc
  scan, table walks advance in lockstep one hop per step — and then
  *replays* each packet's delay accounting sequentially (same float
  additions in the same order), so clocks, header timelines, and
  outcomes are byte-identical to the reference.

Backend selection mirrors ``REPRO_KERNEL`` (DESIGN.md §12) through the
``REPRO_WALK`` environment variable:

* ``auto`` (default) — numpy when importable, the batch has at least
  :data:`AUTO_MIN_WALK_BATCH` eligible walks, and the context is
  vector-safe (reference engine, ground-truth view, no trace, the
  constant-delay paper model); reference otherwise.
* ``python`` — always the reference backend.
* ``numpy`` — force the vector path for every *eligible* walk (batches
  of one included); ineligible walks — callback specs, degraded
  contexts, traces, non-constant delay models — always stay on the
  reference backend.  Raises when numpy is not importable.

Observability: every walk executed through the plane increments
``simulator.walks.batched`` (vector path) or ``simulator.walks.fallback``
(reference path — the engine entry points count themselves, so direct
per-packet calls are visible too), and each batch records its size in the
``simulator.walks.batch_size`` histogram.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import obs
from ..errors import SimulationError
from ..topology.npcsr import numpy_or_none, numpy_view
from .delays import PaperDelayModel
from .engine import ForwardingEngine, RouteOutcome
from .packet import Packet
from .stats import RecoveryAccounting
from .walkspec import (
    CallbackWalkSpec,
    SourceRouteSpec,
    TableWalkOutcome,
    TableWalkSpec,
)

#: Environment variable selecting the walk backend.
WALK_ENV = "REPRO_WALK"

_WALK_MODES = ("auto", "python", "numpy")

#: ``auto`` only vectorizes batches with at least this many eligible
#: walks — below it the per-batch numpy setup rivals the reference loop.
AUTO_MIN_WALK_BATCH = 16

#: Histogram bucket edges for the per-execute batch-size distribution.
BATCH_SIZE_EDGES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: Walks executed on the vector backend in this process — lets tests
#: assert the numpy path actually ran, symmetric with
#: ``routing.kernels.numpy_run_count``.
_BATCHED_RUNS = 0


def batched_walk_count() -> int:
    """Number of walks executed on the vector backend by this process."""
    return _BATCHED_RUNS


def walk_mode() -> str:
    """The validated ``REPRO_WALK`` setting (``auto`` when unset)."""
    from ..routing.kernels import env_backend_mode

    return env_backend_mode(WALK_ENV, _WALK_MODES, SimulationError)


def numpy_walks_available() -> bool:
    """Whether the vector walk backend can be used in this process."""
    return numpy_or_none() is not None


def run_table_walk(
    engine: ForwardingEngine,
    packet: Packet,
    next_hops,
    destination: int,
    budget: int,
    accounting: RecoveryAccounting,
) -> TableWalkOutcome:
    """Reference table walk: one packet, one next-hop table.

    Exactly the historical MRC loop: destination check before table
    lookup, an unreachable table hop drops (MRC may switch configurations
    only once), an exhausted budget truncates.  Loss injection does *not*
    apply here — table walks carry data packets, and the chaos loss
    stream samples recovery transmissions (walks and source routes) only,
    matching the historical per-scheme behaviour; a chaos engine still
    advances the hop clock through ``forward_one_hop``.
    """
    obs.inc("simulator.walks.fallback")
    visited = [packet.at]
    view = engine.view
    for _ in range(budget):
        current = packet.at
        if current == destination:
            return TableWalkOutcome(visited=visited, reached=True)
        nxt = next_hops.get(current)
        if nxt is None:
            return TableWalkOutcome(
                visited=visited,
                reached=False,
                drop_node=current,
                drop_reason=f"no table next hop at {current}",
            )
        if not view.is_neighbor_reachable(current, nxt):
            return TableWalkOutcome(
                visited=visited,
                reached=False,
                drop_node=current,
                drop_reason=f"table hop {current} -> {nxt} is unreachable",
            )
        engine.forward_one_hop(packet, nxt, accounting)
        visited.append(nxt)
    return TableWalkOutcome(
        visited=visited,
        reached=False,
        drop_node=packet.at,
        drop_reason=f"table walk exceeded {budget} hops without terminating",
        truncated=True,
    )


class _WalkRequest:
    __slots__ = ("spec", "packet", "accounting")

    def __init__(self, spec, packet: Packet, accounting: RecoveryAccounting):
        self.spec = spec
        self.packet = packet
        self.accounting = accounting


class _PairIndex:
    """Vectorized ``(node, neighbor) -> link id`` lookup for one CSR view.

    Built once per topology version and cached on the view
    (``CSRView.walk_np``): arc keys ``u_pos * n + v_pos`` sorted with
    their link ids, so a whole batch of route hops resolves with one
    ``searchsorted``.
    """

    __slots__ = ("np", "ids", "keys", "lids", "n", "m")

    def __init__(self, csr) -> None:
        np = numpy_or_none()
        assert np is not None
        mirror = numpy_view(csr)
        assert mirror is not None
        self.np = np
        self.ids = mirror.ids
        self.n = csr.n
        deg = np.diff(mirror.indptr)
        u = np.repeat(np.arange(csr.n, dtype=np.int64), deg)
        keys = u * np.int64(csr.n) + mirror.nbr
        order = np.argsort(keys, kind="stable")
        self.keys = keys[order]
        self.lids = mirror.lid[order]
        self.m = int(len(keys))

    def positions(self, nodes):
        """(positions, valid) for an array of node ids."""
        np = self.np
        pos = np.searchsorted(self.ids, nodes)
        clipped = np.minimum(pos, len(self.ids) - 1)
        valid = self.ids[clipped] == nodes
        return clipped, valid

    def arc_lids(self, pos_u, pos_v):
        """(lids, found) for arrays of endpoint positions."""
        np = self.np
        keys = pos_u * np.int64(self.n) + pos_v
        j = np.searchsorted(self.keys, keys)
        jc = np.minimum(j, self.m - 1)
        found = self.keys[jc] == keys
        return self.lids[jc], found


def _pair_index(csr) -> _PairIndex:
    cached = csr.walk_np
    if cached is None:
        cached = _PairIndex(csr)
        csr.walk_np = cached
    return cached


def _replay_hops(
    packet: Packet,
    accounting: RecoveryAccounting,
    hops: int,
    hop_delay: float,
    header_bytes: int,
    final_node: int,
) -> None:
    """Apply ``hops`` constant-delay hops exactly as ``record_hop`` would.

    The loop performs the same sequential float additions in the same
    order as per-hop ``clock += delay``, so the clock and every timeline
    entry are bit-identical to the reference backend.  Locals are bound
    once — this runs per packet and is the vector path's Python floor.
    """
    if hops <= 0:
        return
    clock = accounting.clock
    append = accounting.header_timeline.append
    for _ in range(hops):
        clock += hop_delay
        append((clock, header_bytes))
    accounting.clock = clock
    accounting.hops_traveled += hops
    packet.at = final_node
    packet.recovery_hops += hops


class WalkBatch:
    """Executes a batch of walk specs under one forwarding context.

    Usage::

        batch = WalkBatch(engine)
        h = batch.add(spec, packet, accounting)
        outcome = batch.execute().result(h)

    ``execute`` runs every request exactly once; ineligible or demoted
    requests run on the reference backend *in insertion order* (the
    property seeded fault streams rely on).  A request that raises has
    its exception captured and re-raised from :meth:`result`, so one bad
    case cannot poison its batch neighbours.
    """

    def __init__(self, engine: Optional[ForwardingEngine]) -> None:
        self.engine = engine
        self._requests: List[_WalkRequest] = []
        self._results: Optional[List[object]] = None

    # -- request builders ----------------------------------------------

    def add(self, spec, packet: Packet, accounting: RecoveryAccounting) -> int:
        """Queue one spec; returns the handle to pass to :meth:`result`."""
        if self._results is not None:
            raise SimulationError("WalkBatch already executed; create a new batch")
        if self.engine is None:
            raise SimulationError("WalkBatch has no engine to execute walks with")
        self._requests.append(_WalkRequest(spec, packet, accounting))
        return len(self._requests) - 1

    def add_route(
        self, packet: Packet, route: List[int], accounting: RecoveryAccounting
    ) -> int:
        return self.add(SourceRouteSpec(route=list(route)), packet, accounting)

    def add_table_walk(
        self,
        packet: Packet,
        next_hops,
        destination: int,
        budget: int,
        accounting: RecoveryAccounting,
    ) -> int:
        return self.add(
            TableWalkSpec(next_hops=next_hops, destination=destination, budget=budget),
            packet,
            accounting,
        )

    def add_callback_walk(
        self,
        packet: Packet,
        decide,
        accounting: RecoveryAccounting,
        max_hops: Optional[int] = None,
        on_overrun: str = "raise",
    ) -> int:
        return self.add(
            CallbackWalkSpec(decide=decide, max_hops=max_hops, on_overrun=on_overrun),
            packet,
            accounting,
        )

    # -- execution ------------------------------------------------------

    def execute(self) -> "WalkBatch":
        if self._results is not None:
            raise SimulationError("WalkBatch already executed")
        requests = self._requests
        results: List[object] = [None] * len(requests)
        self._results = results
        if not requests:
            return self
        obs.observe("simulator.walks.batch_size", len(requests), BATCH_SIZE_EDGES)

        vector_idx = self._select_vector_requests()
        if vector_idx:
            vector_idx = set(self._execute_vector(vector_idx, results))
        # Reference pass, in insertion order: everything the vector path
        # did not (or could not) take.  Order matters — seeded fault
        # streams draw once per prospective hop in walk order.
        for i, request in enumerate(requests):
            if i in vector_idx:
                continue
            try:
                results[i] = self._run_reference(request)
            except Exception as exc:  # noqa: BLE001 — re-raised in result()
                results[i] = _CapturedError(exc)
        return self

    def result(self, handle: int):
        """The outcome of one request, re-raising its captured exception."""
        if self._results is None:
            raise SimulationError("WalkBatch.result() before execute()")
        outcome = self._results[handle]
        if isinstance(outcome, _CapturedError):
            raise outcome.exc
        return outcome

    # -- backend selection ---------------------------------------------

    def _select_vector_requests(self) -> List[int]:
        mode = walk_mode()
        if mode == "python":
            return []
        if mode == "numpy" and not numpy_walks_available():
            raise SimulationError(
                f"{WALK_ENV}=numpy but numpy is not importable; "
                "install numpy or unset the variable"
            )
        if not self._vector_context_ok():
            return []
        eligible = [
            i
            for i, request in enumerate(self._requests)
            if isinstance(request.spec, (SourceRouteSpec, TableWalkSpec))
        ]
        if mode == "auto" and (
            not numpy_walks_available() or len(eligible) < AUTO_MIN_WALK_BATCH
        ):
            return []
        return eligible

    def _vector_context_ok(self) -> bool:
        from ..chaos.lowering import walk_context_vector_safe

        engine = self.engine
        if not walk_context_vector_safe(engine):
            return False
        if engine.trace is not None:
            return False
        # Only the constant paper model has a closed-form per-hop delay
        # the replay can reuse; distance models vary per link.
        return type(engine.delay_model) is PaperDelayModel

    # -- reference backend ---------------------------------------------

    def _run_reference(self, request: _WalkRequest):
        spec = request.spec
        engine = self.engine
        if isinstance(spec, SourceRouteSpec):
            return engine.follow_source_route_outcome(
                request.packet, spec.route, request.accounting
            )
        if isinstance(spec, TableWalkSpec):
            return run_table_walk(
                engine,
                request.packet,
                spec.next_hops,
                spec.destination,
                spec.budget,
                request.accounting,
            )
        if isinstance(spec, CallbackWalkSpec):
            return engine.walk_outcome(
                request.packet,
                spec.decide,
                request.accounting,
                max_hops=spec.max_hops,
                on_overrun=spec.on_overrun,
            )
        raise SimulationError(f"unknown walk spec {type(spec).__name__}")

    # -- vector backend -------------------------------------------------

    def _execute_vector(self, indices: List[int], results: List[object]) -> List[int]:
        """Run eligible requests vectorized; returns the handled indices."""
        global _BATCHED_RUNS
        engine = self.engine
        delay = engine.delay_model.router_delay + engine.delay_model.propagation
        csr = engine.topo.csr()
        pidx = _pair_index(csr)
        np = pidx.np
        flags = np.frombuffer(
            engine.view.scenario.failed_link_flags(), dtype=np.uint8
        )

        routes: List[int] = []
        tables: List[int] = []
        for i in indices:
            spec = self._requests[i].spec
            if isinstance(spec, SourceRouteSpec):
                request = self._requests[i]
                # Validation the reference would raise on (empty route,
                # start mismatch) demotes to the reference backend so the
                # exact exception comes from the canonical code path.
                if not spec.route or spec.route[0] != request.packet.at:
                    continue
                routes.append(i)
            else:
                tables.append(i)

        handled: List[int] = []
        if routes:
            handled.extend(
                self._routes_vector(routes, results, pidx, flags, delay)
            )
        if tables:
            handled.extend(
                self._tables_vector(tables, results, pidx, flags, delay)
            )
        if handled:
            _BATCHED_RUNS += len(handled)
            obs.inc("simulator.walks.batched", len(handled))
        return handled

    def _routes_vector(
        self, indices: List[int], results: List[object], pidx, flags, delay: float
    ) -> List[int]:
        np = pidx.np
        requests = self._requests
        cat_list: List[int] = []
        lens = np.empty(len(indices), dtype=np.int64)
        for k, i in enumerate(indices):
            route = requests[i].spec.route
            cat_list.extend(route)
            lens[k] = len(route)
        cat = np.asarray(cat_list, dtype=np.int64)
        pos, ok_node = pidx.positions(cat)

        ends = np.cumsum(lens)
        pair_mask = np.ones(len(cat), dtype=bool)
        pair_mask[ends - 1] = False
        pu = np.flatnonzero(pair_mask)
        lids, found = pidx.arc_lids(pos[pu], pos[pu + 1])
        ok_pair = found & ok_node[pu] & ok_node[pu + 1]
        blocked = (flags[lids] != 0) & ok_pair

        pair_counts = lens - 1
        pair_ends = np.cumsum(pair_counts)
        pair_starts = pair_ends - pair_counts
        # Requests whose route names an unknown node or non-adjacent hop
        # demote to the reference backend for its exact error semantics.
        bad = np.zeros(len(indices), dtype=bool)
        bad_pos = np.flatnonzero(~ok_pair)
        if len(bad_pos):
            bad_req = np.searchsorted(pair_ends, bad_pos, side="right")
            bad[bad_req] = True

        block_pos = np.flatnonzero(blocked)
        first_from = np.searchsorted(block_pos, pair_starts)

        handled: List[int] = []
        for k, i in enumerate(indices):
            if bad[k]:
                continue
            request = requests[i]
            route = request.spec.route
            npairs = int(pair_counts[k])
            j = int(first_from[k])
            if j < len(block_pos) and block_pos[j] < pair_ends[k]:
                hops = int(block_pos[j] - pair_starts[k])
                delivered = False
            else:
                hops = npairs
                delivered = True
            header_bytes = request.packet.header.recovery_bytes()
            _replay_hops(
                request.packet,
                request.accounting,
                hops,
                delay,
                header_bytes,
                route[hops],
            )
            if delivered:
                results[i] = RouteOutcome(delivered=True, drop_node=None)
            else:
                results[i] = RouteOutcome(
                    delivered=False,
                    drop_node=route[hops],
                    drop_reason=(
                        f"route hop {route[hops]} -> {route[hops + 1]} is "
                        f"unreachable (failure missed by phase 1)"
                    ),
                )
            handled.append(i)
        return handled

    def _tables_vector(
        self, indices: List[int], results: List[object], pidx, flags, delay: float
    ) -> List[int]:
        np = pidx.np
        requests = self._requests
        groups: Dict[Tuple[int, int, int], List[int]] = {}
        for i in indices:
            spec = requests[i].spec
            key = (id(spec.next_hops), spec.destination, spec.budget)
            groups.setdefault(key, []).append(i)

        handled: List[int] = []
        for (_, destination, budget), members in groups.items():
            spec = requests[members[0]].spec
            compiled = self._compile_table(spec.next_hops, pidx)
            if compiled is None:
                continue  # table names a non-adjacent hop: reference path
            nh_pos, nh_lid = compiled
            dest_arr, dest_ok = pidx.positions(
                np.asarray([destination], dtype=np.int64)
            )
            starts, starts_ok = pidx.positions(
                np.asarray([requests[i].packet.at for i in members], dtype=np.int64)
            )
            if not bool(dest_ok[0]) or not bool(starts_ok.all()):
                continue
            dest_pos = int(dest_arr[0])
            self._lockstep_tables(
                members,
                results,
                pidx,
                flags,
                delay,
                nh_pos,
                nh_lid,
                starts,
                dest_pos,
                budget,
            )
            handled.extend(members)
        return handled

    @staticmethod
    def _compile_table(next_hops, pidx):
        np = pidx.np
        if not next_hops:
            nh_pos = np.full(pidx.n, -1, dtype=np.int64)
            return nh_pos, nh_pos
        nodes = np.fromiter(next_hops.keys(), dtype=np.int64, count=len(next_hops))
        hops = np.fromiter(next_hops.values(), dtype=np.int64, count=len(next_hops))
        pos_u, ok_u = pidx.positions(nodes)
        pos_v, ok_v = pidx.positions(hops)
        lids, found = pidx.arc_lids(pos_u, pos_v)
        if not bool((ok_u & ok_v & found).all()):
            return None
        nh_pos = np.full(pidx.n, -1, dtype=np.int64)
        nh_lid = np.full(pidx.n, -1, dtype=np.int64)
        nh_pos[pos_u] = pos_v
        nh_lid[pos_u] = lids
        return nh_pos, nh_lid

    def _lockstep_tables(
        self,
        members: List[int],
        results: List[object],
        pidx,
        flags,
        delay: float,
        nh_pos,
        nh_lid,
        starts,
        dest_pos: int,
        budget: int,
    ) -> None:
        np = pidx.np
        requests = self._requests
        count = len(members)
        cur = starts.astype(np.int64, copy=True)
        active = np.arange(count, dtype=np.int64)
        # 1 reached / 2 stuck / 3 blocked / 4 truncated
        status = np.zeros(count, dtype=np.int8)
        block_next = np.full(count, -1, dtype=np.int64)
        hist_who: List[object] = []
        hist_pos: List[object] = []
        steps = 0
        while active.size:
            if steps == budget:
                status[active] = 4
                break
            c = cur[active]
            reached = c == dest_pos
            if reached.any():
                status[active[reached]] = 1
                active = active[~reached]
                c = cur[active]
                if not active.size:
                    break
            nxt = nh_pos[c]
            stuck = nxt < 0
            if stuck.any():
                status[active[stuck]] = 2
                keep = ~stuck
                active = active[keep]
                c = c[keep]
                nxt = nxt[keep]
                if not active.size:
                    break
            lids = nh_lid[c]
            blocked = flags[lids] != 0
            if blocked.any():
                hit = active[blocked]
                status[hit] = 3
                block_next[hit] = nxt[blocked]
                keep = ~blocked
                active = active[keep]
                nxt = nxt[keep]
                if not active.size:
                    break
            cur[active] = nxt
            hist_who.append(active.copy())
            hist_pos.append(nxt.copy())
            steps += 1

        # Reconstruct per-packet hop sequences from the step history.
        seqs: List[List[int]] = [[] for _ in range(count)]
        if hist_who:
            all_who = np.concatenate(hist_who)
            all_pos = np.concatenate(hist_pos)
            all_step = np.concatenate(
                [np.full(len(w), s, dtype=np.int64) for s, w in enumerate(hist_who)]
            )
            order = np.lexsort((all_step, all_who))
            nodes_sorted = pidx.ids[all_pos[order]].tolist()
            counts = np.bincount(all_who, minlength=count)
            offset = 0
            for k in range(count):
                c_k = int(counts[k])
                seqs[k] = nodes_sorted[offset : offset + c_k]
                offset += c_k

        for k, i in enumerate(members):
            request = requests[i]
            packet = request.packet
            start_node = packet.at
            seq = seqs[k]
            visited = [start_node] + seq
            final = visited[-1]
            header_bytes = packet.header.recovery_bytes()
            _replay_hops(
                packet, request.accounting, len(seq), delay, header_bytes, final
            )
            code = int(status[k])
            if code == 1:
                results[i] = TableWalkOutcome(visited=visited, reached=True)
            elif code == 2:
                results[i] = TableWalkOutcome(
                    visited=visited,
                    reached=False,
                    drop_node=final,
                    drop_reason=f"no table next hop at {final}",
                )
            elif code == 3:
                nxt_id = int(pidx.ids[block_next[k]])
                results[i] = TableWalkOutcome(
                    visited=visited,
                    reached=False,
                    drop_node=final,
                    drop_reason=f"table hop {final} -> {nxt_id} is unreachable",
                )
            else:
                results[i] = TableWalkOutcome(
                    visited=visited,
                    reached=False,
                    drop_node=final,
                    drop_reason=(
                        f"table walk exceeded {budget} hops without terminating"
                    ),
                    truncated=True,
                )


class _CapturedError:
    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc
