"""The walk hop budget — one formula, every walk caller.

Theorem 1 bounds a correct phase-1 walk by twice the link count (each
link is traversed at most once per direction), so exceeding four times
the link count is an implementation error, not a long walk.  The same
factor-four-plus-slack shape guards table-driven walks, which visit each
*node* at most once per configuration and are bounded in node count.

Before this module the ``4 * x + 8`` formula was duplicated across
``core/exhaustive.py``, the engine default in ``simulator/engine.py``,
and the MRC walk loop; the regression test in
``tests/simulator/test_budget.py`` pins every caller to these helpers.
"""

from __future__ import annotations

#: Safety factor over the theoretical walk bound.
HOP_BUDGET_FACTOR = 4

#: Fixed slack so degenerate tiny topologies still get a usable budget.
HOP_BUDGET_SLACK = 8


def walk_hop_budget(link_count: int) -> int:
    """Hop budget of a link-bounded walk (phase-1 sweeps, DFS collectors)."""
    return HOP_BUDGET_FACTOR * link_count + HOP_BUDGET_SLACK


def table_walk_hop_budget(node_count: int) -> int:
    """Hop budget of a node-bounded table walk (MRC configuration paths)."""
    return HOP_BUDGET_FACTOR * node_count + HOP_BUDGET_SLACK
