"""Header compression for recorded link ids (§III-E).

The paper notes that the multi-area header overhead can be reduced with
the *mapping technique* of FCP: instead of carrying raw 16-bit link ids,
carry a compact encoding.  This module implements a practical variant —
**sorted delta + varint** coding:

* link ids are sorted and delta-encoded (ids recorded by one walk cluster
  around the failure area, so deltas are small),
* each delta is written as a LEB128-style varint (7 data bits per byte).

A one-byte count prefix makes the field self-delimiting.  The codec is
lossless for the id *set* (recording order is irrelevant once the walk is
over: phase 2 only needs the set), and the ablation benchmark
``bench_header_compression`` measures the byte savings on real phase-1
headers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import SimulationError
from ..topology import Link, Topology
from .packet import BYTES_PER_ID, RecoveryHeader

#: Maximum ids a single compressed field can hold (count prefix is 1 byte).
MAX_IDS = 255


def encode_varint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise SimulationError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple:
    """Decode one varint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SimulationError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise SimulationError("varint too long")


def encode_id_set(ids: Iterable[int]) -> bytes:
    """Compress a set of non-negative ids (sorted delta + varint)."""
    ordered = sorted(set(ids))
    if len(ordered) > MAX_IDS:
        raise SimulationError(f"too many ids to compress: {len(ordered)}")
    out = bytearray([len(ordered)])
    previous = 0
    for i, value in enumerate(ordered):
        delta = value if i == 0 else value - previous
        out.extend(encode_varint(delta))
        previous = value
    return bytes(out)


def decode_id_set(data: bytes) -> List[int]:
    """Inverse of :func:`encode_id_set`."""
    if not data:
        raise SimulationError("empty compressed id field")
    count = data[0]
    ids: List[int] = []
    offset = 1
    value = 0
    for i in range(count):
        delta, offset = decode_varint(data, offset)
        value = delta if i == 0 else value + delta
        ids.append(value)
    if offset != len(data):
        raise SimulationError("trailing bytes after compressed id field")
    return ids


def compress_links(topo: Topology, links: Sequence[Link]) -> bytes:
    """Compress a list of links via their topology link indices."""
    return encode_id_set(topo.link_index(link) for link in links)


def decompress_links(topo: Topology, data: bytes) -> List[Link]:
    """Inverse of :func:`compress_links` (sorted by link index)."""
    return [topo.link_at(index) for index in decode_id_set(data)]


def compressed_header_bytes(topo: Topology, header: RecoveryHeader) -> int:
    """Size of the header's variable fields under compression.

    Compares against :meth:`RecoveryHeader.recovery_bytes`, which charges
    ``BYTES_PER_ID`` per raw id.  The source route is *not* compressed —
    its order is semantically significant — so it keeps the raw cost.
    """
    total = 0
    if header.failed_links:
        total += len(compress_links(topo, header.failed_links))
    if header.cross_links:
        total += len(compress_links(topo, header.cross_links))
    total += BYTES_PER_ID * len(header.source_route)
    return total


def raw_header_bytes(header: RecoveryHeader) -> int:
    """The uncompressed cost of the same variable fields."""
    return BYTES_PER_ID * (
        len(header.failed_links) + len(header.cross_links) + len(header.source_route)
    )
