"""Per-hop delay models.

§IV-B fixes the one-hop delay at 1.8 ms: 100 microseconds through a router
(99th-percentile single-hop delay on an OC-12 backbone, Papagiannaki et
al.) plus 1.7 ms propagation for an average 500 km link.
:class:`PaperDelayModel` reproduces exactly that; :class:`DistanceDelayModel`
derives propagation from the embedded link length instead, for studies
where geometry should matter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..topology import Link, Topology

#: 100 microseconds through a router (§IV-B).
ROUTER_DELAY_S = 100e-6

#: 1.7 ms propagation on an average 500 km link (§IV-B).
PAPER_PROPAGATION_S = 1.7e-3

#: Propagation speed implied by the paper's numbers: 1.7 ms / 500 km.
SECONDS_PER_KM = PAPER_PROPAGATION_S / 500.0


class DelayModel(ABC):
    """Delay of one hop over a given link."""

    @abstractmethod
    def hop_delay(self, topo: Topology, link: Link) -> float:
        """Seconds for one traversal of ``link`` (router + propagation)."""


class PaperDelayModel(DelayModel):
    """The fixed 1.8 ms/hop model of §IV-B."""

    def __init__(
        self,
        router_delay: float = ROUTER_DELAY_S,
        propagation: float = PAPER_PROPAGATION_S,
    ) -> None:
        self.router_delay = router_delay
        self.propagation = propagation

    def hop_delay(self, topo: Topology, link: Link) -> float:
        return self.router_delay + self.propagation


class DistanceDelayModel(DelayModel):
    """Propagation proportional to embedded link length.

    ``km_per_unit`` maps simulation-area coordinates to kilometres; the
    default calibrates the paper's 2000-unit area so that an average link
    is a few hundred km, comparable to the fixed model.
    """

    def __init__(
        self,
        km_per_unit: float = 1.0,
        router_delay: float = ROUTER_DELAY_S,
        seconds_per_km: float = SECONDS_PER_KM,
    ) -> None:
        self.km_per_unit = km_per_unit
        self.router_delay = router_delay
        self.seconds_per_km = seconds_per_km

    def hop_delay(self, topo: Topology, link: Link) -> float:
        km = topo.euclidean_length(link) * self.km_per_unit
        return self.router_delay + km * self.seconds_per_km


#: Shared default instance: the model every experiment uses unless told
#: otherwise, matching Fig. 7's 1.8 ms/hop.
DEFAULT_DELAY_MODEL = PaperDelayModel()
