"""Hop-by-hop forwarding engine.

The protocols (RTR phase 1, FCP wandering, MRC configuration switching,
source-routed delivery) all reduce to the same mechanical loop: ask a
per-node decision function for the next hop, check local reachability,
move the packet, account the hop.  The engine owns that loop so every
protocol pays delays and header bytes identically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import ForwardingLoopError
from ..failures import LocalView
from ..topology import Link, Topology
from .delays import DEFAULT_DELAY_MODEL, DelayModel
from .packet import Packet
from .stats import RecoveryAccounting
from .trace import ForwardingTrace, HopEvent

#: A decision function: given the current node and the packet, return the
#: next hop, or ``None`` to stop the walk at the current node.
NextHopFn = Callable[[int, Packet], Optional[int]]


class ForwardingEngine:
    """Moves packets over the surviving topology."""

    def __init__(
        self,
        topo: Topology,
        view: LocalView,
        delay_model: DelayModel = DEFAULT_DELAY_MODEL,
        trace: Optional[ForwardingTrace] = None,
    ) -> None:
        self.topo = topo
        self.view = view
        self.delay_model = delay_model
        #: Optional structured trace of every hop (see simulator.trace).
        self.trace = trace

    def forward_one_hop(
        self, packet: Packet, next_node: int, accounting: RecoveryAccounting
    ) -> None:
        """Transmit ``packet`` from its current node to ``next_node``.

        The caller must have verified reachability; this only moves and
        accounts.  Header bytes are sampled *as transmitted* on this hop.
        """
        link = Link.of(packet.at, next_node)
        delay = self.delay_model.hop_delay(self.topo, link)
        header_bytes = packet.header.recovery_bytes()
        accounting.record_hop(delay, header_bytes)
        if self.trace is not None:
            self.trace.record(
                HopEvent(
                    time=accounting.clock,
                    sender=packet.at,
                    receiver=next_node,
                    link=link,
                    mode=packet.header.mode,
                    header_bytes=header_bytes,
                    packet_id=packet.packet_id,
                )
            )
        packet.at = next_node
        packet.recovery_hops += 1

    def walk(
        self,
        packet: Packet,
        decide: NextHopFn,
        accounting: RecoveryAccounting,
        max_hops: Optional[int] = None,
    ) -> List[int]:
        """Drive ``packet`` until ``decide`` returns ``None``.

        Returns the sequence of nodes visited (including the start).  The
        hop budget defaults to ``4 * link_count + 8``: Theorem 1 bounds a
        correct phase-1 walk by twice the links (each traversed at most once
        per direction), so exceeding four times is an implementation error
        and raises :class:`ForwardingLoopError` with the partial walk.
        """
        budget = max_hops if max_hops is not None else 4 * self.topo.link_count + 8
        visited = [packet.at]
        for _ in range(budget):
            next_node = decide(packet.at, packet)
            if next_node is None:
                return visited
            if not self.view.is_neighbor_reachable(packet.at, next_node):
                raise ForwardingLoopError(
                    f"decision function chose unreachable neighbor {next_node} "
                    f"from {packet.at}",
                    visited,
                )
            self.forward_one_hop(packet, next_node, accounting)
            visited.append(next_node)
        raise ForwardingLoopError(
            f"walk exceeded {budget} hops without terminating", visited
        )

    def follow_source_route(
        self,
        packet: Packet,
        route: List[int],
        accounting: RecoveryAccounting,
    ) -> Tuple[bool, Optional[int]]:
        """Forward ``packet`` along an explicit route, stopping at failures.

        Returns ``(delivered, drop_node)``.  §III-D: if the recovery path
        contains a failure RTR missed, the packet is simply discarded at the
        node that detects it.
        """
        if route[0] != packet.at:
            raise ForwardingLoopError(
                f"source route starts at {route[0]} but packet is at {packet.at}",
                [packet.at],
            )
        for next_node in route[1:]:
            if not self.view.is_neighbor_reachable(packet.at, next_node):
                return False, packet.at
            self.forward_one_hop(packet, next_node, accounting)
        return True, None
