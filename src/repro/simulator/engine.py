"""Hop-by-hop forwarding engine.

The protocols (RTR phase 1, FCP wandering, MRC configuration switching,
source-routed delivery) all reduce to the same mechanical loop: ask a
per-node decision function for the next hop, check local reachability,
move the packet, account the hop.  The engine owns that loop so every
protocol pays delays and header bytes identically.

Walks and source-routed deliveries report through :class:`WalkOutcome`
and :class:`RouteOutcome` so degraded-mode callers (``repro.chaos``) can
distinguish a completed walk from a truncated or lost one without
catching exceptions; the classic :meth:`ForwardingEngine.walk` /
:meth:`ForwardingEngine.follow_source_route` entry points keep their
strict raise-on-anomaly semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .. import obs
from ..errors import ForwardingLoopError, SimulationError
from ..failures import LocalView
from ..topology import Link, Topology
from .budget import walk_hop_budget
from .delays import DEFAULT_DELAY_MODEL, DelayModel
from .packet import Packet
from .stats import RecoveryAccounting
from .trace import DropEvent, ForwardingTrace, HopEvent

#: A decision function: given the current node and the packet, return the
#: next hop, or ``None`` to stop the walk at the current node.
NextHopFn = Callable[[int, Packet], Optional[int]]


@dataclass
class WalkOutcome:
    """Result of one :meth:`ForwardingEngine.walk_outcome` drive.

    Exactly one of the three terminal conditions holds: ``completed``
    (the decision function returned ``None``), ``truncated`` (the hop
    budget ran out in non-strict mode), or ``lost`` (a fault injector
    dropped the packet mid-walk).
    """

    visited: List[int]
    completed: bool
    truncated: bool = False
    lost: bool = False
    #: Node holding the packet when it was truncated or lost.
    drop_node: Optional[int] = None
    drop_reason: Optional[str] = None


@dataclass
class RouteOutcome:
    """Result of one source-routed delivery attempt.

    ``lost`` distinguishes a chaos-injected packet loss from the §III-D
    case of the route containing a failure the initiator missed.
    """

    delivered: bool
    drop_node: Optional[int]
    lost: bool = False
    drop_reason: Optional[str] = None


class ForwardingEngine:
    """Moves packets over the surviving topology."""

    def __init__(
        self,
        topo: Topology,
        view: LocalView,
        delay_model: DelayModel = DEFAULT_DELAY_MODEL,
        trace: Optional[ForwardingTrace] = None,
    ) -> None:
        self.topo = topo
        self.view = view
        self.delay_model = delay_model
        #: Optional structured trace of every hop (see simulator.trace).
        self.trace = trace

    def _chaos_check(self, packet: Packet, next_node: int) -> Optional[str]:
        """Hook: reason the next transmission is dropped, or ``None``.

        The base engine never drops packets; :mod:`repro.chaos` overrides
        this to inject per-hop recovery-packet loss.
        """
        return None

    def forward_one_hop(
        self, packet: Packet, next_node: int, accounting: RecoveryAccounting
    ) -> None:
        """Transmit ``packet`` from its current node to ``next_node``.

        The caller must have verified reachability; this only moves and
        accounts.  Header bytes are sampled *as transmitted* on this hop.
        """
        link = Link.of(packet.at, next_node)
        delay = self.delay_model.hop_delay(self.topo, link)
        header_bytes = packet.header.recovery_bytes()
        accounting.record_hop(delay, header_bytes)
        if self.trace is not None:
            self.trace.record(
                HopEvent(
                    time=accounting.clock,
                    sender=packet.at,
                    receiver=next_node,
                    link=link,
                    mode=packet.header.mode,
                    header_bytes=header_bytes,
                    packet_id=packet.packet_id,
                    span_id=obs.current_span_id(),
                )
            )
        packet.at = next_node
        packet.recovery_hops += 1

    def walk_outcome(
        self,
        packet: Packet,
        decide: NextHopFn,
        accounting: RecoveryAccounting,
        max_hops: Optional[int] = None,
        on_overrun: str = "raise",
    ) -> WalkOutcome:
        """Drive ``packet`` until ``decide`` returns ``None``.

        The hop budget defaults to ``walk_hop_budget(link_count)``
        (:mod:`repro.simulator.budget`): Theorem 1 bounds
        a correct phase-1 walk by twice the links (each traversed at most
        once per direction), so exceeding four times is an implementation
        error.  ``on_overrun`` selects what an exhausted budget means:
        ``"raise"`` (the strict default) raises
        :class:`ForwardingLoopError` with the partial walk, while
        ``"truncate"`` returns a non-fatal :class:`WalkOutcome` with
        ``truncated=True`` so degraded-mode callers can retry or fall back
        instead of aborting a whole experiment sweep.
        """
        obs.inc("simulator.walks.fallback")
        if on_overrun not in ("raise", "truncate"):
            raise ValueError(f"unknown on_overrun mode {on_overrun!r}")
        budget = (
            max_hops if max_hops is not None else walk_hop_budget(self.topo.link_count)
        )
        visited = [packet.at]
        for _ in range(budget):
            next_node = decide(packet.at, packet)
            if next_node is None:
                return WalkOutcome(visited=visited, completed=True)
            if not self.view.is_neighbor_reachable(packet.at, next_node):
                raise ForwardingLoopError(
                    f"decision function chose unreachable neighbor {next_node} "
                    f"from {packet.at}",
                    visited,
                )
            drop_reason = self._chaos_check(packet, next_node)
            if drop_reason is not None:
                self._record_drop(packet, accounting, drop_reason)
                return WalkOutcome(
                    visited=visited,
                    completed=False,
                    lost=True,
                    drop_node=packet.at,
                    drop_reason=drop_reason,
                )
            self.forward_one_hop(packet, next_node, accounting)
            visited.append(next_node)
        if on_overrun == "truncate":
            return WalkOutcome(
                visited=visited,
                completed=False,
                truncated=True,
                drop_node=packet.at,
                drop_reason=f"walk exceeded {budget} hops without terminating",
            )
        raise ForwardingLoopError(
            f"walk exceeded {budget} hops without terminating", visited
        )

    def walk(
        self,
        packet: Packet,
        decide: NextHopFn,
        accounting: RecoveryAccounting,
        max_hops: Optional[int] = None,
    ) -> List[int]:
        """Strict walk: returns the visited nodes, raising on any anomaly."""
        outcome = self.walk_outcome(
            packet, decide, accounting, max_hops=max_hops, on_overrun="raise"
        )
        if outcome.lost:
            # Only possible with a chaos engine driven through the strict
            # entry point; surface it rather than silently returning a
            # partial walk.
            raise SimulationError(
                f"packet lost mid-walk at {outcome.drop_node}: "
                f"{outcome.drop_reason}"
            )
        return outcome.visited

    def follow_source_route_outcome(
        self,
        packet: Packet,
        route: List[int],
        accounting: RecoveryAccounting,
    ) -> RouteOutcome:
        """Forward ``packet`` along an explicit route, stopping at failures.

        §III-D: if the recovery path contains a failure RTR missed, the
        packet is discarded at the node that detects it (``lost=False``);
        a chaos-injected loss is reported with ``lost=True`` so callers
        can retransmit instead of learning a phantom failure.
        """
        obs.inc("simulator.walks.fallback")
        if not route:
            raise SimulationError(
                f"source route is empty: packet {packet.packet_id} at "
                f"{packet.at} toward {packet.destination} has no hops to follow"
            )
        if route[0] != packet.at:
            raise ForwardingLoopError(
                f"source route starts at {route[0]} but packet is at {packet.at}",
                [packet.at],
            )
        for next_node in route[1:]:
            if not self.view.is_neighbor_reachable(packet.at, next_node):
                return RouteOutcome(
                    delivered=False,
                    drop_node=packet.at,
                    drop_reason=(
                        f"route hop {packet.at} -> {next_node} is unreachable "
                        f"(failure missed by phase 1)"
                    ),
                )
            drop_reason = self._chaos_check(packet, next_node)
            if drop_reason is not None:
                self._record_drop(packet, accounting, drop_reason)
                return RouteOutcome(
                    delivered=False,
                    drop_node=packet.at,
                    lost=True,
                    drop_reason=drop_reason,
                )
            self.forward_one_hop(packet, next_node, accounting)
        return RouteOutcome(delivered=True, drop_node=None)

    def follow_source_route(
        self,
        packet: Packet,
        route: List[int],
        accounting: RecoveryAccounting,
    ) -> Tuple[bool, Optional[int]]:
        """Compatibility wrapper returning ``(delivered, drop_node)``."""
        outcome = self.follow_source_route_outcome(packet, route, accounting)
        return outcome.delivered, outcome.drop_node

    def _record_drop(
        self,
        packet: Packet,
        accounting: RecoveryAccounting,
        reason: str,
    ) -> None:
        """Log a packet drop into the trace, if one is attached."""
        if self.trace is not None:
            self.trace.record_drop(
                DropEvent(
                    time=accounting.clock,
                    node=packet.at,
                    mode=packet.header.mode,
                    packet_id=packet.packet_id,
                    reason=reason,
                    span_id=obs.current_span_id(),
                )
            )
