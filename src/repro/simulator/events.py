"""A minimal discrete-event simulation core.

Most of the evaluation is deterministic walk-by-walk accounting, but two
pieces genuinely need a clock: the Fig. 10 transmission-overhead timeline
(packets sent continuously while recovery progresses) and the IGP
convergence interplay in the examples.  This queue is deliberately small:
time-ordered callbacks with stable FIFO tie-breaking.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Action = Callable[[], None]


class EventQueue:
    """A time-ordered callback queue."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Action]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, when: float, action: Action) -> None:
        """Run ``action`` at absolute time ``when`` (>= now)."""
        if when < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self.now}"
            )
        heapq.heappush(self._heap, (when, next(self._counter), action))

    def schedule_in(self, delay: float, action: Action) -> None:
        """Run ``action`` ``delay`` seconds from now."""
        self.schedule(self.now + delay, action)

    @property
    def pending(self) -> int:
        """Number of events waiting."""
        return len(self._heap)

    def step(self) -> bool:
        """Process the next event; False when the queue is empty."""
        if not self._heap:
            return False
        when, _seq, action = heapq.heappop(self._heap)
        self.now = when
        action()
        self.processed += 1
        return True

    def run(
        self, until: Optional[float] = None, max_events: int = 10_000_000
    ) -> float:
        """Drain the queue, optionally stopping at time ``until``.

        Returns the final clock value.  ``max_events`` guards against
        accidental event storms in user code.
        """
        count = 0
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            if count >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            self.step()
            count += 1
        if until is not None:
            self.now = max(self.now, until)
        return self.now
