"""Packets and recovery headers.

§III-B adds three fields to the packet header for RTR's first phase —
``mode``, ``rec_init``, ``failed_link`` — and §III-C adds ``cross_link``;
§III-D adds the source route for the second phase.  FCP's header carries
its own failed-link list plus a source route.  Link and node ids are 16-bit
(§III-B), which is what the byte accounting below charges.

The evaluation's *transmission overhead* is "the number of bytes used for
recording information" (§IV-C), so :meth:`RecoveryHeader.recovery_bytes`
counts exactly the variable recovery payload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..topology import Link

#: 16-bit ids (§III-B).
BYTES_PER_ID = 2

#: mode flag plus the 16-bit recovery-initiator id.
FIXED_RTR_HEADER_BYTES = 1 + BYTES_PER_ID

#: Default payload size assumed by the paper's wasted-transmission metric
#: (§IV-D: "the packet size is 1,000 bytes plus the bytes in the packet
#: header used for recovery").
DEFAULT_PAYLOAD_BYTES = 1000

_packet_ids = itertools.count()


class Mode:
    """Values of the ``mode`` header field (§III-B)."""

    DEFAULT = 0  #: forwarded by the default routing protocol
    COLLECTING = 1  #: forwarded by the first phase of RTR
    SOURCE_ROUTED = 2  #: forwarded on the phase-2 source route


@dataclass
class RecoveryHeader:
    """The variable recovery fields carried in a packet header."""

    mode: int = Mode.DEFAULT
    rec_init: Optional[int] = None
    #: Failed links recorded during RTR phase 1 / FCP traversal, in
    #: insertion order (order matters for byte-timeline accounting).
    failed_links: List[Link] = field(default_factory=list)
    #: Links excluded from crossing (Constraints 1 and 2, §III-C).
    cross_links: List[Link] = field(default_factory=list)
    #: Source route for phase 2 (full recorded path, §III-D).
    source_route: List[int] = field(default_factory=list)

    def record_failed(self, link: Link) -> bool:
        """Record ``link`` in ``failed_link`` if absent; True when added."""
        if link in self.failed_links:
            return False
        self.failed_links.append(link)
        return True

    def record_cross(self, link: Link) -> bool:
        """Record ``link`` in ``cross_link`` if absent; True when added."""
        if link in self.cross_links:
            return False
        self.cross_links.append(link)
        return True

    def recovery_bytes(self) -> int:
        """Bytes of recovery information currently in the header."""
        total = 0
        if self.mode != Mode.DEFAULT:
            total += FIXED_RTR_HEADER_BYTES
        total += BYTES_PER_ID * len(self.failed_links)
        total += BYTES_PER_ID * len(self.cross_links)
        total += BYTES_PER_ID * len(self.source_route)
        return total

    def copy(self) -> "RecoveryHeader":
        """An independent copy (e.g. for per-packet timelines)."""
        return RecoveryHeader(
            mode=self.mode,
            rec_init=self.rec_init,
            failed_links=list(self.failed_links),
            cross_links=list(self.cross_links),
            source_route=list(self.source_route),
        )


@dataclass
class Packet:
    """A data packet moving through the simulated network."""

    source: int
    destination: int
    header: RecoveryHeader = field(default_factory=RecoveryHeader)
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Node the packet currently sits at.
    at: Optional[int] = None
    #: Hops traveled since the recovery initiator took charge.
    recovery_hops: int = 0

    def __post_init__(self) -> None:
        if self.at is None:
            self.at = self.source

    def total_bytes(self) -> int:
        """Payload plus recovery header — the ``s`` of the §IV-D metric."""
        return self.payload_bytes + self.header.recovery_bytes()
