"""Recovery accounting.

The evaluation compares approaches on four cost axes (§IV-C, §IV-D):

* **computational overhead** — number of on-demand shortest-path
  calculations,
* **transmission overhead** — bytes of recovery information in headers,
* **wasted computation** — SP calculations spent on a packet that is
  ultimately discarded,
* **wasted transmission** — ``s * h``: packet size (1000 B payload + the
  recovery header) times hops from the recovery initiator to the node that
  discards the packet.

Protocol implementations report into a :class:`RecoveryAccounting` as they
run; the evaluation layer reads the totals.  The header-byte *timeline*
(``(time, bytes)`` samples at each hop) feeds the Fig. 10 reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..routing import Path


@dataclass
class RecoveryAccounting:
    """Counters one protocol run reports into."""

    sp_computations: int = 0
    #: ``(time_seconds, recovery_header_bytes)`` after each hop transmission.
    header_timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: Hops traveled by the (first) packet since the recovery initiator.
    hops_traveled: int = 0
    #: Clock of the run, advanced by the delay model.
    clock: float = 0.0
    #: Recovery packets retransmitted after an injected loss or truncation.
    retransmissions: int = 0

    def count_sp(self, n: int = 1) -> None:
        """Record ``n`` on-demand shortest-path computations."""
        self.sp_computations += n

    def count_retry(self, n: int = 1) -> None:
        """Record ``n`` recovery-packet retransmissions."""
        self.retransmissions += n

    def advance_clock(self, delay: float) -> None:
        """Advance the clock without a hop (retry backoff, convergence wait)."""
        if delay < 0:
            raise ValueError(f"cannot advance the clock backwards ({delay})")
        self.clock += delay

    def record_hop(self, delay: float, header_bytes: int) -> None:
        """Record one hop transmission carrying ``header_bytes`` of recovery data."""
        self.clock += delay
        self.hops_traveled += 1
        self.header_timeline.append((self.clock, header_bytes))

    def peak_header_bytes(self) -> int:
        """Largest recovery header carried on any hop."""
        if not self.header_timeline:
            return 0
        return max(b for _, b in self.header_timeline)

    def final_header_bytes(self) -> int:
        """Recovery header size on the last recorded hop."""
        if not self.header_timeline:
            return 0
        return self.header_timeline[-1][1]

    def mean_header_bytes(self) -> float:
        """Mean recovery-header size over all hops (0.0 with no hops)."""
        if not self.header_timeline:
            return 0.0
        return math.fsum(b for _, b in self.header_timeline) / len(
            self.header_timeline
        )


@dataclass
class RecoveryResult:
    """Normalized outcome of one recovery attempt by any approach.

    This is the lingua franca of :mod:`repro.eval`: RTR, FCP, and MRC all
    reduce their runs to one of these.
    """

    approach: str
    #: Whether a packet reached the destination.
    delivered: bool
    #: The initiator -> destination path actually used (None if dropped).
    path: Optional[Path]
    accounting: RecoveryAccounting
    #: Duration of RTR's first phase in seconds (0 for other approaches).
    phase1_duration: float = 0.0
    #: Hops of RTR's first-phase walk (0 for other approaches).
    phase1_hops: int = 0
    #: Hops from the initiator to the node that dropped the packet, and the
    #: packet size there — the ``h`` and ``s`` of the §IV-D metric.
    drop_hops: int = 0
    drop_packet_bytes: int = 0
    #: Whether this outcome came from the graceful-degradation ladder
    #: falling back to waiting out OSPF reconvergence (the fate of traffic
    #: when RTR itself could not complete under injected faults).
    fallback: bool = False
    #: Recovery-packet retries (phase-1 retransmissions, phase-2 resends
    #: and §III-D re-invocations) spent on this case.
    retries: int = 0
    #: Whether a congestion-aware sweep refused this recovery at the
    #: initiator because admitting it would push some link past the
    #: utilization cap (traffic shed for congestion-free recovery).  The
    #: packet is discarded before transmission, so no waste accrues.
    admission_dropped: bool = False
    #: When per-case error isolation caught a crash, the formatted
    #: exception; ``None`` for any outcome the protocol itself produced.
    error: Optional[str] = None

    @property
    def status(self) -> str:
        """``delivered`` / ``dropped`` / ``fallback`` / ``error``."""
        if self.error is not None:
            return "error"
        if self.fallback:
            return "fallback"
        return "delivered" if self.delivered else "dropped"

    @property
    def sp_computations(self) -> int:
        """On-demand shortest-path computations of this run."""
        return self.accounting.sp_computations

    def wasted_transmission(self) -> float:
        """``s * h`` for a dropped packet; 0 when delivered (§IV-D)."""
        if self.delivered:
            return 0.0
        return float(self.drop_packet_bytes * self.drop_hops)


def aggregate_results(results: Sequence[RecoveryResult]) -> Dict[str, float]:
    """Sweep-level aggregate of raw recovery outcomes.

    Every denominator is guarded: zero results, or zero *delivered*
    results, yield defined zeros — a sweep where every packet was dropped
    (or that ran no cases at all) still aggregates instead of raising.
    """
    n = len(results)
    delivered = [r for r in results if r.delivered]
    costs = [r.path.cost for r in delivered if r.path is not None]
    sp = [r.sp_computations for r in results]
    wasted = [r.wasted_transmission() for r in results]
    phase1 = [r.phase1_duration for r in results if r.phase1_duration > 0.0]
    return {
        "results": float(n),
        "delivered": float(len(delivered)),
        "delivery_ratio": len(delivered) / n if n else 0.0,
        "mean_path_cost": math.fsum(costs) / len(costs) if costs else 0.0,
        "mean_sp_computations": math.fsum(sp) / n if n else 0.0,
        "total_wasted_transmission": math.fsum(wasted),
        "mean_phase1_duration": (
            math.fsum(phase1) / len(phase1) if phase1 else 0.0
        ),
    }
