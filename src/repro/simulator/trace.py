"""Structured forwarding traces.

When a :class:`~repro.simulator.engine.ForwardingEngine` is given a
:class:`ForwardingTrace`, every hop transmission is recorded as a typed
event — who sent what to whom, when, in which header mode, carrying how
many recovery bytes.  Traces answer the debugging questions the aggregate
accounting cannot ("where exactly did the walk double back?", "when did
the header peak?") and export to plain rows for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..topology import Link


@dataclass(frozen=True)
class HopEvent:
    """One packet transmission over one link."""

    time: float
    sender: int
    receiver: int
    link: Link
    mode: int
    header_bytes: int
    packet_id: int
    #: Id of the enclosing observability span (``repro.obs``) active when
    #: the hop was recorded, or ``None`` when tracing is disabled.
    span_id: Optional[int] = None


@dataclass(frozen=True)
class DropEvent:
    """One packet discarded before its transmission completed.

    Recorded by the chaos engine (injected loss) and by degraded-mode
    walks (truncation); the base engine never drops.
    """

    time: float
    node: int
    mode: int
    packet_id: int
    reason: str
    span_id: Optional[int] = None


@dataclass
class ForwardingTrace:
    """An append-only log of hop events."""

    events: List[HopEvent] = field(default_factory=list)
    drops: List[DropEvent] = field(default_factory=list)

    def record(self, event: HopEvent) -> None:
        """Append one event (called by the engine)."""
        self.events.append(event)

    def record_drop(self, event: DropEvent) -> None:
        """Append one drop event (called by the chaos engine)."""
        self.drops.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def hops_of_packet(self, packet_id: int) -> List[HopEvent]:
        """All hops of one packet, in order."""
        return [e for e in self.events if e.packet_id == packet_id]

    def links_traversed(self) -> Dict[Link, int]:
        """Traversal counts per link (both directions pooled)."""
        counts: Dict[Link, int] = {}
        for event in self.events:
            counts[event.link] = counts.get(event.link, 0) + 1
        return counts

    def double_traversed_links(self) -> List[Link]:
        """Links crossed more than once — the tree-branch signature of
        §IV-B and the Fig. 5 disorder's symptom."""
        return [link for link, n in self.links_traversed().items() if n > 1]

    def drop_count(self) -> int:
        """Number of packets the trace saw discarded."""
        return len(self.drops)

    def peak_header(self) -> Optional[HopEvent]:
        """The event carrying the largest recovery header."""
        if not self.events:
            return None
        return max(self.events, key=lambda e: e.header_bytes)

    def total_recovery_bytes(self) -> int:
        """Sum of recovery-header bytes over all transmissions."""
        return sum(e.header_bytes for e in self.events)

    def duration(self) -> float:
        """Time of the last event (the trace starts at 0)."""
        return self.events[-1].time if self.events else 0.0

    def to_rows(self) -> List[Dict[str, object]]:
        """Plain dict rows (for reports or CSV export)."""
        return [
            {
                "time_ms": round(e.time * 1000.0, 3),
                "from": e.sender,
                "to": e.receiver,
                "link": str(e.link),
                "mode": e.mode,
                "header_bytes": e.header_bytes,
                "packet": e.packet_id,
                "span_id": e.span_id,
            }
            for e in self.events
        ]
