"""Walk specs — the decision layer's contract with the walk plane.

A recovery scheme's ``recover`` used to interleave *deciding* where a
packet goes with *mechanically walking* it there.  The batched forwarding
plane (:mod:`repro.simulator.batch`) splits that: each scheme compiles
its per-case decision into one of three specs, and the mechanics layer
executes any mix of them — per packet on the reference
:class:`~repro.simulator.engine.ForwardingEngine`, or vectorized over CSR
arrays when ``REPRO_WALK`` selects the numpy backend.

* :class:`SourceRouteSpec` — an explicit node sequence (RTR phase-2 and
  r3 source-routed delivery, FCP's per-attempt routes).
* :class:`TableWalkSpec` — a next-hop table indexed by current node
  (MRC backup-configuration trees; any ``RoutingTable``/SPT next-hop map
  lowers to this shape).
* :class:`CallbackWalkSpec` — an opaque per-hop decision function for
  genuinely stateful walks (RTR phase-1's sweeping rule mutates header
  and constraint state every hop); always executed on the reference
  backend.

:class:`WalkPlan` packages one compiled case: either an ``immediate``
:class:`~repro.simulator.stats.RecoveryResult` (walk-free schemes, early
discards) or a spec plus a ``finish`` continuation that folds the walk
outcome into the scheme's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Mapping, Optional

from .packet import Packet
from .stats import RecoveryAccounting

if TYPE_CHECKING:
    from .engine import NextHopFn
    from .stats import RecoveryResult


@dataclass
class SourceRouteSpec:
    """Follow an explicit route; §III-D drop at the first missed failure."""

    route: List[int]


@dataclass
class TableWalkSpec:
    """Walk a next-hop table toward ``destination`` within ``budget`` hops.

    ``next_hops`` maps current node -> next node; a missing entry stops
    the walk (the table has no route from there).  The walk semantics
    mirror the historical MRC loop exactly: the destination check happens
    *before* the table lookup, an unreachable table hop is a drop (never
    an exception unless the table names a non-adjacent node), and an
    exhausted budget truncates.
    """

    next_hops: Mapping[int, int]
    destination: int
    budget: int


@dataclass
class CallbackWalkSpec:
    """An opaque stateful walk — reference backend only."""

    decide: "NextHopFn"
    max_hops: Optional[int] = None
    on_overrun: str = "raise"


@dataclass
class TableWalkOutcome:
    """Result of one table walk (see :class:`TableWalkSpec` semantics)."""

    visited: List[int]
    #: The walk ended standing on its destination.
    reached: bool
    #: Node holding the packet when the walk stopped short (None if reached).
    drop_node: Optional[int] = None
    drop_reason: Optional[str] = None
    #: The hop budget ran out before any terminal condition.
    truncated: bool = False


@dataclass
class WalkPlan:
    """One compiled recovery case: an immediate result or a spec+finish."""

    #: Set when the case needs no walk (walk-free scheme, early discard,
    #: or an isolated error result) — ``spec``/``finish`` are unused then.
    immediate: Optional["RecoveryResult"] = None
    spec: Optional[object] = None
    packet: Optional[Packet] = None
    accounting: Optional[RecoveryAccounting] = None
    #: Folds the walk outcome (RouteOutcome / TableWalkOutcome /
    #: WalkOutcome) into the scheme's RecoveryResult.
    finish: Optional[Callable[[object], "RecoveryResult"]] = field(default=None)
