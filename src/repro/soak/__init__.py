"""Crash-recoverable long-horizon soak runs (ROADMAP item 3, PR 6).

``repro soak`` streams a :mod:`repro.timeline` outage — hours of
simulated time, window by window — through the scheme registry under a
:mod:`repro.traffic` demand matrix, on the hardened sharding pool.
State checkpoints atomically after every batch; ``repro soak --resume``
after a ``kill -9`` produces a ``summary.json`` byte-identical to an
uninterrupted run, and SIGINT/SIGTERM shut down cleanly with a final
checkpoint.
"""

from .config import SoakConfig
from .checkpoint import (
    CHECKPOINT_VERSION,
    SoakCheckpoint,
    load_checkpoint,
    rng_state_from_json,
    rng_state_to_json,
    write_checkpoint,
)
from .service import CHAOS_KILL_ENV, SoakService, run_window_shard

__all__ = [
    "CHAOS_KILL_ENV",
    "CHECKPOINT_VERSION",
    "SoakCheckpoint",
    "SoakConfig",
    "SoakService",
    "load_checkpoint",
    "rng_state_from_json",
    "rng_state_to_json",
    "run_window_shard",
    "write_checkpoint",
]
