"""The soak journal: atomically-written, JSON-exact checkpoints.

A checkpoint captures everything the service needs to continue after a
``kill -9`` as if nothing happened: the timeline cursor, every
completed window's per-approach record dicts (in window order), the
per-window salts plus the parent RNG state that produced them, and the
parent obs snapshot.  Two invariants make resumed summaries
byte-identical to uninterrupted ones:

* **JSON float exactness** — ``json.dumps``/``loads`` round-trip IEEE
  doubles exactly, so records reloaded from the journal equal the
  originals bit for bit;
* **atomic replacement** — checkpoints go through
  :func:`repro.obs.atomic.atomic_write_json`; a crash mid-write leaves
  the previous complete checkpoint, never a truncated one.

The summary is computed *only* from checkpointed state (one code path
for interrupted and uninterrupted runs), so parity is structural, not
accidental.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import SoakError
from ..obs.atomic import atomic_write_json

#: Journal schema version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1

CHECKPOINT_NAME = "checkpoint.json"
CONFIG_NAME = "config.json"
SUMMARY_NAME = "summary.json"
WINDOWS_DIR = "windows"


def rng_state_to_json(state: tuple) -> list:
    """``random.Random.getstate()`` as a JSON-safe nested list."""
    return [state[0], list(state[1]), state[2]]


def rng_state_from_json(data: list) -> tuple:
    """Inverse of :func:`rng_state_to_json` (accepted by ``setstate``)."""
    return (data[0], tuple(data[1]), data[2])


@dataclass
class SoakCheckpoint:
    """Resumable state of one soak run."""

    config_hash: str
    events_digest: str
    n_windows: int
    #: Index of the next window to run.
    cursor: int = 0
    #: Per-window salts drawn so far, in window order.
    salts: List[int] = field(default_factory=list)
    #: Parent RNG state *after* drawing ``salts``.
    rng_state: Optional[list] = None
    #: approach -> per-window record dicts, in window order.
    records: Dict[str, List[dict]] = field(default_factory=dict)
    #: Parent obs snapshot at checkpoint time (None when obs is off).
    obs_snapshot: Optional[dict] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": CHECKPOINT_VERSION,
            "config_hash": self.config_hash,
            "events_digest": self.events_digest,
            "n_windows": self.n_windows,
            "cursor": self.cursor,
            "salts": list(self.salts),
            "rng_state": self.rng_state,
            "records": {k: list(v) for k, v in self.records.items()},
            "obs_snapshot": self.obs_snapshot,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "SoakCheckpoint":
        version = d.get("version")
        if version != CHECKPOINT_VERSION:
            raise SoakError(
                f"checkpoint version {version!r} is not supported "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        return cls(
            config_hash=str(d["config_hash"]),
            events_digest=str(d["events_digest"]),
            n_windows=int(d["n_windows"]),  # type: ignore[arg-type]
            cursor=int(d["cursor"]),  # type: ignore[arg-type]
            salts=list(d.get("salts", [])),  # type: ignore[arg-type]
            rng_state=d.get("rng_state"),  # type: ignore[arg-type]
            records={
                k: list(v) for k, v in dict(d.get("records", {})).items()  # type: ignore[union-attr]
            },
            obs_snapshot=d.get("obs_snapshot"),  # type: ignore[arg-type]
        )

    def restore_rng(self) -> random.Random:
        """The parent salt stream, positioned after ``salts`` draws."""
        rng = random.Random(0)
        if self.rng_state is not None:
            rng.setstate(rng_state_from_json(self.rng_state))
        return rng


def write_checkpoint(run_dir: Path, checkpoint: SoakCheckpoint) -> Path:
    """Atomically replace the run's checkpoint journal."""
    return atomic_write_json(
        Path(run_dir) / CHECKPOINT_NAME, checkpoint.as_dict()
    )


def load_checkpoint(run_dir: Path) -> Optional[SoakCheckpoint]:
    """The run's checkpoint, or ``None`` when it never checkpointed."""
    path = Path(run_dir) / CHECKPOINT_NAME
    if not path.exists():
        return None
    try:
        return SoakCheckpoint.from_dict(json.loads(path.read_text()))
    except (ValueError, KeyError) as exc:
        raise SoakError(f"unreadable checkpoint {path}: {exc}") from exc
