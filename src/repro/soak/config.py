"""Soak-run configuration: one frozen dataclass, JSON round-trippable.

A :class:`SoakConfig` binds a :class:`~repro.timeline.TimelinePlan` to
the workload that streams through it — topology spec, traffic matrix,
flow population, approaches — plus the service knobs (batch size,
workers).  ``to_dict``/``from_dict`` round-trip through JSON exactly,
and :func:`repro.obs.config_hash` of ``to_dict()`` names the run
directory, so the same config always lands in the same place.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Tuple

from ..errors import SoakError
from ..timeline import TimelinePlan


@dataclass(frozen=True)
class SoakConfig:
    """Everything one soak run needs, fully determined by its fields."""

    #: Topology spec: ``grid:RxC[:SPACING]``, an AS name, or a JSON path.
    topology: str = "grid:6x6:400"
    #: Seed for catalog topology construction (grid specs ignore it).
    topology_seed: int = 0
    #: Recovery schemes compared per window.
    approaches: Tuple[str, ...] = ("RTR", "OSPF")
    #: Traffic matrix model and aggregate demand.
    model: str = "gravity"
    total_demand: float = 1000.0
    #: Seed of the demand matrix.
    traffic_seed: int = 0
    #: Synthetic flow population apportioned over the matrix.
    n_flows: int = 100_000
    #: Windows per checkpointed batch.
    checkpoint_every: int = 4
    #: Process-pool workers per batch.
    workers: int = 2
    #: The failure timeline this run replays.
    timeline: TimelinePlan = field(default_factory=TimelinePlan)

    def __post_init__(self) -> None:
        if not self.approaches:
            raise SoakError("soak needs at least one approach")
        if self.checkpoint_every < 1:
            raise SoakError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.workers < 1:
            raise SoakError(f"workers must be >= 1, got {self.workers}")
        if self.n_flows < 0:
            raise SoakError(f"n_flows must be >= 0, got {self.n_flows}")
        object.__setattr__(self, "approaches", tuple(self.approaches))
        if not isinstance(self.timeline, TimelinePlan):
            # from_dict hands a plain dict through; normalize here.
            object.__setattr__(
                self, "timeline", _timeline_from_dict(dict(self.timeline))
            )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict that :meth:`from_dict` inverts exactly."""
        d = asdict(self)
        d["approaches"] = list(self.approaches)
        d["timeline"] = {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in asdict(self.timeline).items()
        }
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "SoakConfig":
        """Rebuild a config from :meth:`to_dict` output (or JSON thereof)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise SoakError(f"unknown soak config keys: {', '.join(unknown)}")
        kwargs = dict(d)
        if "approaches" in kwargs:
            kwargs["approaches"] = tuple(kwargs["approaches"])  # type: ignore[arg-type]
        if "timeline" in kwargs and not isinstance(kwargs["timeline"], TimelinePlan):
            kwargs["timeline"] = _timeline_from_dict(dict(kwargs["timeline"]))  # type: ignore[arg-type]
        try:
            return cls(**kwargs)  # type: ignore[arg-type]
        except TypeError as exc:
            raise SoakError(f"bad soak config: {exc}") from exc


def _timeline_from_dict(d: Dict[str, object]) -> TimelinePlan:
    """Rebuild a :class:`TimelinePlan` from its ``asdict`` form."""
    known = {f.name for f in fields(TimelinePlan)}
    unknown = sorted(set(d) - known)
    if unknown:
        raise SoakError(f"unknown timeline keys: {', '.join(unknown)}")
    for name in ("radius_range", "cascade_delay_range", "repair_delay_range"):
        if name in d:
            d[name] = tuple(d[name])  # type: ignore[arg-type]
    return TimelinePlan(**d)  # type: ignore[arg-type]
