"""The resident soak service: stream a timeline through the registry.

One :class:`SoakService` replays a :class:`~repro.timeline.TimelinePlan`
as convergence windows and pushes each window's scenario + lookahead
fault plan through the scheme registry under a traffic matrix, batching
windows onto the hardened :func:`~repro.eval.sharding.run_sharded` pool
(crashed shards requeue with bounded retry) and checkpointing after
every batch.  The crash-recovery contract:

* ``kill -9`` at any instant, then :meth:`SoakService.resume` — the
  final ``summary.json`` is byte-identical to an uninterrupted run;
* ``SIGINT``/``SIGTERM`` — the current batch finishes, a final
  checkpoint is written, and the service reports ``interrupted``.

The parity guarantee is structural: the summary is computed *only* from
checkpointed per-window records (one code path either way), per-window
salts come from a checkpointed RNG drawn in strict window order, and
every journal write is atomic (:mod:`repro.obs.atomic`).

``REPRO_SOAK_CHAOS_KILL=<marker>:<window>`` makes the worker executing
that window SIGKILL itself once (touching ``marker``) — the test hook
that proves a requeued shard changes nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..errors import SoakError
from ..eval.sharding import run_sharded
from ..obs.atomic import atomic_write_json
from ..routing import RoutingTable, SPTCache
from ..timeline import build_events, build_windows, event_to_dict, events_digest
from ..topology import topology_from_spec
from ..traffic import TrafficEngine, aggregate_flows, generate_matrix
from ..traffic.capacity import provision_capacities
from ..traffic.metrics import TrafficScenarioRecord, summarize_traffic
from .checkpoint import (
    CONFIG_NAME,
    SUMMARY_NAME,
    WINDOWS_DIR,
    SoakCheckpoint,
    load_checkpoint,
    rng_state_to_json,
    write_checkpoint,
)
from .config import SoakConfig

log = obs.get_logger(__name__)

#: Env hook: ``<marker-path>:<window-index>`` — SIGKILL the process
#: running that window once, creating the marker so retries proceed.
CHAOS_KILL_ENV = "REPRO_SOAK_CHAOS_KILL"

#: Per-process memo of expensive per-config state (workers are reused
#: across shards of one soak run; rebuilding per window would dominate).
_WORKER_STATE: Dict[str, tuple] = {}


def _maybe_chaos_kill(window_index: int) -> None:
    spec = os.environ.get(CHAOS_KILL_ENV)
    if not spec:
        return
    marker, _, idx = spec.rpartition(":")
    if not marker or int(idx) != window_index or os.path.exists(marker):
        return
    with open(marker, "w"):
        pass
    os.kill(os.getpid(), signal.SIGKILL)


def _worker_state(config_json: str) -> tuple:
    """Build (or reuse) the per-config heavy state in this process."""
    state = _WORKER_STATE.get(config_json)
    if state is None:
        config = SoakConfig.from_dict(json.loads(config_json))
        topo = topology_from_spec(config.topology, config.topology_seed)
        events = build_events(config.timeline, topo)
        windows = build_windows(topo, config.timeline, events=events)
        matrix = generate_matrix(
            topo,
            config.model,
            total_demand=config.total_demand,
            seed=config.traffic_seed,
        )
        flow_set = aggregate_flows(matrix, config.n_flows)
        cache = SPTCache()
        routing = RoutingTable(topo, cache=cache)
        provision_capacities(topo, matrix, routing)
        state = (config, topo, windows, flow_set, routing, cache)
        _WORKER_STATE.clear()  # one soak config per worker at a time
        _WORKER_STATE[config_json] = state
    return state


def run_window_shard(config_json: str, window_index: int) -> Dict[str, dict]:
    """One convergence window end to end (module-level: picklable).

    Deterministic in its arguments — a shard rerun after a worker death
    returns bit-identical record dicts, which the kill-resume parity
    tests rely on.
    """
    _maybe_chaos_kill(window_index)
    config, topo, windows, flow_set, routing, cache = _worker_state(config_json)
    if not 0 <= window_index < len(windows):
        raise SoakError(
            f"window index {window_index} out of range 0..{len(windows) - 1}"
        )
    window = windows[window_index]
    engine = TrafficEngine(
        topo,
        flow_set,
        routing=routing,
        approaches=config.approaches,
        cache=cache,
        fault_plan=window.fault_plan,
        provision=False,
    )
    per_approach = engine.run_scenario(window.scenario, scenario_index=window.index)
    return {name: asdict(per_approach[name]) for name in config.approaches}


class SoakService:
    """Owns one run directory: journal, window manifests, summary."""

    def __init__(
        self,
        config: SoakConfig,
        run_dir: Path,
        checkpoint: Optional[SoakCheckpoint] = None,
    ) -> None:
        self.config = config
        self.run_dir = Path(run_dir)
        self.config_hash = obs.config_hash(config.to_dict())
        self._config_json = json.dumps(
            config.to_dict(), sort_keys=True, separators=(",", ":")
        )
        self.topo = topology_from_spec(config.topology, config.topology_seed)
        self.events = build_events(config.timeline, self.topo)
        self.events_digest = events_digest(self.events)
        self.windows = build_windows(self.topo, config.timeline, events=self.events)
        self._stop_signal: Optional[int] = None

        if checkpoint is not None:
            if checkpoint.config_hash != self.config_hash:
                raise SoakError(
                    f"checkpoint config hash {checkpoint.config_hash} does not "
                    f"match this config ({self.config_hash}); refusing to resume"
                )
            if checkpoint.events_digest != self.events_digest:
                raise SoakError(
                    "checkpoint event digest does not match the rebuilt "
                    "timeline; the code or plan changed under the journal"
                )
            if checkpoint.n_windows != len(self.windows):
                raise SoakError(
                    f"checkpoint expects {checkpoint.n_windows} windows, "
                    f"rebuild produced {len(self.windows)}"
                )
            self.cursor = checkpoint.cursor
            self.salts: List[int] = list(checkpoint.salts)
            self.records: Dict[str, List[dict]] = {
                name: list(checkpoint.records.get(name, []))
                for name in config.approaches
            }
            self.rng = checkpoint.restore_rng()
            if checkpoint.obs_snapshot and obs.enabled():
                obs.merge_snapshot(checkpoint.obs_snapshot)
        else:
            self.cursor = 0
            self.salts = []
            self.records = {name: [] for name in config.approaches}
            self.rng = SoakCheckpoint(
                config_hash=self.config_hash,
                events_digest=self.events_digest,
                n_windows=len(self.windows),
            ).restore_rng()

    # -- construction --------------------------------------------------

    @classmethod
    def start(cls, config: SoakConfig, run_dir: Path) -> "SoakService":
        """Begin a fresh run; refuses a directory that already journaled."""
        run_dir = Path(run_dir)
        if (run_dir / "checkpoint.json").exists():
            raise SoakError(
                f"{run_dir} already holds a soak journal; resume it with "
                "`repro soak --resume <run-dir>` or pick a fresh directory"
            )
        service = cls(config, run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(run_dir / CONFIG_NAME, config.to_dict())
        return service

    @classmethod
    def resume(cls, run_dir: Path) -> "SoakService":
        """Reopen a run directory from its journal (fresh if none yet)."""
        run_dir = Path(run_dir)
        config_path = run_dir / CONFIG_NAME
        if not config_path.exists():
            raise SoakError(f"{run_dir} is not a soak run (no {CONFIG_NAME})")
        try:
            config = SoakConfig.from_dict(json.loads(config_path.read_text()))
        except ValueError as exc:
            raise SoakError(f"unreadable {config_path}: {exc}") from exc
        checkpoint = load_checkpoint(run_dir)
        return cls(config, run_dir, checkpoint=checkpoint)

    # -- the service loop ----------------------------------------------

    def run(self) -> Tuple[str, Optional[dict]]:
        """Drive the run to completion (or clean interruption).

        Returns ``("completed", summary)`` or ``("interrupted", None)``.
        """
        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, self._on_signal)
        try:
            while self.cursor < len(self.windows):
                if self._stop_signal is not None:
                    self._write_checkpoint()
                    log.warning(
                        "soak interrupted by signal %d at window %d/%d; "
                        "checkpoint written",
                        self._stop_signal,
                        self.cursor,
                        len(self.windows),
                    )
                    return "interrupted", None
                self._run_batch()
            summary = self.summarize()
            atomic_write_json(self.run_dir / SUMMARY_NAME, summary)
            self._finalize_in_store(summary)
            return "completed", summary
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    def _run_batch(self) -> None:
        batch = self.windows[self.cursor : self.cursor + self.config.checkpoint_every]
        # Salts are drawn in strict window order from the checkpointed
        # RNG; their digest lands in the summary, so a resume that fails
        # to restore RNG state breaks byte parity loudly.
        salts = [self.rng.randrange(2**32) for _ in batch]
        tasks = [
            (window.index, run_window_shard, (self._config_json, window.index))
            for window in batch
        ]
        with obs.span("soak.batch", start=self.cursor, size=len(batch)):
            by_window = run_sharded(
                tasks, span_name="soak.shards", workers=self.config.workers
            )
        for window, salt in zip(batch, salts):
            per_approach = by_window[window.index]
            for name in self.config.approaches:
                self.records[name].append(per_approach[name])
            self._write_window_manifest(window, salt, per_approach)
        self._record_batch_in_store(batch, salts, by_window)
        self.salts.extend(salts)
        self.cursor += len(batch)
        obs.gauge("soak.cursor", self.cursor)
        obs.gauge("soak.windows_total", len(self.windows))
        obs.inc("soak.batches")
        obs.inc("soak.windows_done", len(batch))
        self._write_checkpoint()
        log.info("soak window %d/%d checkpointed", self.cursor, len(self.windows))

    # -- run store mirroring -------------------------------------------
    #
    # When REPRO_STORE names a store path, the service anchors one run
    # row on (name, config_hash) — resumes reuse it — streams each
    # batch's window records, and attaches the final summary.  All of it
    # is best-effort: a locked or broken store never interrupts a soak
    # whose journal is the source of truth.

    def _open_store(self):
        store_path = os.environ.get("REPRO_STORE")
        if not store_path:
            return None
        try:
            from ..store import RunStore

            return RunStore(store_path)
        except Exception as exc:  # noqa: BLE001 — mirroring is best-effort
            log.warning("REPRO_STORE=%s unusable: %s", store_path, exc)
            return None

    def _record_batch_in_store(self, batch, salts, by_window) -> None:
        store = self._open_store()
        if store is None:
            return
        try:
            with store:
                run_id = store.ensure_run(
                    name=f"soak-{self.config_hash}",
                    config_hash=self.config_hash,
                    manifest={
                        "name": f"soak-{self.config_hash}",
                        "config": self.config.to_dict(),
                        "config_hash": self.config_hash,
                        "seed": self.config.timeline.seed,
                        "topologies": [self.config.topology],
                        "events_digest": self.events_digest,
                        "n_windows": len(self.windows),
                    },
                )
                for window, salt in zip(batch, salts):
                    store.record_window(
                        run_id,
                        window.index,
                        {"salt": salt, "records": by_window[window.index]},
                    )
        except Exception as exc:  # noqa: BLE001 — mirroring is best-effort
            log.warning("run store batch record failed: %s", exc)

    def _finalize_in_store(self, summary: dict) -> None:
        store = self._open_store()
        if store is None:
            return
        try:
            with store:
                run_id = store.ensure_run(
                    name=f"soak-{self.config_hash}", config_hash=self.config_hash
                )
                store.finalize_run(run_id, summary)
        except Exception as exc:  # noqa: BLE001 — mirroring is best-effort
            log.warning("run store finalize failed: %s", exc)

    # -- journaling ----------------------------------------------------

    def _write_checkpoint(self) -> None:
        checkpoint = SoakCheckpoint(
            config_hash=self.config_hash,
            events_digest=self.events_digest,
            n_windows=len(self.windows),
            cursor=self.cursor,
            salts=list(self.salts),
            rng_state=rng_state_to_json(self.rng.getstate()),
            records={k: list(v) for k, v in self.records.items()},
            obs_snapshot=obs.snapshot() if obs.enabled() else None,
        )
        write_checkpoint(self.run_dir, checkpoint)

    def _write_window_manifest(
        self, window, salt: int, per_approach: Dict[str, dict]
    ) -> None:
        manifest = {
            "window": window.index,
            "start": window.start,
            "end": window.end,
            "salt": salt,
            "events": [event_to_dict(e) for e in window.events],
            "active_failed_nodes": list(window.active_failed_nodes),
            "active_failed_links": [list(l) for l in window.active_failed_links],
            "network_converged_at": window.report.network_converged_at,
            "secondary_failures": len(window.fault_plan.secondary_failures),
            "secondary_repairs": len(window.fault_plan.secondary_repairs),
            "records": per_approach,
        }
        atomic_write_json(
            self.run_dir / WINDOWS_DIR / f"window-{window.index:04d}.json",
            manifest,
        )

    # -- summary -------------------------------------------------------

    def summarize(self) -> Dict[str, object]:
        """The final summary, computed only from checkpointable state."""
        approaches: Dict[str, object] = {}
        for name in self.config.approaches:
            records = [
                TrafficScenarioRecord(**d) for d in self.records[name]
            ]
            approaches[name] = asdict(summarize_traffic(records))
        salts_digest = hashlib.sha256(
            json.dumps(self.salts, separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        summary = {
            "version": 1,
            "config": self.config.to_dict(),
            "config_hash": self.config_hash,
            "events_digest": self.events_digest,
            "n_events": len(self.events),
            "n_windows": len(self.windows),
            "windows_done": self.cursor,
            "salts_digest": salts_digest,
            "approaches": approaches,
        }
        # JSON-normalize so the returned summary equals its on-disk
        # round-trip exactly: record/summary rows carry tuple-typed
        # fields (utilization histograms, overload attribution) that
        # would otherwise come back as lists.
        return json.loads(json.dumps(summary))

    # -- signals -------------------------------------------------------

    def _on_signal(self, signum: int, frame) -> None:
        self._stop_signal = signum
        print(
            f"soak: received signal {signum}; finishing the current batch, "
            "then checkpointing",
            file=sys.stderr,
        )
