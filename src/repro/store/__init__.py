"""``repro.store`` — the persistent, queryable run store.

Results used to be scattered across ``obs-runs/`` directories,
``benchmarks/results/`` text tables, and the ``BENCH_*.json``
trajectories; answering "did this PR regress the pinned sweep?" meant
eyeballing JSON.  This package gives them one home: a sqlite file in WAL
mode (stdlib-only) keyed by ``config_hash``/:class:`~repro.obs.manifest.
RunManifest`, with

* a versioned schema plus forward migrations (:mod:`repro.store.db`),
* idempotent filesystem ingestion (:mod:`repro.store.ingest`),
* cross-run queries — list/show/diff/trend (:mod:`repro.store.query`),
* pinned-baseline regression verdicts (:mod:`repro.store.regress`).

Live wiring: when :data:`STORE_ENV` (``REPRO_STORE``) points at a store
path, every instrumented run is recorded at
:func:`repro.obs.write_run_artifacts` time, every
``benchmarks/_bench_utils.record_bench`` row is mirrored, and soak runs
stream per-window records.  With the variable unset nothing happens —
sweeps stay bit-identical.
"""

from __future__ import annotations

import os
from pathlib import Path

from .db import MIGRATIONS, QUANTILE_POINTS, SCHEMA_VERSION, RunStore, payload_sha
from .ingest import (
    ingest_bench_json,
    ingest_path,
    ingest_results_dir,
    ingest_run_dir,
    ingest_runs_base,
    looks_like_bench_json,
)
from .query import (
    diff_runs,
    list_rows,
    lookup_metric,
    render_diff,
    render_rows,
    render_trend,
    show_doc,
    sparkline,
    trend_series,
)
from .regress import (
    DEFAULT_THRESHOLDS,
    Verdict,
    parse_threshold_overrides,
    run_regress,
    summary_line,
)

__all__ = [
    "DEFAULT_THRESHOLDS",
    "MIGRATIONS",
    "QUANTILE_POINTS",
    "RunStore",
    "SCHEMA_VERSION",
    "STORE_ENV",
    "Verdict",
    "default_store_path",
    "diff_runs",
    "ingest_bench_json",
    "ingest_path",
    "ingest_results_dir",
    "ingest_run_dir",
    "ingest_runs_base",
    "list_rows",
    "lookup_metric",
    "looks_like_bench_json",
    "parse_threshold_overrides",
    "payload_sha",
    "render_diff",
    "render_rows",
    "render_trend",
    "run_regress",
    "show_doc",
    "sparkline",
    "summary_line",
    "trend_series",
]

#: Environment variable naming the store path; set it and every result
#: producer (obs runs, bench rows, soak windows) records automatically.
STORE_ENV = "REPRO_STORE"


def default_store_path() -> Path:
    """``REPRO_STORE`` if set, else ``<obs run dir>/store.sqlite``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env)
    from ..obs import default_run_dir

    return default_run_dir() / "store.sqlite"
