"""The sqlite-backed run store: schema, migrations, reads and writes.

One :class:`RunStore` owns a single sqlite file in WAL mode.  Everything
that produces results — instrumented ``repro.obs`` runs, the
``benchmarks/BENCH_*.json`` trajectories, soak windows, checked-in
result artifacts — lands in a handful of versioned tables:

* ``runs`` — one row per instrumented run: the normalized manifest
  columns for filtering plus the *full* manifest/metrics JSON for
  lossless round-trips (``repro query show --json`` must reproduce
  exactly what :func:`repro.obs.load_run` returns);
* ``metrics`` — normalized counter/gauge/quantile rows per run (the
  quantiles are estimated from histogram buckets at record time, see
  :func:`repro.obs.registry.histogram_quantiles`);
* ``spans`` — per-path span aggregates per run;
* ``run_events`` — the raw JSONL event stream, zlib-compressed;
* ``bench_rows`` — one row per ``BENCH_*.json`` entry *version*: the
  same entry re-ingested is a no-op (payload-sha dedup) while a changed
  entry appends, so row order per bench name is the perf trajectory
  ``repro query trend`` plots;
* ``windows`` — per-window soak records (v2);
* ``artifacts`` — checked-in ``benchmarks/results/`` text outputs,
  content-addressed.

Schema evolution is explicit: ``schema_version`` holds the current
version, :data:`MIGRATIONS` maps each old version to the function that
upgrades one step, and opening a store always migrates it forward (never
backward — a store written by a newer version refuses to open).

Concurrency: WAL allows one writer and many readers without blocking;
writers queue on sqlite's own locking with a busy timeout.  Every write
runs inside an ``IMMEDIATE`` transaction, so a crashed writer (even
``kill -9`` mid-commit) rolls back cleanly on the next open — the
store-level analogue of the :mod:`repro.obs.atomic` guarantee.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import StoreError
from ..obs.registry import histogram_quantiles

#: Version written by this code; stores at lower versions are migrated
#: forward on open.
SCHEMA_VERSION = 2

#: Quantile points recorded per histogram into the ``metrics`` table.
QUANTILE_POINTS: Tuple[float, ...] = (0.5, 0.95, 0.99)

_SCHEMA_V1 = """
CREATE TABLE IF NOT EXISTS schema_version (version INTEGER NOT NULL);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    seed INTEGER,
    git_sha TEXT,
    python TEXT,
    started_unix REAL,
    topologies TEXT NOT NULL DEFAULT '[]',
    source TEXT NOT NULL DEFAULT 'live',
    run_dir TEXT,
    manifest_json TEXT NOT NULL,
    metrics_json TEXT NOT NULL,
    UNIQUE (name, config_hash, started_unix)
);
CREATE INDEX IF NOT EXISTS idx_runs_config_hash ON runs (config_hash);
CREATE INDEX IF NOT EXISTS idx_runs_name ON runs (name);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (run_id, kind, name)
);
CREATE TABLE IF NOT EXISTS spans (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    path TEXT NOT NULL,
    count INTEGER NOT NULL,
    total_s REAL NOT NULL,
    min_s REAL NOT NULL,
    max_s REAL NOT NULL,
    PRIMARY KEY (run_id, path)
);
CREATE TABLE IF NOT EXISTS run_events (
    run_id INTEGER PRIMARY KEY REFERENCES runs (id) ON DELETE CASCADE,
    events_z BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS bench_rows (
    id INTEGER PRIMARY KEY,
    bench_file TEXT NOT NULL,
    name TEXT NOT NULL,
    wall_s REAL,
    cases INTEGER,
    sp_computations INTEGER,
    python TEXT,
    git_sha TEXT,
    config_hash TEXT,
    payload TEXT NOT NULL,
    payload_sha TEXT NOT NULL,
    UNIQUE (bench_file, name, payload_sha)
);
CREATE INDEX IF NOT EXISTS idx_bench_rows_name ON bench_rows (name);
CREATE TABLE IF NOT EXISTS artifacts (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    source_path TEXT,
    sha256 TEXT NOT NULL,
    n_bytes INTEGER NOT NULL,
    text TEXT,
    UNIQUE (name, sha256)
);
"""

_SCHEMA_V2_DELTA = """
ALTER TABLE runs ADD COLUMN started_at TEXT;
ALTER TABLE runs ADD COLUMN finished_at TEXT;
ALTER TABLE runs ADD COLUMN duration_s REAL;
ALTER TABLE runs ADD COLUMN hostname TEXT;
CREATE TABLE IF NOT EXISTS windows (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    window_index INTEGER NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (run_id, window_index)
);
"""


def _run_script(conn: sqlite3.Connection, script: str) -> None:
    """Run semicolon-separated DDL inside the *current* transaction.

    ``Connection.executescript`` would commit the open transaction
    first, defeating the single-writer schema bootstrap, so the DDL is
    split and executed statement by statement (none of it embeds
    semicolons in literals).
    """
    for statement in script.split(";"):
        if statement.strip():
            conn.execute(statement)


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """v1 → v2: wall-clock provenance columns + soak window records."""
    _run_script(conn, _SCHEMA_V2_DELTA)


#: old version -> single-step upgrade; applied in sequence on open.
MIGRATIONS = {1: _migrate_v1_to_v2}


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def payload_sha(entry: dict) -> str:
    """Content hash of one bench entry (dedup key for re-ingests)."""
    return hashlib.sha256(_canonical(entry).encode("utf-8")).hexdigest()[:16]


class RunStore:
    """One open sqlite run store (WAL); usable as a context manager."""

    def __init__(self, path, timeout_s: float = 30.0, _version: Optional[int] = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=timeout_s)
        self._conn.row_factory = sqlite3.Row
        # Explicit transactions only — the sqlite3 module's implicit
        # BEGIN deferral fights the IMMEDIATE locking we want.
        self._conn.isolation_level = None
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        try:
            self._ensure_schema(_version)
        except BaseException:
            self._conn.close()
            raise

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- schema ---------------------------------------------------------

    def _ensure_schema(self, create_version: Optional[int] = None) -> None:
        """Create or migrate the schema inside one writer transaction.

        ``create_version`` pins the version a *fresh* store is created at
        (test hook for exercising migrations); existing stores always
        migrate to :data:`SCHEMA_VERSION`.
        """
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            fresh = not conn.execute(
                "SELECT 1 FROM sqlite_master WHERE type = 'table' "
                "AND name = 'schema_version'"
            ).fetchone()
            _run_script(conn, _SCHEMA_V1)
            row = conn.execute("SELECT MAX(version) AS v FROM schema_version").fetchone()
            version = row["v"]
            if version is None:
                if not fresh:
                    raise StoreError(
                        f"{self.path} has store tables but no schema_version "
                        "row; refusing to guess its version"
                    )
                version = create_version if create_version is not None else SCHEMA_VERSION
                if version >= 2:
                    _run_script(conn, _SCHEMA_V2_DELTA)
                conn.execute("INSERT INTO schema_version (version) VALUES (?)", (version,))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        version = self.schema_version()
        if version > SCHEMA_VERSION:
            self.close()
            raise StoreError(
                f"{self.path} is schema v{version}, newer than this code "
                f"(v{SCHEMA_VERSION}); refusing to open"
            )
        if create_version is not None:
            # Test hook: leave the store pinned at the requested version
            # so reopening it exercises the migration path for real.
            return
        while version < SCHEMA_VERSION:
            conn.execute("BEGIN IMMEDIATE")
            try:
                # Re-check under the write lock: a concurrent opener may
                # have migrated between our read and our lock.
                current = conn.execute(
                    "SELECT MAX(version) AS v FROM schema_version"
                ).fetchone()["v"]
                if current == version:
                    MIGRATIONS[version](conn)
                    conn.execute(
                        "UPDATE schema_version SET version = ?", (version + 1,)
                    )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            version = self.schema_version()

    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT MAX(version) AS v FROM schema_version"
        ).fetchone()
        return int(row["v"]) if row["v"] is not None else 0

    # -- run recording --------------------------------------------------

    def record_run(
        self,
        manifest: Dict[str, object],
        metrics: Dict[str, object],
        span_aggregates: Dict[str, Dict[str, float]],
        events: Optional[Sequence[dict]] = None,
        source: str = "live",
        run_dir: Optional[str] = None,
    ) -> int:
        """Insert one instrumented run; idempotent per manifest identity.

        The dedup key is ``(name, config_hash, started_unix)`` — writing
        the same run twice (live auto-record followed by an ``obs-runs``
        ingest, say) returns the existing row id without touching it.
        """
        name = str(manifest.get("name", ""))
        chash = str(manifest.get("config_hash", ""))
        started_unix = manifest.get("started_unix")
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            existing = conn.execute(
                "SELECT id FROM runs WHERE name = ? AND config_hash = ? "
                "AND started_unix IS ?",
                (name, chash, started_unix),
            ).fetchone()
            if existing is not None:
                conn.execute("COMMIT")
                return int(existing["id"])
            cursor = conn.execute(
                "INSERT INTO runs (name, config_hash, seed, git_sha, python, "
                "started_unix, topologies, source, run_dir, manifest_json, "
                "metrics_json, started_at, finished_at, duration_s, hostname) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    name,
                    chash,
                    manifest.get("seed"),
                    manifest.get("git_sha"),
                    manifest.get("python"),
                    started_unix,
                    _canonical(manifest.get("topologies", [])),
                    source,
                    run_dir,
                    json.dumps(manifest, sort_keys=True),
                    json.dumps(metrics, sort_keys=True),
                    manifest.get("started_at"),
                    manifest.get("finished_at"),
                    manifest.get("duration_s"),
                    manifest.get("hostname"),
                ),
            )
            run_id = int(cursor.lastrowid)
            self._insert_metrics(run_id, metrics)
            conn.executemany(
                "INSERT INTO spans (run_id, path, count, total_s, min_s, max_s) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        run_id,
                        path,
                        int(agg["count"]),
                        float(agg["total_s"]),
                        float(agg.get("min_s", 0.0)),
                        float(agg.get("max_s", 0.0)),
                    )
                    for path, agg in sorted(span_aggregates.items())
                ],
            )
            if events:
                blob = zlib.compress(
                    "".join(
                        json.dumps(e, sort_keys=True) + "\n" for e in events
                    ).encode("utf-8")
                )
                conn.execute(
                    "INSERT INTO run_events (run_id, events_z) VALUES (?, ?)",
                    (run_id, blob),
                )
            conn.execute("COMMIT")
            return run_id
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def _insert_metrics(self, run_id: int, metrics: Dict[str, object]) -> None:
        rows: List[Tuple[int, str, str, float]] = []
        for kind in ("counters", "gauges"):
            for mname, value in sorted(metrics.get(kind, {}).items()):  # type: ignore[union-attr]
                rows.append((run_id, kind[:-1], mname, float(value)))
        for hname, data in sorted(metrics.get("histograms", {}).items()):  # type: ignore[union-attr]
            for label, value in histogram_quantiles(data, QUANTILE_POINTS).items():
                if value is not None:
                    rows.append((run_id, "quantile", f"{hname}.{label}", float(value)))
        if rows:
            self._conn.executemany(
                "INSERT INTO metrics (run_id, kind, name, value) VALUES (?, ?, ?, ?)",
                rows,
            )

    def ensure_run(
        self,
        name: str,
        config_hash: str,
        manifest: Optional[Dict[str, object]] = None,
    ) -> int:
        """Select-or-create a run row keyed by ``(name, config_hash)``.

        The anchor the soak service hangs per-window records on —
        resuming a run reuses the same row.
        """
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT id FROM runs WHERE name = ? AND config_hash = ? "
                "ORDER BY id DESC LIMIT 1",
                (name, config_hash),
            ).fetchone()
            if row is not None:
                conn.execute("COMMIT")
                return int(row["id"])
            doc = dict(manifest or {})
            doc.setdefault("name", name)
            doc.setdefault("config_hash", config_hash)
            cursor = conn.execute(
                "INSERT INTO runs (name, config_hash, seed, git_sha, python, "
                "started_unix, topologies, source, run_dir, manifest_json, "
                "metrics_json, started_at, hostname) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    name,
                    config_hash,
                    doc.get("seed"),
                    doc.get("git_sha"),
                    doc.get("python"),
                    doc.get("started_unix"),
                    _canonical(doc.get("topologies", [])),
                    str(doc.get("source", "soak")),
                    doc.get("run_dir"),
                    json.dumps(doc, sort_keys=True),
                    "{}",
                    doc.get("started_at"),
                    doc.get("hostname"),
                ),
            )
            conn.execute("COMMIT")
            return int(cursor.lastrowid)
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def record_window(self, run_id: int, window_index: int, payload: dict) -> None:
        """Upsert one soak window record (idempotent across resumes)."""
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "INSERT OR REPLACE INTO windows (run_id, window_index, payload) "
                "VALUES (?, ?, ?)",
                (run_id, window_index, json.dumps(payload, sort_keys=True)),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def finalize_run(
        self, run_id: int, summary: Optional[dict] = None
    ) -> None:
        """Stamp a run finished now; optionally attach a summary doc."""
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT manifest_json, started_unix FROM runs WHERE id = ?",
                (run_id,),
            ).fetchone()
            if row is None:
                raise StoreError(f"no run with id {run_id}")
            manifest = json.loads(row["manifest_json"])
            finished_unix = time.time()
            manifest["finished_at"] = _iso_utc(finished_unix)
            if summary is not None:
                manifest["summary"] = summary
            duration = None
            if row["started_unix"] is not None:
                duration = round(finished_unix - float(row["started_unix"]), 6)
            conn.execute(
                "UPDATE runs SET manifest_json = ?, finished_at = ?, "
                "duration_s = COALESCE(?, duration_s) WHERE id = ?",
                (
                    json.dumps(manifest, sort_keys=True),
                    manifest["finished_at"],
                    duration,
                    run_id,
                ),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    # -- bench rows -----------------------------------------------------

    def record_bench_rows(self, bench_file: str, entries: Dict[str, dict]) -> int:
        """Append bench entry versions; returns how many rows were new.

        An entry whose payload already exists for ``(bench_file, name)``
        is skipped, so re-ingesting an unchanged ``BENCH_*.json`` is a
        no-op while a refreshed entry extends that bench's trajectory.
        """
        conn = self._conn
        inserted = 0
        conn.execute("BEGIN IMMEDIATE")
        try:
            for name in sorted(entries):
                entry = entries[name]
                sha = payload_sha(entry)
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO bench_rows (bench_file, name, wall_s, "
                    "cases, sp_computations, python, git_sha, config_hash, "
                    "payload, payload_sha) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        bench_file,
                        name,
                        entry.get("wall_s"),
                        entry.get("cases"),
                        entry.get("sp_computations"),
                        entry.get("python"),
                        entry.get("git_sha"),
                        entry.get("config_hash"),
                        json.dumps(entry, sort_keys=True),
                        sha,
                    ),
                )
                inserted += cursor.rowcount
            conn.execute("COMMIT")
            return inserted
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    # -- artifacts ------------------------------------------------------

    def record_artifact(
        self, name: str, text: str, source_path: Optional[str] = None
    ) -> bool:
        """Store one text artifact content-addressed; True if new."""
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO artifacts (name, source_path, sha256, "
                "n_bytes, text) VALUES (?, ?, ?, ?, ?)",
                (name, source_path, sha, len(text.encode("utf-8")), text),
            )
            conn.execute("COMMIT")
            return cursor.rowcount > 0
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    # -- reads ----------------------------------------------------------

    def runs(
        self,
        name: Optional[str] = None,
        config_hash: Optional[str] = None,
        topology: Optional[str] = None,
        scheme: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Run summary rows, oldest first, with optional filters."""
        clauses, params = [], []
        if name:
            clauses.append("name LIKE ?")
            params.append(f"%{name}%")
        if config_hash:
            clauses.append("config_hash = ?")
            params.append(config_hash)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            f"SELECT * FROM runs {where} ORDER BY id", params
        ).fetchall()
        out = []
        for row in rows:
            doc = _run_summary(row)
            if topology and topology not in doc["topologies"]:
                continue
            if scheme and scheme not in _run_schemes(row):
                continue
            out.append(doc)
        return out

    def bench_rows(
        self,
        name: Optional[str] = None,
        bench_file: Optional[str] = None,
        scheme: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Bench entry versions, oldest first, with optional filters."""
        clauses, params = [], []
        if name:
            clauses.append("name LIKE ?")
            params.append(f"%{name}%")
        if bench_file:
            clauses.append("bench_file = ?")
            params.append(bench_file)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            f"SELECT * FROM bench_rows {where} ORDER BY id", params
        ).fetchall()
        out = []
        for row in rows:
            payload = json.loads(row["payload"])
            if scheme and scheme not in payload.get("schemes", []):
                continue
            out.append(
                {
                    "id": row["id"],
                    "bench_file": row["bench_file"],
                    "name": row["name"],
                    "wall_s": row["wall_s"],
                    "cases": row["cases"],
                    "sp_computations": row["sp_computations"],
                    "python": row["python"],
                    "git_sha": row["git_sha"],
                    "config_hash": row["config_hash"],
                    "payload": payload,
                }
            )
        return out

    def latest_bench_row(self, name: str) -> Optional[Dict[str, object]]:
        """The newest version of one bench entry (exact name), if any."""
        row = self._conn.execute(
            "SELECT * FROM bench_rows WHERE name = ? ORDER BY id DESC LIMIT 1",
            (name,),
        ).fetchone()
        if row is None:
            return None
        return {
            "id": row["id"],
            "bench_file": row["bench_file"],
            "name": row["name"],
            "payload": json.loads(row["payload"]),
        }

    def bench_file_doc(self, bench_file: str) -> Dict[str, dict]:
        """Reconstruct a BENCH_*.json document from each entry's latest row."""
        rows = self._conn.execute(
            "SELECT name, payload, MAX(id) FROM bench_rows WHERE bench_file = ? "
            "GROUP BY name ORDER BY name",
            (bench_file,),
        ).fetchall()
        return {row["name"]: json.loads(row["payload"]) for row in rows}

    def resolve_run(self, ref: str) -> Optional[int]:
        """A run id from an id literal, config hash, or name (latest wins)."""
        conn = self._conn
        if ref.isdigit():
            row = conn.execute(
                "SELECT id FROM runs WHERE id = ?", (int(ref),)
            ).fetchone()
            return int(row["id"]) if row else None
        row = conn.execute(
            "SELECT id FROM runs WHERE config_hash = ? ORDER BY id DESC LIMIT 1",
            (ref,),
        ).fetchone()
        if row is not None:
            return int(row["id"])
        row = conn.execute(
            "SELECT id FROM runs WHERE name = ? ORDER BY id DESC LIMIT 1", (ref,)
        ).fetchone()
        return int(row["id"]) if row else None

    def run_doc(self, run_id: int, events: bool = True) -> Dict[str, object]:
        """The full run document, shaped exactly like ``obs.load_run``."""
        row = self._conn.execute(
            "SELECT * FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no run with id {run_id}")
        spans = self._conn.execute(
            "SELECT path, count, total_s, min_s, max_s FROM spans "
            "WHERE run_id = ? ORDER BY path",
            (run_id,),
        ).fetchall()
        doc: Dict[str, object] = {
            "manifest": json.loads(row["manifest_json"]),
            "metrics": json.loads(row["metrics_json"]),
            "span_aggregates": {
                s["path"]: {
                    "count": s["count"],
                    "total_s": s["total_s"],
                    "min_s": s["min_s"],
                    "max_s": s["max_s"],
                }
                for s in spans
            },
            "events": [],
        }
        if events:
            blob = self._conn.execute(
                "SELECT events_z FROM run_events WHERE run_id = ?", (run_id,)
            ).fetchone()
            if blob is not None:
                text = zlib.decompress(blob["events_z"]).decode("utf-8")
                doc["events"] = [
                    json.loads(line) for line in text.splitlines() if line.strip()
                ]
        return doc

    def run_metrics(self, run_id: int) -> List[Dict[str, object]]:
        """Normalized metric rows (counter/gauge/quantile) for one run."""
        rows = self._conn.execute(
            "SELECT kind, name, value FROM metrics WHERE run_id = ? "
            "ORDER BY kind, name",
            (run_id,),
        ).fetchall()
        return [dict(r) for r in rows]

    def windows(self, run_id: int) -> List[Dict[str, object]]:
        rows = self._conn.execute(
            "SELECT window_index, payload FROM windows WHERE run_id = ? "
            "ORDER BY window_index",
            (run_id,),
        ).fetchall()
        return [
            {"window_index": r["window_index"], "payload": json.loads(r["payload"])}
            for r in rows
        ]

    def artifacts(self) -> List[Dict[str, object]]:
        rows = self._conn.execute(
            "SELECT id, name, source_path, sha256, n_bytes FROM artifacts ORDER BY id"
        ).fetchall()
        return [dict(r) for r in rows]

    def counts(self) -> Dict[str, int]:
        """Row counts per table — the ingest summary."""
        out = {}
        for table in ("runs", "bench_rows", "windows", "artifacts"):
            out[table] = int(
                self._conn.execute(f"SELECT COUNT(*) AS n FROM {table}").fetchone()["n"]
            )
        return out


def _iso_utc(ts: float) -> str:
    from datetime import datetime, timezone

    return datetime.fromtimestamp(ts, timezone.utc).isoformat(timespec="milliseconds")


def _run_summary(row: sqlite3.Row) -> Dict[str, object]:
    return {
        "id": row["id"],
        "name": row["name"],
        "config_hash": row["config_hash"],
        "seed": row["seed"],
        "git_sha": row["git_sha"],
        "python": row["python"],
        "source": row["source"],
        "topologies": json.loads(row["topologies"]),
        "started_at": row["started_at"],
        "finished_at": row["finished_at"],
        "duration_s": row["duration_s"],
        "hostname": row["hostname"],
        "run_dir": row["run_dir"],
    }


def _run_schemes(row: sqlite3.Row) -> List[str]:
    manifest = json.loads(row["manifest_json"])
    config = manifest.get("config") or {}
    schemes: Iterable = config.get("approaches") or config.get("schemes") or []
    return [str(s) for s in schemes]
