"""Filesystem importers: run dirs, BENCH trajectories, result artifacts.

Everything the repo already accumulates on disk flows into the store
through this module:

* ``obs-runs/<name>-<hash>/`` directories (one instrumented run each);
* ``benchmarks/BENCH_*.json`` perf trajectories (one entry per bench);
* ``benchmarks/results/*.txt`` rendered tables (content-addressed text
  artifacts).

Each importer is idempotent — re-ingesting unchanged inputs inserts
nothing — so ``repro query ingest`` can run unconditionally in CI.
:func:`ingest_path` sniffs what a path is and dispatches.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from ..errors import StoreError
from ..obs.export import load_run
from .db import RunStore

#: Keys whose presence marks a JSON object as a BENCH_*.json entry.
_BENCH_ENTRY_KEYS = ("wall_s", "cases")


def ingest_run_dir(store: RunStore, directory: Path) -> int:
    """Import one instrumented run directory; returns its run id."""
    directory = Path(directory)
    if not (directory / "manifest.json").exists():
        raise StoreError(f"{directory} is not a run directory (no manifest.json)")
    run = load_run(directory)
    return store.record_run(
        run["manifest"],  # type: ignore[arg-type]
        run["metrics"],  # type: ignore[arg-type]
        run["span_aggregates"],  # type: ignore[arg-type]
        run["events"],  # type: ignore[arg-type]
        source="ingest",
        run_dir=str(directory),
    )


def ingest_runs_base(store: RunStore, base: Path) -> int:
    """Import every run directory under ``base``; returns how many."""
    base = Path(base)
    count = 0
    for child in sorted(base.iterdir()):
        if child.is_dir() and (child / "manifest.json").exists():
            ingest_run_dir(store, child)
            count += 1
    return count


def looks_like_bench_json(doc: object) -> bool:
    """Whether a parsed JSON document has the BENCH trajectory shape."""
    if not isinstance(doc, dict) or not doc:
        return False
    return all(
        isinstance(entry, dict) and any(k in entry for k in _BENCH_ENTRY_KEYS)
        for entry in doc.values()
    )


def ingest_bench_json(store: RunStore, path: Path) -> int:
    """Import one BENCH_*.json file; returns how many rows were new."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise StoreError(f"unreadable bench file {path}: {exc}") from exc
    if not looks_like_bench_json(doc):
        raise StoreError(
            f"{path} does not look like a BENCH trajectory "
            "(expected name -> {wall_s, cases, ...} entries)"
        )
    return store.record_bench_rows(path.name, doc)


def ingest_results_dir(store: RunStore, directory: Path) -> int:
    """Import ``*.txt`` result tables as artifacts; returns how many were new."""
    directory = Path(directory)
    count = 0
    for path in sorted(directory.glob("*.txt")):
        if store.record_artifact(path.name, path.read_text(), str(path)):
            count += 1
    return count


def ingest_path(store: RunStore, path: Path) -> Dict[str, int]:
    """Sniff ``path`` and import it; returns per-kind insert counts.

    * a directory holding ``manifest.json`` → one run;
    * a directory whose children hold ``manifest.json`` → a runs base;
    * a ``.json`` file with the trajectory shape → bench rows;
    * a directory with ``.txt`` files → result artifacts.
    """
    path = Path(path)
    if path.is_dir():
        if (path / "manifest.json").exists():
            ingest_run_dir(store, path)
            return {"runs": 1}
        runs = ingest_runs_base(store, path)
        if runs:
            return {"runs": runs}
        artifacts = ingest_results_dir(store, path)
        if artifacts or any(path.glob("*.txt")):
            return {"artifacts": artifacts}
        raise StoreError(
            f"{path} holds neither run directories nor .txt artifacts"
        )
    if path.suffix == ".json":
        return {"bench_rows": ingest_bench_json(store, path)}
    raise StoreError(
        f"cannot ingest {path}: expected a run directory, an obs-runs base, "
        "a BENCH_*.json file, or a results directory"
    )
