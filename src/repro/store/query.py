"""Cross-run queries: list, show, diff, trend — with table/csv/json output.

The rendering contract mirrors the store-opening CLI exemplar this layer
grew from: every subcommand accepts ``--format table|csv|json``, the
table form reuses :func:`repro.eval.report.format_table`, and the trend
view adds a sparkline so a perf trajectory is legible in one terminal
line per series.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import StoreError
from .db import RunStore

#: Eight-level bar glyphs for the trend sparkline.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One character per value, scaled to the series min/max."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_BLOCKS[3] * len(values)
    span = hi - lo
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[min(top, int((v - lo) / span * top))] for v in values
    )


def render_rows(
    rows: List[Dict[str, object]],
    fmt: str = "table",
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Dict rows as an aligned table, CSV, or a JSON array."""
    if fmt == "json":
        return json.dumps(rows, indent=2, sort_keys=True)
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c, "") for c in cols})
        return buffer.getvalue().rstrip("\n")
    if fmt == "table":
        from ..eval.report import format_table

        return format_table(rows, columns=cols)
    raise StoreError(f"unknown output format {fmt!r}; choose table, csv, or json")


# ----------------------------------------------------------------------
# list
# ----------------------------------------------------------------------

RUN_COLUMNS = (
    "id",
    "name",
    "config_hash",
    "seed",
    "git_sha",
    "source",
    "started_at",
    "duration_s",
    "hostname",
)

BENCH_COLUMNS = (
    "id",
    "bench_file",
    "name",
    "wall_s",
    "cases",
    "sp_computations",
    "git_sha",
    "config_hash",
)


def list_rows(
    store: RunStore,
    kind: str = "runs",
    benchmark: Optional[str] = None,
    scheme: Optional[str] = None,
    topology: Optional[str] = None,
    config_hash: Optional[str] = None,
) -> Tuple[List[Dict[str, object]], Sequence[str]]:
    """Filtered rows plus their display columns for ``repro query list``."""
    if kind == "runs":
        rows = store.runs(
            name=benchmark,
            config_hash=config_hash,
            topology=topology,
            scheme=scheme,
        )
        return rows, RUN_COLUMNS
    if kind == "bench":
        rows = store.bench_rows(name=benchmark, scheme=scheme)
        if config_hash:
            rows = [r for r in rows if r.get("config_hash") == config_hash]
        if topology:
            rows = [
                r
                for r in rows
                if topology == r["payload"].get("topology")  # type: ignore[union-attr]
            ]
        return rows, BENCH_COLUMNS
    if kind == "artifacts":
        return store.artifacts(), ("id", "name", "sha256", "n_bytes", "source_path")
    raise StoreError(f"unknown list kind {kind!r}; choose runs, bench, or artifacts")


# ----------------------------------------------------------------------
# show
# ----------------------------------------------------------------------


def show_doc(store: RunStore, ref: str) -> Dict[str, object]:
    """Resolve ``ref`` to a run document or a bench entry payload.

    Resolution order: run id → run config hash → run name (latest) →
    bench entry name (latest version).  Run documents come back shaped
    exactly like :func:`repro.obs.load_run` — the lossless round-trip
    the ingest tests pin.
    """
    run_id = store.resolve_run(ref)
    if run_id is not None:
        return store.run_doc(run_id)
    bench = store.latest_bench_row(ref)
    if bench is not None:
        return {"bench": {bench["name"]: bench["payload"]}}
    raise StoreError(
        f"nothing in the store matches {ref!r} "
        "(not a run id, config hash, run name, or bench name)"
    )


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------


def diff_runs(store: RunStore, ref_a: str, ref_b: str) -> Dict[str, object]:
    """Structured comparison of two runs' provenance, counters, spans."""
    ids = []
    for ref in (ref_a, ref_b):
        run_id = store.resolve_run(ref)
        if run_id is None:
            raise StoreError(f"no run in the store matches {ref!r}")
        ids.append(run_id)
    docs = [store.run_doc(i, events=False) for i in ids]
    manifests = [d["manifest"] for d in docs]  # type: ignore[index]

    provenance = {}
    for key in ("name", "config_hash", "seed", "git_sha", "python", "duration_s"):
        a, b = manifests[0].get(key), manifests[1].get(key)  # type: ignore[union-attr]
        if a != b:
            provenance[key] = {"a": a, "b": b}

    counters = {}
    c_a = docs[0]["metrics"].get("counters", {})  # type: ignore[union-attr]
    c_b = docs[1]["metrics"].get("counters", {})  # type: ignore[union-attr]
    for key in sorted(set(c_a) | set(c_b)):
        va, vb = c_a.get(key), c_b.get(key)
        if va != vb:
            entry: Dict[str, object] = {"a": va, "b": vb}
            if va is not None and vb is not None:
                entry["delta"] = vb - va
            counters[key] = entry

    spans = {}
    s_a = docs[0]["span_aggregates"]  # type: ignore[index]
    s_b = docs[1]["span_aggregates"]  # type: ignore[index]
    for path in sorted(set(s_a) | set(s_b)):
        ta = s_a.get(path, {}).get("total_s")
        tb = s_b.get(path, {}).get("total_s")
        if ta == tb:
            continue
        entry = {"a_total_s": ta, "b_total_s": tb}
        if ta and tb is not None:
            entry["change_pct"] = round(100.0 * (tb - ta) / ta, 2)
        spans[path] = entry

    return {
        "a": {"id": ids[0], "name": manifests[0].get("name")},  # type: ignore[union-attr]
        "b": {"id": ids[1], "name": manifests[1].get("name")},  # type: ignore[union-attr]
        "provenance": provenance,
        "counters": counters,
        "spans": spans,
    }


def render_diff(diff: Dict[str, object]) -> str:
    """Terminal view of :func:`diff_runs`."""
    lines = [
        f"diff run {diff['a']['id']} ({diff['a']['name']}) "  # type: ignore[index]
        f"-> run {diff['b']['id']} ({diff['b']['name']})"  # type: ignore[index]
    ]
    for section in ("provenance", "counters"):
        entries: Dict[str, dict] = diff[section]  # type: ignore[assignment]
        if entries:
            lines.append(f"{section}:")
            for key, entry in entries.items():
                delta = entry.get("delta")
                suffix = f"  (delta {delta:+g})" if isinstance(delta, (int, float)) else ""
                lines.append(f"  {key:44s} {entry['a']} -> {entry['b']}{suffix}")
    spans: Dict[str, dict] = diff["spans"]  # type: ignore[assignment]
    if spans:
        lines.append("spans (total_s):")
        for path, entry in spans.items():
            pct = entry.get("change_pct")
            suffix = f"  ({pct:+.1f}%)" if isinstance(pct, (int, float)) else ""
            lines.append(
                f"  {path:44s} {entry['a_total_s']} -> {entry['b_total_s']}{suffix}"
            )
    if len(lines) == 1:
        lines.append("(no differences)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trend
# ----------------------------------------------------------------------


def lookup_metric(payload: Dict[str, object], metric: str) -> Optional[float]:
    """A dotted metric path inside one bench payload.

    ``span_ms.eval.sweep`` first tries the full key, then peels prefixes
    (``span_ms`` → ``{"eval.sweep": ...}``), so both flat and nested
    spellings resolve.
    """
    if metric in payload:
        value = payload[metric]
        return float(value) if isinstance(value, (int, float)) else None
    head, sep, tail = metric.partition(".")
    if sep and isinstance(payload.get(head), dict):
        return lookup_metric(payload[head], tail)  # type: ignore[arg-type]
    return None


def trend_series(
    store: RunStore,
    metric: str,
    benchmark: Optional[str] = None,
    run_name: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Per-config time series of one metric, oldest to newest.

    Bench mode (``benchmark``): every stored version of entries matching
    the name, the metric resolved from the payload.  Run mode
    (``run_name``): every stored run with that name, the metric resolved
    from normalized counter/gauge/quantile rows.
    """
    series: Dict[Tuple[str, str], Dict[str, object]] = {}
    if benchmark is not None:
        for row in store.bench_rows(name=benchmark):
            value = lookup_metric(row["payload"], metric)  # type: ignore[arg-type]
            if value is None:
                continue
            key = (str(row["name"]), str(row.get("config_hash") or "-"))
            bucket = series.setdefault(
                key,
                {
                    "series": row["name"],
                    "config_hash": key[1],
                    "metric": metric,
                    "values": [],
                    "ids": [],
                },
            )
            bucket["values"].append(value)  # type: ignore[union-attr]
            bucket["ids"].append(row["id"])  # type: ignore[union-attr]
    elif run_name is not None:
        for run in store.runs(name=run_name):
            run_id = int(run["id"])  # type: ignore[arg-type]
            value = None
            for metric_row in store.run_metrics(run_id):
                if metric_row["name"] == metric:
                    value = float(metric_row["value"])  # type: ignore[arg-type]
                    break
            if value is None:
                continue
            key = (str(run["name"]), str(run["config_hash"]))
            bucket = series.setdefault(
                key,
                {
                    "series": run["name"],
                    "config_hash": key[1],
                    "metric": metric,
                    "values": [],
                    "ids": [],
                },
            )
            bucket["values"].append(value)  # type: ignore[union-attr]
            bucket["ids"].append(run_id)  # type: ignore[union-attr]
    else:
        raise StoreError("trend needs --benchmark NAME or --run NAME")
    return [series[key] for key in sorted(series)]


def render_trend(series: List[Dict[str, object]], fmt: str = "table") -> str:
    """Trend series as sparkline rows, CSV points, or JSON."""
    if fmt not in ("table", "csv", "json"):
        raise StoreError(
            f"unknown output format {fmt!r}; choose table, csv, or json"
        )
    if fmt == "json":
        return json.dumps(series, indent=2, sort_keys=True)
    if fmt == "csv":
        rows = [
            {
                "series": s["series"],
                "config_hash": s["config_hash"],
                "metric": s["metric"],
                "row_id": row_id,
                "value": value,
            }
            for s in series
            for row_id, value in zip(s["ids"], s["values"])  # type: ignore[arg-type]
        ]
        return render_rows(
            rows, "csv", columns=("series", "config_hash", "metric", "row_id", "value")
        )
    if not series:
        return "(no data points)"
    rows = []
    for s in series:
        values: List[float] = s["values"]  # type: ignore[assignment]
        rows.append(
            {
                "series": s["series"],
                "config_hash": s["config_hash"],
                "n": len(values),
                "first": values[0],
                "last": values[-1],
                "min": min(values),
                "max": max(values),
                "trend": sparkline(values),
            }
        )
    return render_rows(rows, "table")
