"""Automatic perf-regression verdicts against pinned baselines.

``repro query regress`` compares the *latest* stored version of each
bench entry against the checked-in ``BENCH_*.json`` baseline files, one
relative-change threshold per metric family, and emits one verdict line
per compared metric::

    ok   table3_recoverable            wall_s 0.3301 -> 0.3355  (+1.6% <= +30%)
    REG  table3_recoverable  span_ms.eval.sweep 198.561 -> 397.122  (+100.0% > +50%)

All gated metrics are lower-is-better timings or deterministic work
counts; only the families below are gated, so payload fields like
``demand_recovery_rate_pct`` (where bigger is better) never false-fail.
Relative regressions whose *absolute* delta sits under the family's
noise floor (``DEFAULT_NOISE_FLOORS``) are downgraded to ok with a
note — millisecond-scale microbenchmark rows double on scheduler
jitter alone.  The exit contract matches ``perf_smoke.py``: zero when
every verdict is ok/skip, nonzero when any metric regressed.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import StoreError
from .db import RunStore

#: Relative-increase thresholds per metric family.  ``span_ms`` and
#: ``build_s`` carry more machine noise than the gated wall clock, so
#: they get looser bars; ``sp_computations`` is deterministic for a
#: pinned config, so *any* increase fails.
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "wall_s": 0.30,
    "build_s": 0.50,
    "span_ms": 0.50,
    "sp_computations": 0.0,
}

#: Absolute-increase floors per metric family: a relative regression is
#: only flagged when the raw delta also exceeds the family's floor.
#: Microbenchmark rows (a few milliseconds of wall clock) double on
#: scheduler jitter alone — a +100% blip on 4 ms is noise, while +100%
#: on 400 ms is a regression.  Deterministic counts keep a zero floor.
DEFAULT_NOISE_FLOORS: Dict[str, float] = {
    "wall_s": 0.05,
    "build_s": 0.05,
    "span_ms": 50.0,
    "sp_computations": 0.0,
}

STATUS_OK = "ok"
STATUS_REGRESSION = "REG"
STATUS_SKIP = "skip"


@dataclass
class Verdict:
    """One compared metric of one bench entry."""

    bench: str
    metric: str
    baseline: Optional[float]
    latest: Optional[float]
    threshold: Optional[float]
    status: str
    note: str = ""

    def line(self) -> str:
        if self.status == STATUS_SKIP:
            return f"{self.status:4s} {self.bench:34s} {self.note}"
        change = _relative_change(self.baseline, self.latest)
        detail = (
            f"{_fmt(self.baseline)} -> {_fmt(self.latest)}  "
            f"({change:+.1%} {'<=' if change <= (self.threshold or 0.0) else '>'} "
            f"+{self.threshold:.0%})"
        )
        if self.note:
            detail += f"  [{self.note}]"
        return f"{self.status:4s} {self.bench:34s} {self.metric:28s} {detail}"


def _fmt(value: Optional[float]) -> str:
    return f"{value:.4g}" if value is not None else "-"


def _relative_change(baseline: Optional[float], latest: Optional[float]) -> float:
    """Relative increase of ``latest`` over ``baseline``.

    A zero baseline that grows to any positive value is an infinite
    relative increase — it must trip every finite threshold (e.g.
    ``sp_computations`` 0 -> 5000 under its 0% bar), not silently pass.
    """
    if baseline is None or latest is None:
        return 0.0
    if baseline == 0:
        return math.inf if latest > 0 else 0.0
    return (latest - baseline) / baseline


def threshold_for(metric: str, thresholds: Dict[str, float]) -> Optional[float]:
    """The threshold governing one metric, by exact key then family prefix."""
    if metric in thresholds:
        return thresholds[metric]
    family = metric.split(".", 1)[0]
    return thresholds.get(family)


def gated_metrics(entry: Dict[str, object], thresholds: Dict[str, float]) -> Dict[str, float]:
    """The flat ``metric -> value`` map regress gates for one entry."""
    out: Dict[str, float] = {}
    for key, value in entry.items():
        if isinstance(value, (int, float)) and threshold_for(key, thresholds) is not None:
            out[key] = float(value)
        elif key in thresholds and isinstance(value, dict):
            for leaf, leaf_value in value.items():
                if isinstance(leaf_value, (int, float)):
                    out[f"{key}.{leaf}"] = float(leaf_value)
    return out


def compare_entry(
    name: str,
    baseline: Dict[str, object],
    latest: Optional[Dict[str, object]],
    thresholds: Dict[str, float],
) -> List[Verdict]:
    """Verdicts for one baseline entry against its latest stored row."""
    if latest is None:
        return [
            Verdict(
                bench=name,
                metric="-",
                baseline=None,
                latest=None,
                threshold=None,
                status=STATUS_SKIP,
                note="no stored run for this bench (ingest one first)",
            )
        ]
    verdicts: List[Verdict] = []
    base_metrics = gated_metrics(baseline, thresholds)
    latest_metrics = gated_metrics(latest, thresholds)
    for metric in sorted(base_metrics):
        if metric not in latest_metrics:
            continue
        base_value = base_metrics[metric]
        latest_value = latest_metrics[metric]
        threshold = threshold_for(metric, thresholds)
        assert threshold is not None  # gated_metrics filtered on it
        change = _relative_change(base_value, latest_value)
        status = STATUS_REGRESSION if change > threshold else STATUS_OK
        note = ""
        if status == STATUS_REGRESSION:
            floor = threshold_for(metric, DEFAULT_NOISE_FLOORS) or 0.0
            if latest_value - base_value < floor:
                status = STATUS_OK
                note = f"delta {latest_value - base_value:.4g} under noise floor {floor:g}"
        verdicts.append(
            Verdict(
                bench=name,
                metric=metric,
                baseline=base_value,
                latest=latest_value,
                threshold=threshold,
                status=status,
                note=note,
            )
        )
    return verdicts


def parse_threshold_overrides(specs: Sequence[str]) -> Dict[str, float]:
    """``["wall_s=0.5", "span_ms=1.0"]`` → override map (validated)."""
    overrides: Dict[str, float] = {}
    for spec in specs:
        metric, sep, value = spec.partition("=")
        if not sep or not metric:
            raise StoreError(
                f"bad --threshold {spec!r}; expected METRIC=FRACTION "
                "(e.g. wall_s=0.5)"
            )
        try:
            fraction = float(value)
        except ValueError as exc:
            raise StoreError(f"bad --threshold fraction in {spec!r}") from exc
        if fraction < 0:
            raise StoreError(f"--threshold fraction must be >= 0 in {spec!r}")
        overrides[metric] = fraction
    return overrides


def run_regress(
    store: RunStore,
    baseline_files: Sequence[Path],
    thresholds: Optional[Dict[str, float]] = None,
    benchmark: Optional[str] = None,
    strict: bool = False,
) -> Tuple[List[Verdict], int]:
    """Compare the store's latest rows against pinned baseline files.

    Returns the verdict list plus the process exit code: nonzero when
    any metric regressed, or (``strict``) when a baseline entry has no
    stored row to compare.
    """
    merged = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        merged.update(thresholds)
    verdicts: List[Verdict] = []
    for path in baseline_files:
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreError(f"unreadable baseline {path}: {exc}") from exc
        for name in sorted(doc):
            if benchmark and benchmark not in name:
                continue
            latest = store.latest_bench_row(name)
            verdicts.extend(
                compare_entry(
                    name,
                    doc[name],
                    latest["payload"] if latest else None,  # type: ignore[index]
                    merged,
                )
            )
    regressed = any(v.status == STATUS_REGRESSION for v in verdicts)
    skipped = any(v.status == STATUS_SKIP for v in verdicts)
    exit_code = 1 if regressed or (strict and skipped) else 0
    return verdicts, exit_code


def summary_line(verdicts: List[Verdict]) -> str:
    counts = {STATUS_OK: 0, STATUS_REGRESSION: 0, STATUS_SKIP: 0}
    for verdict in verdicts:
        counts[verdict.status] += 1
    return (
        f"regress: {counts[STATUS_OK]} ok, "
        f"{counts[STATUS_REGRESSION]} regressed, "
        f"{counts[STATUS_SKIP]} skipped"
    )
