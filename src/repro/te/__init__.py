"""``repro.te`` — the traffic-engineering layer (congestion-aware recovery).

The paper's objective is reachability: recover as many disrupted pairs
as possible.  ``BENCH_traffic.json`` shows what that objective ignores —
recovered paths pile demand onto surviving links (3.11× max utilization
on AS7018).  This subsystem makes recovery *congestion-aware*:

* :mod:`repro.te.penalty` — an integer-quantized load-penalized link
  metric that composes with both shortest-path kernel backends;
  RTR phase-2 selection uses it when ``RTRConfig(congestion_aware=True)``
  (strictly off by default — all pinned golden sweeps stay byte-identical);
* :mod:`repro.te.r3` — an R3-style protection-routing scheme
  (``@register_scheme("r3")``): offline, protection detours planned
  against a virtual-demand set covering single-link failures; online,
  per convergence window, reconfiguration by detour splicing — no
  re-optimization;
* :mod:`repro.te.metrics` — the congestion evaluation layer:
  post-recovery utilization histograms/CDF (p50/p95/p99/max),
  congestion-free-recovery rate, top-k overload attribution.

See DESIGN.md §14 for the architecture and EXPERIMENTS.md for the
3.11× → ≤1.5× walkthrough.
"""

from .penalty import (
    DEFAULT_PENALTY_ALPHA,
    DEFAULT_PENALTY_EXPONENT,
    DEFAULT_UTILIZATION_CLIP,
    PENALTY_QUANT,
    LinkPenalty,
    recost_path,
)
from .metrics import (
    UTILIZATION_BIN_EDGES,
    congestion_free,
    merge_histograms,
    overload_attribution,
    utilization_histogram,
    utilization_percentile,
)

__all__ = [
    "DEFAULT_PENALTY_ALPHA",
    "DEFAULT_PENALTY_EXPONENT",
    "DEFAULT_UTILIZATION_CLIP",
    "PENALTY_QUANT",
    "LinkPenalty",
    "recost_path",
    "UTILIZATION_BIN_EDGES",
    "congestion_free",
    "merge_histograms",
    "overload_attribution",
    "utilization_histogram",
    "utilization_percentile",
]
