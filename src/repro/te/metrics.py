"""Congestion evaluation primitives: utilization CDFs and attribution.

Enhanced-MRC's argument (arXiv 1212.0311) is that a recovery scheme must
be judged by *post-recovery link load*, not just reachability.  This
module provides the load-side measurement kit consumed by
:mod:`repro.traffic.metrics`:

* fixed-bin **utilization histograms** — per-scenario counts over every
  topology link, elementwise-mergeable across scenarios and process
  shards (ints only, so serial == parallel aggregation is exact);
* **percentiles** read off the merged histogram (p50/p95/p99 of the
  utilization CDF; the exact maximum is tracked separately);
* **top-k overload attribution** — for each overloaded link, which
  recovery-rerouted OD demands piled onto it.

No imports from :mod:`repro.traffic` (that package imports this layer's
consumers); everything here speaks plain dicts, tuples, and the
:class:`~repro.topology.Link` type.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..topology import Link

#: Histogram bin width in utilization units (5 % of capacity per bin).
UTILIZATION_BIN_WIDTH = 0.05

#: Upper edges of the finite bins: (0.05, 0.10, ..., 3.00].  Everything
#: above the last edge lands in one overflow bin (the exact sweep maximum
#: is reported separately, so the tail needs no resolution).
UTILIZATION_BIN_EDGES: Tuple[float, ...] = tuple(
    round((i + 1) * UTILIZATION_BIN_WIDTH, 2) for i in range(60)
)

#: Histogram length: one count per finite bin plus the overflow bin.
HISTOGRAM_BINS = len(UTILIZATION_BIN_EDGES) + 1


def utilization_histogram(load_map) -> Tuple[int, ...]:
    """Bin every topology link's utilization (idle links count in bin 0).

    ``load_map`` is a :class:`~repro.traffic.capacity.LinkLoadMap` (duck
    typed: needs ``.topo`` and ``.utilization``).  Bin ``i`` covers the
    half-open interval ``[i·w, (i+1)·w)``; the final bin absorbs
    everything at or above the last edge.
    """
    counts = [0] * HISTOGRAM_BINS
    nbins = len(UTILIZATION_BIN_EDGES)
    width = UTILIZATION_BIN_WIDTH
    for link in load_map.topo.links():
        index = int(load_map.utilization(link) / width)
        counts[index if index < nbins else nbins] += 1
    return tuple(counts)


def merge_histograms(histograms: Iterable[Sequence[int]]) -> Tuple[int, ...]:
    """Elementwise sum; empty inputs (records predating the field) skip."""
    total = [0] * HISTOGRAM_BINS
    for hist in histograms:
        if not hist:
            continue
        for i, count in enumerate(hist):
            total[i] += count
    return tuple(total)


def utilization_percentile(histogram: Sequence[int], q: float) -> float:
    """The q-quantile utilization read off a (merged) histogram.

    Returns the upper edge of the first bin whose cumulative link count
    reaches ``q`` of the total — a conservative (rounded-up) quantile.
    The overflow bin reports the last finite edge; callers pair this with
    the exact tracked maximum for the tail.  Empty histograms yield 0.0.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    total = sum(histogram)
    if total == 0:
        return 0.0
    need = q * total
    cumulative = 0
    for i, count in enumerate(histogram):
        cumulative += count
        if cumulative >= need:
            if i < len(UTILIZATION_BIN_EDGES):
                return UTILIZATION_BIN_EDGES[i]
            return UTILIZATION_BIN_EDGES[-1]
    return UTILIZATION_BIN_EDGES[-1]  # pragma: no cover - cumulative == total


def congestion_free(overloaded_links: int) -> bool:
    """Whether a scenario recovered without overloading any link."""
    return overloaded_links == 0


#: Attribution entry: (link u, link v, utilization,
#:                     ((source, destination, demand), ... top-k)).
AttributionEntry = Tuple[int, int, float, Tuple[Tuple[int, int, float], ...]]


def overload_attribution(
    load_map,
    contributions: Dict[Link, Dict[Tuple[int, int], float]],
    threshold: float = 1.0,
    top_links: int = 3,
    top_demands: int = 3,
) -> Tuple[AttributionEntry, ...]:
    """Who overloaded what: the top rerouted demands per overloaded link.

    ``contributions`` maps each link to the recovery-attributed demand
    per OD pair (the engine records them while weighting disrupted
    groups; intact background load is in the utilization but is not a
    rerouting decision, so it is not attributed).  Plain nested tuples —
    records carrying them cross process boundaries.
    """
    entries: List[AttributionEntry] = []
    for link, utilization in load_map.overloaded_links(threshold)[:top_links]:
        per_pair = contributions.get(link, {})
        ranked = sorted(per_pair.items(), key=lambda kv: (-kv[1], kv[0]))
        entries.append(
            (
                link.u,
                link.v,
                utilization,
                tuple(
                    (src, dst, demand)
                    for (src, dst), demand in ranked[:top_demands]
                ),
            )
        )
    return tuple(entries)


__all__ = [
    "UTILIZATION_BIN_WIDTH",
    "UTILIZATION_BIN_EDGES",
    "HISTOGRAM_BINS",
    "AttributionEntry",
    "congestion_free",
    "merge_histograms",
    "overload_attribution",
    "utilization_histogram",
    "utilization_percentile",
]
