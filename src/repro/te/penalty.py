"""Load-penalized link metric, integer-quantized for both kernel backends.

The congestion-aware metric makes a loaded link look *longer*:

    w'(link) = w(link) · (QUANT + units(link)),
    units(link) = ⌊QUANT · α · min(util, clip)^β⌋

with everything on the right an integer (``units``) or an exactly
representable integer-valued float (``w`` on the graphs the numpy
kernels accept).  Because the penalized weight is the base weight times
an integer, the bit-identical sweep argument of DESIGN.md §12 carries
over unchanged: the numpy penalized kernel
(:func:`repro.routing.kernels.penalized_numpy`) reproduces the reference
heap kernel (:func:`repro.routing.dijkstra.penalized_shortest_path_tree`
with ``REPRO_KERNEL=python``) bit for bit.

With zero units everywhere the penalized SPT equals the base SPT (all
distances scaled by ``QUANT``), so an idle network routes exactly as the
paper's metric does; as links approach capacity their multiplier grows
quadratically (default β = 2) up to ``1 + α·clip^β`` ≈ 33× — phase-2
reroutes and R3 protection detours spread around hot links instead of
piling onto them.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, TYPE_CHECKING

from ..routing import Path
from ..topology import Link, Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..traffic.capacity import LinkLoadMap

#: Integer quantization base of the penalty multiplier: one unit is
#: ``1/PENALTY_QUANT`` of a multiplicative step over the base cost.
PENALTY_QUANT = 32

#: Default strength of the penalty at utilization 1.0 (a link exactly at
#: capacity looks ``1 + α`` = 9× longer).
DEFAULT_PENALTY_ALPHA = 8.0

#: Default superlinearity: lightly loaded links are barely penalized,
#: near-capacity links steeply.
DEFAULT_PENALTY_EXPONENT = 2.0

#: Utilization above this contributes no further penalty (keeps the
#: quantized units bounded, which keeps the numpy kernel exact).
DEFAULT_UTILIZATION_CLIP = 2.0


def penalty_units(
    utilization: float,
    alpha: float = DEFAULT_PENALTY_ALPHA,
    exponent: float = DEFAULT_PENALTY_EXPONENT,
    clip: float = DEFAULT_UTILIZATION_CLIP,
    quant: int = PENALTY_QUANT,
) -> int:
    """Integer penalty units for one link's utilization (deterministic)."""
    if utilization <= 0.0:
        return 0
    clipped = utilization if utilization < clip else clip
    return int(quant * alpha * clipped**exponent)


class LinkPenalty:
    """An immutable per-link penalty snapshot for one routing decision.

    Built from observed (or virtual) link loads against provisioned
    capacities; consumed by the penalized shortest-path kernels as a
    lid-indexed unit array.  Links without capacity annotations carry no
    penalty — on an unprovisioned topology the penalized metric
    degenerates to the base metric (scaled), by construction.
    """

    __slots__ = ("units", "quant", "_lid_cache")

    def __init__(self, units: Dict[Link, int], quant: int = PENALTY_QUANT) -> None:
        self.units = {link: u for link, u in units.items() if u > 0}
        self.quant = quant
        self._lid_cache: Optional[List[int]] = None

    @classmethod
    def from_loads(
        cls,
        topo: Topology,
        loads: Mapping[Link, float],
        alpha: float = DEFAULT_PENALTY_ALPHA,
        exponent: float = DEFAULT_PENALTY_EXPONENT,
        clip: float = DEFAULT_UTILIZATION_CLIP,
        quant: int = PENALTY_QUANT,
    ) -> "LinkPenalty":
        """Snapshot the penalty of a per-link load map (sorted, stable)."""
        units: Dict[Link, int] = {}
        for link in sorted(loads):
            capacity = topo.link_capacity(link)
            if capacity is None or capacity <= 0.0:
                continue
            u = penalty_units(
                loads[link] / capacity, alpha, exponent, clip, quant
            )
            if u > 0:
                units[link] = u
        return cls(units, quant)

    @classmethod
    def from_load_map(cls, load_map: "LinkLoadMap", **kwargs) -> "LinkPenalty":
        """Snapshot a :class:`~repro.traffic.capacity.LinkLoadMap`."""
        return cls.from_loads(load_map.topo, load_map.loads(), **kwargs)

    def is_null(self) -> bool:
        """Whether this snapshot penalizes nothing (base metric)."""
        return not self.units

    def max_units(self) -> int:
        """The largest per-link unit count (numpy exactness bound input)."""
        return max(self.units.values(), default=0)

    def lid_units(self, topo: Topology) -> List[int]:
        """The lid-indexed unit array the kernels consume (cached).

        The cache is sound because snapshots are immutable and bound to
        one topology version: congestion-aware drivers build a fresh
        snapshot per routing decision instead of mutating this one.
        """
        if self._lid_cache is None:
            csr = topo.csr()
            arr = [0] * csr.lid_size
            pair_lid = csr.pair_lid
            for link, u in self.units.items():
                lid = pair_lid.get((link.u, link.v))
                if lid is not None:
                    arr[lid] = u
            self._lid_cache = arr
        return self._lid_cache

    def __len__(self) -> int:
        return len(self.units)

    def __repr__(self) -> str:
        return (
            f"LinkPenalty(links={len(self.units)}, "
            f"max_units={self.max_units()}, quant={self.quant})"
        )


def recost_path(topo: Topology, path: Path) -> Path:
    """Re-cost a penalized-metric path in the base metric.

    Penalized trees carry distances in scaled units; recovery results,
    stretch, and Table III compare against base-metric optima, so every
    path leaving the penalized kernels is re-costed hop by hop (additive
    left-to-right, matching the heap kernel's accumulation order).
    """
    cost = 0.0
    for a, b in path.hops():
        cost += topo.cost(a, b)
    return Path(path.nodes, cost)


def total_units(units: Mapping[Link, int]) -> int:
    """Σ units — a cheap scalar fingerprint for logs and tests."""
    return sum(sorted(units.values()))


__all__ = [
    "PENALTY_QUANT",
    "DEFAULT_PENALTY_ALPHA",
    "DEFAULT_PENALTY_EXPONENT",
    "DEFAULT_UTILIZATION_CLIP",
    "LinkPenalty",
    "penalty_units",
    "recost_path",
    "total_units",
]
