"""R3-style protection routing: precompute offline, reconfigure online.

The R3 line of work (*Resilient Routing Reconfiguration*, and its
wireless successor in PAPERS.md) handles failures with **precomputed
protection routing**: offline, a protection route is planned for every
link against a *virtual demand* — the traffic that link would have to
shed if it failed — so that the union of protection routes is planned
against capacity, not just hop count; online, a router that detects a
failed adjacency *reconfigures* by splicing the precomputed detour into
the forwarding path — a linear combination of precomputed routes, no
re-optimization, no on-demand shortest-path computation.

This scheme reproduces that shape on the repository's lifecycle:

* :meth:`R3Scheme._prepare` (once per topology) plans one detour per
  link in deterministic order (largest capacity first): the shortest
  ``u -> v`` path in ``G - e`` under the load-penalized metric of
  :mod:`repro.te.penalty`, where the load is the *virtual* protection
  demand already planned onto each link — successive detours spread
  around links that earlier detours loaded, which is what bounds
  post-recovery congestion;
* :meth:`R3Scheme._instantiate` (once per convergence window) binds the
  scenario view and forwarding engine — the protocol exposes the
  ``view``/``engine``/``scenario`` surface, so the chaos
  :class:`~repro.schemes.faults.FaultedScheme` wrapper degrades it like
  any other scheme;
* ``recover`` (once per case) splices detours into the pre-failure
  default path — recursively up to ``r3_k`` nested failures, with a
  cycle guard — compresses transient loops, and source-routes the
  result through the engine.  Zero on-demand SP calculations are
  charged, mirroring R3's no-reoptimization claim.

A detour may not exist (bridge links) and nested failures may exhaust
the ``r3_k`` budget — those cases drop at the initiator, which is the
honest cost of purely precomputed protection versus RTR's reactive
recomputation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .. import obs
from ..errors import SimulationError
from ..failures import LocalView
from ..routing import Path, RoutingTable, penalized_shortest_path_tree
from ..schemes.base import RecoveryScheme, SchemeInstance
from ..schemes.registry import register_scheme
from ..simulator import (
    DEFAULT_DELAY_MODEL,
    ForwardingEngine,
    Mode,
    Packet,
    RecoveryAccounting,
    RecoveryHeader,
    RecoveryResult,
    SourceRouteSpec,
    WalkBatch,
    WalkPlan,
)
from ..topology import Link, Topology
from .penalty import (
    DEFAULT_PENALTY_ALPHA,
    DEFAULT_PENALTY_EXPONENT,
    DEFAULT_UTILIZATION_CLIP,
    PENALTY_QUANT,
    penalty_units,
    recost_path,
)

if TYPE_CHECKING:
    from ..failures import FailureScenario

log = obs.get_logger(__name__)

#: Default nesting budget: how many protection detours may stack when a
#: detour itself crosses failed links (R3's up-to-k failure coverage).
DEFAULT_R3_K = 3


def _strip_loops(nodes: List[int]) -> List[int]:
    """Compress transient loops a nested splice can introduce.

    Walk-preserving: when a node reappears, the walk unwinds to its
    first visit; the successor hop was an adjacent, live hop of the
    original walk, so the compressed sequence stays a valid simple walk.
    """
    out: List[int] = []
    pos: Dict[int, int] = {}
    for node in nodes:
        if node in pos:
            for removed in out[pos[node] + 1 :]:
                del pos[removed]
            del out[pos[node] + 1 :]
        else:
            pos[node] = len(out)
            out.append(node)
    return out


class _R3Protocol:
    """One convergence window of protection routing (no re-optimization)."""

    def __init__(
        self,
        topo: Topology,
        scenario: "FailureScenario",
        routing: RoutingTable,
        detours: Dict[Link, Tuple[int, ...]],
        bypasses: Dict[Tuple[int, int, int], Tuple[int, ...]],
        max_depth: int,
    ) -> None:
        self.topo = topo
        self.scenario = scenario
        self.routing = routing
        self.detours = detours
        self.bypasses = bypasses
        self.max_depth = max_depth
        self.view = LocalView(scenario)
        self.engine = ForwardingEngine(topo, self.view, DEFAULT_DELAY_MODEL)

    def _splice(
        self, segment: Tuple[int, ...], start: int, depth: int, protecting: frozenset
    ) -> Optional[List[int]]:
        """Expand a precomputed segment oriented to begin at ``start``."""
        oriented = segment if segment[0] == start else tuple(reversed(segment))
        return self._protected_route(list(oriented), depth, protecting)

    def _protected_route(
        self, nodes: List[int], depth: int, protecting: frozenset
    ) -> Optional[List[int]]:
        """Expand a path by splicing precomputed protection over failed hops.

        Per failed hop ``a -> b``: first the link detour (``a ~~> b`` in
        ``G - ab``), and when that cannot be expanded — ``b`` itself is
        typically dead, so every detour ending at ``b`` dies with it —
        the node bypass ``a ~~> c`` in ``G - b`` toward the next waypoint
        ``c`` of the current segment.  Both kinds are precomputed; online
        work is pure splicing.
        """
        out = [nodes[0]]
        i = 0
        while i < len(nodes) - 1:
            a, b = nodes[i], nodes[i + 1]
            if self.view.is_neighbor_reachable(a, b):
                out.append(b)
                i += 1
                continue
            link = Link.of(a, b)
            if depth <= 0 or link in protecting:
                return None
            blocked = protecting | {link}
            detour = self.detours.get(link)
            if detour is not None:
                spliced = self._splice(detour, a, depth - 1, blocked)
                if spliced is not None:
                    out.extend(spliced[1:])
                    i += 1
                    continue
            if i + 2 < len(nodes):
                c = nodes[i + 2]
                key = (b, a, c) if a < c else (b, c, a)
                bypass = self.bypasses.get(key)
                if bypass is not None:
                    spliced = self._splice(bypass, a, depth - 1, blocked)
                    if spliced is not None:
                        out.extend(spliced[1:])
                        i += 2  # the bypass already landed at ``c``
                        continue
            return None
        return out

    def recover(
        self, initiator: int, destination: int, trigger_neighbor: int
    ) -> RecoveryResult:
        plan = self.plan_recovery(initiator, destination, trigger_neighbor)
        if plan.immediate is not None:
            return plan.immediate
        batch = WalkBatch(self.engine)
        handle = batch.add(plan.spec, plan.packet, plan.accounting)
        return plan.finish(batch.execute().result(handle))

    def plan_supported(self) -> bool:
        """Splicing consults the local view, so plans may only be deferred
        on the pristine world: a degraded view's answers depend on the
        shared hop clock, which other batched walks advance."""
        return (
            type(self.engine) is ForwardingEngine
            and type(self.view) is LocalView
        )

    def plan_recovery(
        self, initiator: int, destination: int, trigger_neighbor: int
    ) -> WalkPlan:
        """Compile one case: splice precomputed protection, emit the route."""
        if not self.scenario.is_node_live(initiator):
            raise SimulationError(f"recovery initiator {initiator} has failed")
        accounting = RecoveryAccounting()
        base = self.routing.path(initiator, destination)
        if base is None:
            raise SimulationError(
                f"{initiator} has no pre-failure route toward {destination}"
            )
        expanded = self._protected_route(
            list(base.nodes), self.max_depth, frozenset()
        )
        if expanded is None:
            # No protection covers this failure pattern: the packet is
            # discarded at the initiator (early discard, zero waste).
            obs.inc("r3.unprotected")
            return WalkPlan(
                immediate=RecoveryResult(
                    approach=R3Scheme.name,
                    delivered=False,
                    path=None,
                    accounting=accounting,
                )
            )
        nodes = _strip_loops(expanded)
        route = recost_path(self.topo, Path(tuple(nodes), 0.0))
        header = RecoveryHeader(
            mode=Mode.SOURCE_ROUTED,
            rec_init=initiator,
            source_route=list(nodes),
        )
        packet = Packet(
            source=initiator, destination=destination, header=header
        )

        def finish(outcome) -> RecoveryResult:
            obs.inc("r3.reconfigurations")
            if outcome.delivered:
                obs.inc("r3.delivered")
            return RecoveryResult(
                approach=R3Scheme.name,
                delivered=outcome.delivered,
                path=route if outcome.delivered else None,
                accounting=accounting,
                drop_hops=0 if outcome.delivered else accounting.hops_traveled,
                drop_packet_bytes=0
                if outcome.delivered
                else header.recovery_bytes(),
            )

        return WalkPlan(
            spec=SourceRouteSpec(route=list(nodes)),
            packet=packet,
            accounting=accounting,
            finish=finish,
        )


@register_scheme
class R3Scheme(RecoveryScheme):
    """R3-style protection routing: offline virtual-demand detours, online splicing."""

    name = "r3"

    def __init__(
        self,
        r3_k: int = DEFAULT_R3_K,
        r3_alpha: float = DEFAULT_PENALTY_ALPHA,
        r3_exponent: float = DEFAULT_PENALTY_EXPONENT,
        **options: object,
    ) -> None:
        super().__init__(**options)
        if r3_k < 1:
            raise ValueError(f"r3_k must be >= 1, got {r3_k}")
        self.r3_k = r3_k
        self.r3_alpha = r3_alpha
        self.r3_exponent = r3_exponent
        #: link -> protection detour node sequence (u ... v), planned once
        #: per topology in :meth:`_prepare`.
        self.detours: Dict[Link, Tuple[int, ...]] = {}
        #: (failed node b, a, c) with ``a < c`` -> bypass ``a ... c`` in
        #: ``G - b`` — node protection for the regional failures of the
        #: paper, where a detour ending at a dead node is no protection.
        self.bypasses: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}

    def _prepare(self) -> None:
        """Plan one protection detour per link against virtual demand.

        Links are planned in (capacity desc, link asc) order — the links
        that shed the most traffic when they fail pick their detours
        first.  Each link's virtual demand (its capacity: the worst load
        it could shed) is committed onto its detour, and later detours
        see that commitment through the penalized metric — protection
        routes spread instead of stacking.  On an unprovisioned topology
        every capacity defaults to 1.0 and the planning degenerates to
        plain shortest detours.
        """
        topo = self.topo
        assert topo is not None
        with obs.span("r3.prepare"):
            csr = topo.csr()
            links = sorted(topo.links())
            capacity = {
                link: topo.link_capacity(link) or 1.0 for link in links
            }
            order = sorted(links, key=lambda l: (-capacity[l], l))
            lid_units = [0] * csr.lid_size
            virtual = [0.0] * csr.lid_size
            planned = 0
            for link in order:
                tree = penalized_shortest_path_tree(
                    topo,
                    link.u,
                    lid_units,
                    PENALTY_QUANT,
                    excluded_links={link},
                    target=link.v,
                )
                if not tree.reaches(link.v):
                    continue  # bridge link: no protection exists
                detour = tree.path_from(link.v)
                self.detours[link] = tuple(detour.nodes)
                planned += 1
                for a, b in detour.hops():
                    lid = csr.pair_lid[(a, b)]
                    virtual[lid] += capacity[link]
                    lid_units[lid] = penalty_units(
                        virtual[lid] / capacity[Link.of(a, b)],
                        self.r3_alpha,
                        self.r3_exponent,
                        DEFAULT_UTILIZATION_CLIP,
                        PENALTY_QUANT,
                    )
            # Node bypasses, planned against the committed virtual load
            # (no further accumulation: they are an alternative to the
            # link detours, not additional demand).  One early-exit sweep
            # per neighbor pair of each node — r3's offline planning is
            # deliberately heavy; online stays splice-only.
            for b in sorted(topo.nodes()):
                neighbors = sorted(topo.neighbors(b))
                if len(neighbors) < 2:
                    continue
                around_b = {Link.of(b, nb) for nb in neighbors}
                for a_i, a in enumerate(neighbors):
                    for c in neighbors[a_i + 1 :]:
                        tree = penalized_shortest_path_tree(
                            topo,
                            a,
                            lid_units,
                            PENALTY_QUANT,
                            excluded_links=around_b,
                            target=c,
                        )
                        if not tree.reaches(c):
                            continue
                        self.bypasses[(b, a, c)] = tuple(
                            tree.path_from(c).nodes
                        )
        obs.inc("r3.detours.planned", planned)
        obs.inc("r3.bypasses.planned", len(self.bypasses))
        log.info(
            "r3 planned %d/%d protection detours and %d node bypasses",
            planned,
            len(links),
            len(self.bypasses),
        )

    def _instantiate(self, scenario: "FailureScenario") -> SchemeInstance:
        assert self.topo is not None and self.routing is not None
        return SchemeInstance(
            self.name,
            _R3Protocol(
                self.topo,
                scenario,
                self.routing,
                self.detours,
                self.bypasses,
                self.r3_k,
            ),
        )
