"""Time-evolving failure timelines (ROADMAP item 3, tentpole of PR 6).

The paper's evaluation freezes one failure region per convergence
window; this package models a large-scale outage as a *process*.  A
seeded :class:`TimelinePlan` expands (:func:`build_events`) into an
ordered stream of :class:`FailureEvent` / :class:`RepairEvent` /
:class:`FlapEvent` items — primary regions, cascading secondaries
triggered by proximity or load, per-link repair delays, and flap
oscillations.  :func:`build_windows` replays the stream into
:class:`ConvergenceWindow` objects: per-window ground-truth scenarios,
rolling IGP reconvergence, and lookahead
:class:`~repro.chaos.FaultPlan` chaos so packets mid-walk race repairs
and cascades.  Everything is bit-deterministic in the plan seed.

:mod:`repro.soak` drives these windows through the scheme registry and
traffic engine for hours of simulated time.
"""

from .plan import CASCADE_MODES, TimelinePlan
from .events import (
    FailureEvent,
    FlapEvent,
    RepairEvent,
    TimelineEvent,
    event_from_dict,
    event_to_dict,
    events_digest,
)
from .builder import build_events
from .windows import HOP_SECONDS, ConvergenceWindow, build_windows

__all__ = [
    "CASCADE_MODES",
    "TimelinePlan",
    "TimelineEvent",
    "FailureEvent",
    "RepairEvent",
    "FlapEvent",
    "event_to_dict",
    "event_from_dict",
    "events_digest",
    "build_events",
    "HOP_SECONDS",
    "ConvergenceWindow",
    "build_windows",
]
