"""Deterministic event-sequence construction.

:func:`build_events` expands a :class:`~repro.timeline.plan.TimelinePlan`
against one topology into the ordered event stream the convergence
windows replay.  Construction draws from four independent seeded streams
(``primary``, ``cascade``, ``repair``, ``flap``) in a fixed order, and
every collection it iterates is sorted — the resulting sequence is
bit-identical across processes and ``PYTHONHASHSEED`` values
(:func:`~repro.timeline.events.events_digest` pins this in tests).
"""

from __future__ import annotations

import math
from typing import List, Set, Tuple

from ..errors import TimelineError
from ..geometry import Circle, Point
from ..topology import Topology
from .events import FailureEvent, FlapEvent, RepairEvent, TimelineEvent
from .plan import TimelinePlan

#: Bounded redraws for primary regions that destroy nothing.
_MAX_REDRAWS = 64


def _resolve_circle(
    topo: Topology, circle: Circle
) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
    """Failed routers and directly-cut links of one region (§II-A).

    Links incident to failed routers are omitted —
    :class:`~repro.failures.FailureScenario` re-derives them from the
    node set, and repairing such a link is meaningless while its router
    is down.
    """
    failed_nodes = tuple(
        sorted(n for n in topo.nodes() if circle.contains(topo.position(n)))
    )
    down = set(failed_nodes)
    cut_links = tuple(
        sorted(
            (link.u, link.v)
            for link in topo.links()
            if link.u not in down
            and link.v not in down
            and circle.crosses(topo.segment(link))
        )
    )
    return failed_nodes, cut_links


def _boundary_survivors(topo: Topology, event: FailureEvent) -> List[int]:
    """Live routers that lost at least one adjacency to ``event``.

    These are the routers that absorb the rerouted load — the "load"
    cascade mode centers its secondary region on one of them.
    """
    survivors: Set[int] = set()
    for u, v in event.cut_links:
        survivors.update((u, v))
    for node in event.failed_nodes:
        survivors.update(topo.neighbors(node))
    survivors.difference_update(event.failed_nodes)
    return sorted(survivors)


def build_events(plan: TimelinePlan, topo: Topology) -> Tuple[TimelineEvent, ...]:
    """Expand ``plan`` over ``topo`` into its ordered event stream."""
    drafts: List[TimelineEvent] = []
    next_id = 0

    def assign_id() -> int:
        nonlocal next_id
        next_id += 1
        return next_id - 1

    # -- primary failures ----------------------------------------------
    primary_rng = plan.rng("primary")
    failures: List[FailureEvent] = []
    for _ in range(plan.n_failures):
        time = primary_rng.uniform(0.0, plan.duration_s * 0.5)
        for _attempt in range(_MAX_REDRAWS):
            lo, hi = plan.radius_range
            circle = Circle(
                Point(
                    primary_rng.uniform(0.0, plan.area),
                    primary_rng.uniform(0.0, plan.area),
                ),
                primary_rng.uniform(lo, hi),
            )
            failed_nodes, cut_links = _resolve_circle(topo, circle)
            if failed_nodes or cut_links:
                failures.append(
                    FailureEvent(
                        time=time,
                        event_id=assign_id(),
                        center=(circle.center.x, circle.center.y),
                        radius=circle.radius,
                        failed_nodes=failed_nodes,
                        cut_links=cut_links,
                        cause="primary",
                    )
                )
                break
    if not failures:
        raise TimelineError(
            "no primary failure region hit the topology after "
            f"{_MAX_REDRAWS} redraws each — is the area/radius sane?"
        )
    drafts.extend(failures)

    # -- cascading secondary regions -----------------------------------
    cascade_rng = plan.rng("cascade")
    queue: List[Tuple[FailureEvent, int]] = [(f, 0) for f in failures]
    while queue:
        parent, depth = queue.pop(0)
        if depth >= plan.cascade_depth:
            continue
        if cascade_rng.random() >= plan.cascade_probability:
            continue
        lo, hi = plan.cascade_delay_range
        time = parent.time + cascade_rng.uniform(lo, hi)
        if time > plan.duration_s:
            continue
        radius = parent.radius * plan.cascade_radius_factor
        if plan.cascade_mode == "load":
            survivors = _boundary_survivors(topo, parent)
            if not survivors:
                continue
            hub = survivors[cascade_rng.randrange(len(survivors))]
            center = topo.position(hub)
        else:  # proximity
            angle = cascade_rng.uniform(0.0, 2.0 * math.pi)
            dist = cascade_rng.uniform(parent.radius * 0.5, parent.radius * 1.5)
            center = Point(
                min(plan.area, max(0.0, parent.center[0] + dist * math.cos(angle))),
                min(plan.area, max(0.0, parent.center[1] + dist * math.sin(angle))),
            )
        circle = Circle(center, radius)
        failed_nodes, cut_links = _resolve_circle(topo, circle)
        if not failed_nodes and not cut_links:
            continue
        child = FailureEvent(
            time=time,
            event_id=assign_id(),
            center=(circle.center.x, circle.center.y),
            radius=circle.radius,
            failed_nodes=failed_nodes,
            cut_links=cut_links,
            cause="cascade",
            parent_id=parent.event_id,
        )
        drafts.append(child)
        queue.append((child, depth + 1))

    # -- per-element repairs -------------------------------------------
    repair_rng = plan.rng("repair")
    lo, hi = plan.repair_delay_range
    all_failures = [e for e in drafts if isinstance(e, FailureEvent)]
    for event in all_failures:
        for node in event.failed_nodes:
            time = event.time + repair_rng.uniform(lo, hi)
            if time <= plan.duration_s:
                drafts.append(
                    RepairEvent(
                        time=time,
                        event_id=assign_id(),
                        node=node,
                        parent_id=event.event_id,
                    )
                )
        for link in event.cut_links:
            time = event.time + repair_rng.uniform(lo, hi)
            if time <= plan.duration_s:
                drafts.append(
                    RepairEvent(
                        time=time,
                        event_id=assign_id(),
                        link=link,
                        parent_id=event.event_id,
                    )
                )

    # -- flap oscillations ---------------------------------------------
    if plan.n_flapping_links:
        flap_rng = plan.rng("flap")
        links = sorted((l.u, l.v) for l in topo.links())
        if len(links) < plan.n_flapping_links:
            raise TimelineError(
                f"plan wants {plan.n_flapping_links} flapping links but the "
                f"topology only has {len(links)}"
            )
        chosen: List[Tuple[int, int]] = []
        pool = list(links)
        for _ in range(plan.n_flapping_links):
            chosen.append(pool.pop(flap_rng.randrange(len(pool))))
        span = plan.flap_cycles * plan.flap_period_s
        for link in chosen:
            start = flap_rng.uniform(0.0, max(0.0, plan.duration_s - span))
            for cycle in range(plan.flap_cycles):
                down_at = start + cycle * plan.flap_period_s
                up_at = down_at + plan.flap_period_s / 2.0
                if down_at > plan.duration_s:
                    break
                drafts.append(
                    FlapEvent(
                        time=down_at, event_id=assign_id(), link=link, down=True
                    )
                )
                if up_at <= plan.duration_s:
                    drafts.append(
                        FlapEvent(
                            time=up_at, event_id=assign_id(), link=link, down=False
                        )
                    )

    return tuple(sorted(drafts, key=lambda e: e.sort_key()))
