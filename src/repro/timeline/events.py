"""The event vocabulary of a failure timeline.

Three event kinds advance the network through an outage:

* :class:`FailureEvent` — a geometric region lands; the routers inside
  and the links it cuts go down (§II-A semantics).  Cascaded regions
  carry the ``event_id`` of the failure that triggered them.
* :class:`RepairEvent` — one failed router or one cut link comes back.
  Repairs are per-element: a region that took down five links produces
  five independently-timed repair events.
* :class:`FlapEvent` — one link toggles down (``down=True``) or back up
  as part of a flap oscillation.

Events are plain frozen dataclasses ordered by ``(time, event_id)``;
``event_id`` is assigned in builder-creation order, so the total order
is deterministic even for simultaneous events.  ``event_to_dict`` /
``event_from_dict`` round-trip events through JSON for the soak journal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import TimelineError


@dataclass(frozen=True)
class TimelineEvent:
    """Base event: a point on the simulated clock."""

    time: float
    event_id: int

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def sort_key(self) -> Tuple[float, int]:
        return (self.time, self.event_id)


@dataclass(frozen=True)
class FailureEvent(TimelineEvent):
    """A failure region landing at ``time``.

    ``failed_nodes``/``cut_links`` are the region resolved against the
    topology at build time (cut links exclude links incident to failed
    routers — :class:`~repro.failures.FailureScenario` re-adds those).
    """

    center: Tuple[float, float] = (0.0, 0.0)
    radius: float = 0.0
    failed_nodes: Tuple[int, ...] = field(default_factory=tuple)
    cut_links: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)
    #: "primary" for root causes, "cascade" for triggered secondaries.
    cause: str = "primary"
    #: ``event_id`` of the triggering failure, for cascades.
    parent_id: Optional[int] = None

    @property
    def kind(self) -> str:
        return "failure"


@dataclass(frozen=True)
class RepairEvent(TimelineEvent):
    """One element restored at ``time`` (exactly one of node/link set)."""

    node: Optional[int] = None
    link: Optional[Tuple[int, int]] = None
    #: ``event_id`` of the failure this repair undoes.
    parent_id: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.node is None) == (self.link is None):
            raise TimelineError(
                "a repair event restores exactly one node or one link"
            )

    @property
    def kind(self) -> str:
        return "repair"


@dataclass(frozen=True)
class FlapEvent(TimelineEvent):
    """One link toggling in a flap oscillation."""

    link: Tuple[int, int] = (0, 0)
    #: ``True`` = the link goes down; ``False`` = it comes back up.
    down: bool = True

    @property
    def kind(self) -> str:
        return "flap"


# ----------------------------------------------------------------------
# JSON round-trip (soak journal, determinism digests)

def event_to_dict(event: TimelineEvent) -> Dict[str, object]:
    """A JSON-safe dict fully describing ``event``."""
    d: Dict[str, object] = {
        "kind": event.kind,
        "time": event.time,
        "event_id": event.event_id,
    }
    if isinstance(event, FailureEvent):
        d.update(
            center=list(event.center),
            radius=event.radius,
            failed_nodes=list(event.failed_nodes),
            cut_links=[list(l) for l in event.cut_links],
            cause=event.cause,
            parent_id=event.parent_id,
        )
    elif isinstance(event, RepairEvent):
        d.update(
            node=event.node,
            link=None if event.link is None else list(event.link),
            parent_id=event.parent_id,
        )
    elif isinstance(event, FlapEvent):
        d.update(link=list(event.link), down=event.down)
    else:  # pragma: no cover - no other kinds exist
        raise TimelineError(f"unknown event type {type(event).__name__}")
    return d


def event_from_dict(d: Dict[str, object]) -> TimelineEvent:
    """Inverse of :func:`event_to_dict`."""
    kind = d.get("kind")
    time = float(d["time"])  # type: ignore[arg-type]
    event_id = int(d["event_id"])  # type: ignore[arg-type]
    if kind == "failure":
        return FailureEvent(
            time=time,
            event_id=event_id,
            center=tuple(d["center"]),  # type: ignore[arg-type]
            radius=float(d["radius"]),  # type: ignore[arg-type]
            failed_nodes=tuple(d["failed_nodes"]),  # type: ignore[arg-type]
            cut_links=tuple(tuple(l) for l in d["cut_links"]),  # type: ignore[union-attr]
            cause=str(d["cause"]),
            parent_id=d["parent_id"],  # type: ignore[arg-type]
        )
    if kind == "repair":
        link = d.get("link")
        return RepairEvent(
            time=time,
            event_id=event_id,
            node=d.get("node"),  # type: ignore[arg-type]
            link=None if link is None else tuple(link),  # type: ignore[arg-type]
            parent_id=d.get("parent_id"),  # type: ignore[arg-type]
        )
    if kind == "flap":
        return FlapEvent(
            time=time,
            event_id=event_id,
            link=tuple(d["link"]),  # type: ignore[arg-type]
            down=bool(d["down"]),
        )
    raise TimelineError(f"unknown event kind {kind!r}")


def events_digest(events: Sequence[TimelineEvent]) -> str:
    """A stable hex digest of an event sequence (determinism tests)."""
    payload = json.dumps(
        [event_to_dict(e) for e in events], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
