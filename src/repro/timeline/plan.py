"""Seeded plans for time-evolving failure timelines.

The paper evaluates one static failure region per convergence window
(§IV-A); a :class:`TimelinePlan` instead describes a large-scale outage
as a *process*: primary failure regions land over a span of simulated
time, cascading secondary regions follow them (triggered by proximity or
by overload of the surviving boundary routers), repair crews bring
elements back per-link with their own delays, and a few links flap in
fixed oscillation cycles — the multi-failure regime motivating
Enhanced-MRC (arXiv 1212.0311) and the transient-failure model of
Bhosle–Gonzalez (arXiv 0810.3438).

Like :class:`~repro.chaos.plan.FaultPlan`, a plan is a frozen dataclass
fully determined by its ``seed``: :func:`repro.timeline.build_events`
over the same plan and topology yields a bit-identical event sequence in
any process, independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Tuple

from ..errors import TimelineError
from ..failures import PAPER_RADIUS_RANGE
from ..topology import DEFAULT_AREA

#: Cascade trigger modes.
CASCADE_MODES = ("proximity", "load")


@dataclass(frozen=True)
class TimelinePlan:
    """A seeded description of one time-evolving outage."""

    seed: int = 0
    #: Simulated span of the timeline, seconds.
    duration_s: float = 3600.0
    #: Primary (root-cause) failure regions landing on the timeline.
    n_failures: int = 3
    #: Radius range of primary circles (§IV-A default 100–300).
    radius_range: Tuple[float, float] = PAPER_RADIUS_RANGE
    #: Side length of the square deployment area.
    area: float = DEFAULT_AREA
    #: Per-opportunity probability that a failure spawns a cascade.
    cascade_probability: float = 0.35
    #: Maximum cascade generations below a primary failure.
    cascade_depth: int = 2
    #: Seconds between a failure and the cascade it triggers.
    cascade_delay_range: Tuple[float, float] = (30.0, 180.0)
    #: Cascade radius as a fraction of its parent's radius.
    cascade_radius_factor: float = 0.6
    #: How cascades pick their center: near the parent region
    #: ("proximity") or at an overloaded surviving boundary router
    #: ("load").
    cascade_mode: str = "proximity"
    #: Seconds between an element failing and its repair completing.
    repair_delay_range: Tuple[float, float] = (600.0, 1800.0)
    #: Links oscillating up/down independently of the failure regions.
    n_flapping_links: int = 1
    #: Full down+up period of one flap oscillation, seconds.
    flap_period_s: float = 60.0
    #: Oscillations per flapping link.
    flap_cycles: int = 3

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise TimelineError(f"duration_s must be > 0, got {self.duration_s}")
        if self.n_failures < 1:
            raise TimelineError(f"n_failures must be >= 1, got {self.n_failures}")
        for name in ("radius_range", "cascade_delay_range", "repair_delay_range"):
            lo, hi = getattr(self, name)
            if not 0.0 <= lo <= hi:
                raise TimelineError(f"{name} must satisfy 0 <= lo <= hi, got {lo, hi}")
        if not 0.0 <= self.cascade_probability <= 1.0:
            raise TimelineError(
                f"cascade_probability must be in [0, 1], got {self.cascade_probability}"
            )
        if self.cascade_depth < 0:
            raise TimelineError(
                f"cascade_depth must be >= 0, got {self.cascade_depth}"
            )
        if self.cascade_radius_factor <= 0.0:
            raise TimelineError(
                f"cascade_radius_factor must be > 0, got {self.cascade_radius_factor}"
            )
        if self.cascade_mode not in CASCADE_MODES:
            raise TimelineError(
                f"cascade_mode must be one of {CASCADE_MODES}, got {self.cascade_mode!r}"
            )
        if self.n_flapping_links < 0:
            raise TimelineError(
                f"n_flapping_links must be >= 0, got {self.n_flapping_links}"
            )
        if self.n_flapping_links and (
            self.flap_period_s <= 0.0 or self.flap_cycles < 1
        ):
            raise TimelineError(
                "flapping links need flap_period_s > 0 and flap_cycles >= 1"
            )

    def rng(self, stream: str) -> random.Random:
        """An independent deterministic RNG for one builder ``stream``.

        Salted with ``zlib.crc32`` (never ``hash()``) so streams are
        stable across processes and ``PYTHONHASHSEED`` values.
        """
        salt = zlib.crc32(stream.encode("utf-8"))
        return random.Random((self.seed & 0xFFFFFFFF) * 0x1_0000_0000 + salt)
