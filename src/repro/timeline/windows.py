"""Convergence windows: where the timeline meets RTR's two phases.

Each group of simultaneous events opens a new *convergence window*: the
IGP restarts reconvergence on the new ground truth
(:class:`~repro.routing.linkstate.LinkStateProtocol`), and until the
network reconverges RTR is the only thing delivering packets.  A window
therefore carries:

* the **active failure state** as a
  :class:`~repro.failures.FailureScenario` (region failures, minus
  completed repairs, plus links currently flapped down);
* the **reconvergence timeline** for that state
  (:class:`~repro.routing.linkstate.ConvergenceReport`);
* a **lookahead fault plan**: timeline events that fire *inside* this
  window's reconvergence interval, translated to mid-walk
  :class:`~repro.chaos.SecondaryFailure` / \
  :class:`~repro.chaos.SecondaryRepair` specs at the network-hop the
  event's wall-clock offset corresponds to (1.8 ms per recovery hop,
  the §IV-A delay model) — so a packet walking this window can race a
  repair crew or be caught by a cascading region.

Windows model each event group as a fresh convergence run over the full
active failure set — the paper's single-window evaluation is exactly
the one-group special case, which keeps the static Table III/IV path
bit-identical.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..chaos import FaultPlan, SecondaryFailure, SecondaryRepair
from ..failures import FailureScenario
from ..routing.linkstate import (
    ConvergenceConfig,
    ConvergenceReport,
    LinkStateProtocol,
)
from ..topology import Link, Topology
from .builder import build_events
from .events import FailureEvent, FlapEvent, RepairEvent, TimelineEvent
from .plan import TimelinePlan

#: Seconds of wall clock one network-wide recovery hop represents —
#: the §IV-A per-hop delay (100 µs router + 1.7 ms propagation).
HOP_SECONDS = 0.0018


@dataclass
class ConvergenceWindow:
    """One reconvergence interval of the evolving outage."""

    index: int
    #: Simulated time the opening event group fired.
    start: float
    #: Start of the next window (or the plan's horizon).
    end: float
    #: The simultaneous events that opened this window.
    events: Tuple[TimelineEvent, ...]
    #: Ground-truth failure state while this window is open.
    scenario: FailureScenario
    #: Mid-walk chaos derived from events inside the reconvergence
    #: interval; null when nothing fires mid-window.
    fault_plan: FaultPlan
    #: IGP reconvergence timeline for the active state.
    report: ConvergenceReport
    #: Diagnostic tallies (active element counts).
    active_failed_nodes: Tuple[int, ...] = field(default_factory=tuple)
    active_failed_links: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)


def _event_down_links(topo: Topology, event: FailureEvent) -> List[Link]:
    """Every link ``event`` takes down, incident links included."""
    links = {Link.of(u, v) for u, v in event.cut_links}
    for node in event.failed_nodes:
        links.update(topo.incident_links(node))
    return sorted(links)


def _lookahead_plan(
    plan: TimelinePlan,
    topo: Topology,
    scenario: FailureScenario,
    index: int,
    start: float,
    horizon: float,
    upcoming: Sequence[TimelineEvent],
    hop_seconds: float,
) -> FaultPlan:
    """Translate events inside ``(start, start + horizon]`` to chaos specs."""
    sec_failures: Dict[Tuple[int, int], int] = {}
    sec_repairs: Dict[Tuple[int, int], int] = {}
    for ev in upcoming:
        if not start < ev.time <= start + horizon:
            continue
        at_hop = max(1, math.ceil((ev.time - start) / hop_seconds))
        if isinstance(ev, FailureEvent):
            for link in _event_down_links(topo, ev):
                if (
                    scenario.is_link_live(link)
                    and scenario.is_node_live(link.u)
                    and scenario.is_node_live(link.v)
                ):
                    sec_failures.setdefault((link.u, link.v), at_hop)
        elif isinstance(ev, RepairEvent):
            if ev.link is None:
                # A router resurrecting mid-walk is not modeled; its
                # links come back at the window this event opens.
                continue
            link = Link.of(*ev.link)
            if (
                not scenario.is_link_live(link)
                and scenario.is_node_live(link.u)
                and scenario.is_node_live(link.v)
            ):
                sec_repairs.setdefault((link.u, link.v), at_hop)
        elif isinstance(ev, FlapEvent):
            link = Link.of(*ev.link)
            if not (scenario.is_node_live(link.u) and scenario.is_node_live(link.v)):
                continue
            key = (link.u, link.v)
            if ev.down:
                if scenario.is_link_live(link):
                    sec_failures.setdefault(key, at_hop)
            else:
                # Legal when the link is scenario-failed *or* this same
                # plan flaps it down first (the oscillation pairing).
                if not scenario.is_link_live(link) or key in sec_failures:
                    sec_repairs.setdefault(key, at_hop)
    seed = zlib.crc32(f"{plan.seed}:{index}".encode("utf-8"))
    return FaultPlan(
        seed=seed,
        secondary_failures=tuple(
            SecondaryFailure(at_hop=h, link=l)
            for l, h in sorted(sec_failures.items(), key=lambda kv: (kv[1], kv[0]))
        ),
        secondary_repairs=tuple(
            SecondaryRepair(at_hop=h, link=l)
            for l, h in sorted(sec_repairs.items(), key=lambda kv: (kv[1], kv[0]))
        ),
    )


def build_windows(
    topo: Topology,
    plan: TimelinePlan,
    events: Optional[Sequence[TimelineEvent]] = None,
    convergence: Optional[ConvergenceConfig] = None,
    hop_seconds: float = HOP_SECONDS,
) -> List[ConvergenceWindow]:
    """Replay ``events`` (built from ``plan`` if omitted) into windows."""
    if events is None:
        events = build_events(plan, topo)
    events = sorted(events, key=lambda e: e.sort_key())

    # Group simultaneous events: one window per distinct firing time.
    groups: List[List[TimelineEvent]] = []
    for ev in events:
        if groups and groups[-1][0].time == ev.time:
            groups[-1].append(ev)
        else:
            groups.append([ev])

    node_down: Dict[int, int] = {}
    link_down: Dict[Link, int] = {}

    def bump(counts, key, delta) -> None:
        counts[key] = counts.get(key, 0) + delta
        if counts[key] <= 0:
            del counts[key]

    protocol = LinkStateProtocol(topo, convergence)
    windows: List[ConvergenceWindow] = []
    for index, group in enumerate(groups):
        for ev in group:
            if isinstance(ev, FailureEvent):
                for node in ev.failed_nodes:
                    bump(node_down, node, +1)
                for u, v in ev.cut_links:
                    bump(link_down, Link.of(u, v), +1)
            elif isinstance(ev, RepairEvent):
                if ev.node is not None:
                    bump(node_down, ev.node, -1)
                else:
                    bump(link_down, Link.of(*ev.link), -1)
            elif isinstance(ev, FlapEvent):
                bump(link_down, Link.of(*ev.link), +1 if ev.down else -1)
        start = group[0].time
        end = groups[index + 1][0].time if index + 1 < len(groups) else plan.duration_s
        active_nodes = tuple(sorted(node_down))
        active_links = tuple(sorted((l.u, l.v) for l in link_down))
        scenario = FailureScenario(
            topo,
            failed_nodes=active_nodes,
            failed_links=[Link.of(u, v) for u, v in active_links],
        )
        report = protocol.apply_failure(
            set(scenario.failed_nodes), set(scenario.failed_links)
        )
        # The full reconvergence interval, deliberately NOT clipped to
        # this window's `end`: an event that opens window i+1 still
        # races packets launched in window i that are mid-walk.
        horizon = report.network_converged_at
        fault_plan = _lookahead_plan(
            plan,
            topo,
            scenario,
            index,
            start,
            horizon,
            events[sum(len(g) for g in groups[: index + 1]) :],
            hop_seconds,
        )
        windows.append(
            ConvergenceWindow(
                index=index,
                start=start,
                end=end,
                events=tuple(group),
                scenario=scenario,
                fault_plan=fault_plan,
                report=report,
                active_failed_nodes=active_nodes,
                active_failed_links=active_links,
            )
        )
    return windows
