"""Topology substrate: embedded graphs, generators, and the Table II catalog."""

from .graph import Link, Topology
from .generators import (
    DEFAULT_AREA,
    geometric_isp,
    grid_topology,
    random_planar_delaunay_like,
    random_positions,
    ring_topology,
    star_topology,
)
from . import isp_catalog
from .io import load_topology, save_topology, topology_from_dict, topology_to_dict
from .rocketfuel import load_rocketfuel
from .specs import topology_from_spec
from . import validation

__all__ = [
    "Link",
    "Topology",
    "DEFAULT_AREA",
    "geometric_isp",
    "grid_topology",
    "random_planar_delaunay_like",
    "random_positions",
    "ring_topology",
    "star_topology",
    "isp_catalog",
    "load_rocketfuel",
    "load_topology",
    "save_topology",
    "topology_from_dict",
    "topology_from_spec",
    "topology_to_dict",
    "validation",
]
