"""Compact flat-array (CSR) view of a :class:`Topology`.

Every paper experiment funnels through Dijkstra on ``G - failed``; the
dict-of-dicts adjacency and per-edge :class:`~repro.topology.graph.Link`
construction dominate that hot path.  A :class:`CSRView` interns nodes and
links to small dense integers once per topology version and exposes the
adjacency as parallel arrays, so the routing kernels run on integer
indices and per-call exclusion *flag arrays* instead of frozenset probes:

* nodes are interned in **sorted id order**, which makes comparisons of
  dense indices equivalent to comparisons of the original router ids —
  the deterministic smaller-parent-id tie-break survives the translation
  unchanged;
* links reuse the topology's dense insertion-order index (the 16-bit
  header link id of §III-B), so exclusion signatures computed here agree
  with the ids recorded in packet headers;
* per-arc arrays keep the **same neighbor order** as the dict adjacency,
  so relaxation order — and therefore every tolerance-window float
  outcome — is identical to the reference implementation.

The view is immutable and cached on the topology; any mutation bumps the
topology version and invalidates it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import Link, Topology


class CSRView:
    """Flat-array adjacency of one topology snapshot.

    Attributes
    ----------
    ids:
        Dense node index -> original node id, in sorted id order.
    pos:
        Original node id -> dense node index (inverse of ``ids``).
    indptr:
        ``indptr[u] : indptr[u + 1]`` is the arc slice of dense node ``u``.
    nbr:
        Arc -> dense index of the neighbor endpoint.
    wfwd:
        Arc ``u -> v`` -> directed cost ``cost(u, v)``.
    wrev:
        Arc ``u -> v`` -> directed cost ``cost(v, u)`` (the cost of
        *entering* ``u`` from ``v``; reverse trees relax with this).
    lid:
        Arc -> interned link id (the topology's dense header link index).
    pair_lid:
        ``(u, v)`` node-id pair (both directions) -> interned link id.
    """

    __slots__ = (
        "version",
        "ids",
        "pos",
        "indptr",
        "nbr",
        "wfwd",
        "wrev",
        "lid",
        "pair_lid",
        "n",
        "lid_size",
        "np_cache",
        "walk_np",
    )

    def __init__(self, topo: "Topology", version: int) -> None:
        self.version = version
        ids: List[int] = sorted(topo._coords)
        pos: Dict[int, int] = {node: i for i, node in enumerate(ids)}
        link_index = topo._link_index
        pair_lid: Dict[Tuple[int, int], int] = {}
        for link, index in link_index.items():
            pair_lid[(link.u, link.v)] = index
            pair_lid[(link.v, link.u)] = index

        indptr: List[int] = [0] * (len(ids) + 1)
        nbr: List[int] = []
        wfwd: List[float] = []
        wrev: List[float] = []
        lid: List[int] = []
        adjacency = topo._adjacency
        for i, u in enumerate(ids):
            # Keep the dict insertion order: relaxation order (and with it
            # every tolerance-window tie outcome) must match the reference
            # dict-based Dijkstra exactly.
            for v, cost_uv in adjacency[u].items():
                nbr.append(pos[v])
                wfwd.append(cost_uv)
                wrev.append(adjacency[v][u])
                lid.append(pair_lid[(u, v)])
            indptr[i + 1] = len(nbr)

        self.ids = ids
        self.pos = pos
        self.indptr = indptr
        self.nbr = nbr
        self.wfwd = wfwd
        self.wrev = wrev
        self.lid = lid
        self.pair_lid = pair_lid
        self.n = len(ids)
        #: One past the largest interned link id (retired ids included, so
        #: flag arrays stay indexable by any id ever handed out).
        self.lid_size = len(topo._links)
        #: Lazily built :class:`~repro.topology.npcsr.NumpyCSR` mirror —
        #: populated by ``npcsr.numpy_view`` (or preinstalled by the
        #: shared-memory attach path).  ``None`` until first use.
        self.np_cache = None
        #: Lazily built pair-index cache for the batched walk plane
        #: (``repro.simulator.batch._pair_index``).  ``None`` until first use.
        self.walk_np = None

    # ------------------------------------------------------------------
    # Exclusion flags and signatures
    # ------------------------------------------------------------------

    def node_flags(self, nodes: Iterable[int]) -> bytearray:
        """Dense 0/1 exclusion array over node indices.

        Unknown node ids are ignored — a frozenset probe on them could
        never match either.
        """
        flags = bytearray(self.n)
        pos = self.pos
        for node in nodes:
            i = pos.get(node)
            if i is not None:
                flags[i] = 1
        return flags

    def link_flags(self, links: Iterable["Link"]) -> bytearray:
        """Dense 0/1 exclusion array over interned link ids."""
        flags = bytearray(self.lid_size)
        pair_lid = self.pair_lid
        for link in links:
            index = pair_lid.get((link[0], link[1]))
            if index is not None:
                flags[index] = 1
        return flags

    def node_mask(self, nodes: Iterable[int]) -> int:
        """Compact integer bitmask of node indices (cache signatures)."""
        mask = 0
        pos = self.pos
        for node in nodes:
            i = pos.get(node)
            if i is not None:
                mask |= 1 << i
        return mask

    def link_mask(self, links: Iterable["Link"]) -> int:
        """Compact integer bitmask of interned link ids (cache signatures)."""
        mask = 0
        pair_lid = self.pair_lid
        for link in links:
            index = pair_lid.get((link[0], link[1]))
            if index is not None:
                mask |= 1 << index
        return mask

    def link_id(self, a: int, b: int) -> int:
        """Interned id of the link between ``a`` and ``b`` (KeyError if none)."""
        return self.pair_lid[(a, b)]

    def __repr__(self) -> str:
        return f"CSRView(nodes={self.n}, arcs={len(self.nbr)}, v={self.version})"
