"""The paper's worked example topology (Figs. 1, 2, 4, 6 and Table I).

An 18-router network embedded so that the failure of router ``v10`` (plus
the links the area cuts, ``e6,11`` and ``e4,11``) reproduces the paper's
running example on a *general* (non-planar) graph:

* the default path ``v7 -> v6 -> v11 -> v15 -> v17`` breaks at ``e6,11``
  and ``v6`` becomes the recovery initiator,
* the phase-1 walk is exactly Table I's
  ``v6 v5 v4 v9 v13 v14 v12 v11 v12 v8 v7 v6`` (11 hops),
* ``failed_link`` collects ``e5,10  e4,11  e9,10  e14,10  e11,10`` in that
  order and ``cross_link`` collects ``e6,11`` then ``e14,12``,
* the recovery path to ``v17`` is the 4-hop ``v6 v5 v12 v18 v17``.

Node ids use the paper's numbering (1..18).  Coordinates were chosen so the
crossings the paper relies on hold: ``e5,12`` crosses ``e6,11``
(Constraint 1's Fig. 4 case) and ``e11,15``/``e11,16`` cross ``e14,12``
(the Fig. 5/6 case).  All of this is asserted by
``tests/core/test_paper_examples.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..geometry import Circle, Point
from .graph import Topology

#: Paper node id -> plane position (x grows right, y grows up).
PAPER_POSITIONS: Dict[int, Point] = {
    1: Point(60, 500),
    2: Point(260, 510),
    3: Point(60, 270),
    4: Point(230, 420),
    5: Point(180, 330),
    6: Point(230, 240),
    7: Point(80, 120),
    8: Point(280, 110),
    9: Point(430, 430),
    10: Point(390, 315),
    11: Point(420, 230),
    12: Point(520, 140),
    13: Point(560, 510),
    14: Point(590, 420),
    15: Point(590, 330),
    16: Point(620, 60),
    17: Point(760, 340),
    18: Point(730, 130),
}

#: Undirected links of the example (unit costs — the paper routes on hops).
PAPER_LINKS: List[Tuple[int, int]] = [
    (1, 2),
    (1, 3),
    (2, 4),
    (2, 13),
    (3, 5),
    (3, 7),
    (4, 5),
    (4, 9),
    (4, 11),
    (5, 6),
    (5, 10),
    (5, 12),
    (6, 7),
    (6, 11),
    (7, 8),
    (8, 12),
    (9, 10),
    (9, 13),
    (10, 11),
    (10, 14),
    (11, 12),
    (11, 15),
    (11, 16),
    (12, 14),
    (12, 16),
    (12, 18),
    (13, 14),
    (14, 15),
    (15, 16),
    (15, 17),
    (16, 18),
    (17, 18),
]

#: The example failure area: kills ``v10`` and cuts ``e6,11`` and ``e4,11``
#: while every other router and link survives.
PAPER_FAILURE_REGION = Circle(Point(400, 300), 70.0)


def paper_figure_topology() -> Topology:
    """The general-graph example of Figs. 1/4/6 (fresh instance)."""
    topo = Topology("paper-figure")
    for node, pos in PAPER_POSITIONS.items():
        topo.add_node(node, pos)
    for u, v in PAPER_LINKS:
        topo.add_link(u, v)
    return topo


def planarize(topo: Topology) -> Topology:
    """A maximal crossing-free subgraph of ``topo`` (greedy removal).

    §III-C argues this must NOT be done online — removing cross links in
    advance can wrongly partition the network once failures occur — so the
    library only uses it to build planar *test fixtures* like the Fig. 2
    variant of the example.  Links crossing the most others are removed
    first; the result keeps ``topo``'s nodes and is crossing-free.
    """
    result = topo.copy(name=f"{topo.name}-planarized")
    while True:
        crossings = result.all_cross_links()
        worst = None
        worst_count = 0
        for link, others in crossings.items():
            if len(others) > worst_count:
                worst, worst_count = link, len(others)
        if worst is None or worst_count == 0:
            return result
        result.remove_link(worst.u, worst.v)


def paper_planar_topology() -> Topology:
    """The planar variant used to explain the basic rule (Fig. 2)."""
    planar = planarize(paper_figure_topology())
    planar.name = "paper-figure-planar"
    assert planar.is_planar_embedding()
    return planar
