"""Topology generators.

The paper's evaluation takes eight Rocketfuel-derived ISP topologies and
randomly places their nodes in a 2000 x 2000 area (§IV-A).  Since the raw
Rocketfuel data is not available offline, :func:`geometric_isp` synthesises
connected geometric graphs with *exactly* a requested node and link count:

1. nodes are placed uniformly at random in the simulation area,
2. a Euclidean minimum spanning tree guarantees connectivity (and gives the
   tree branches the paper observes in sparse topologies like AS7018),
3. the remaining links are sampled with a Waxman-style distance bias so
   that links are geometrically local, as in real ISP maps.

What matters for RTR's behaviour is size, density, and geometric locality;
the generator reproduces all three (see DESIGN.md §2).

Deterministic auxiliary generators (:func:`grid_topology`,
:func:`ring_topology`, :func:`star_topology`) are used throughout the tests.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from ..errors import TopologyError
from ..geometry import Point
from .graph import Topology

#: Side length of the paper's simulation area.
DEFAULT_AREA = 2000.0


def random_positions(
    n: int, rng: random.Random, area: float = DEFAULT_AREA
) -> Dict[int, Point]:
    """Uniform random positions for nodes ``0..n-1`` in an ``area`` square."""
    return {i: Point(rng.uniform(0.0, area), rng.uniform(0.0, area)) for i in range(n)}


def _euclidean_mst_edges(positions: Dict[int, Point]) -> List[Tuple[int, int]]:
    """Edges of the Euclidean minimum spanning tree (Prim, O(n^2))."""
    nodes = list(positions)
    if len(nodes) <= 1:
        return []
    in_tree = {nodes[0]}
    best_dist = {
        v: positions[nodes[0]].distance_to(positions[v]) for v in nodes[1:]
    }
    best_from = {v: nodes[0] for v in nodes[1:]}
    edges: List[Tuple[int, int]] = []
    while best_dist:
        v = min(best_dist, key=best_dist.get)  # type: ignore[arg-type]
        edges.append((best_from[v], v))
        in_tree.add(v)
        del best_dist[v]
        del best_from[v]
        for w in best_dist:
            d = positions[v].distance_to(positions[w])
            if d < best_dist[w]:
                best_dist[w] = d
                best_from[w] = v
    return edges


def geometric_isp(
    n_nodes: int,
    n_links: int,
    rng: random.Random,
    name: str = "isp",
    area: float = DEFAULT_AREA,
    locality: float = 0.25,
) -> Topology:
    """A connected ISP-like topology with exact node and link counts.

    ``locality`` is the Waxman characteristic distance as a fraction of the
    area diagonal: small values favour short links (strongly geometric
    graphs), large values approach uniform random link selection.
    """
    if n_nodes < 2:
        raise TopologyError(f"need at least 2 nodes, got {n_nodes}")
    max_links = n_nodes * (n_nodes - 1) // 2
    if not (n_nodes - 1) <= n_links <= max_links:
        raise TopologyError(
            f"link count {n_links} outside [{n_nodes - 1}, {max_links}] "
            f"for {n_nodes} nodes"
        )

    positions = random_positions(n_nodes, rng, area)
    topo = Topology(name)
    for node, pos in positions.items():
        topo.add_node(node, pos)

    tree_edges = _euclidean_mst_edges(positions)
    for u, v in tree_edges:
        topo.add_link(u, v)

    remaining = n_links - len(tree_edges)
    if remaining == 0:
        return topo

    scale = locality * area * math.sqrt(2.0)
    candidates: List[Tuple[int, int]] = []
    weights: List[float] = []
    for u in range(n_nodes):
        for v in range(u + 1, n_nodes):
            if topo.has_link(u, v):
                continue
            d = positions[u].distance_to(positions[v])
            candidates.append((u, v))
            weights.append(math.exp(-d / scale))

    # Weighted sampling without replacement.
    for _ in range(remaining):
        total = sum(weights)
        pick = rng.uniform(0.0, total)
        acc = 0.0
        chosen = len(candidates) - 1
        for i, w in enumerate(weights):
            acc += w
            if pick <= acc:
                chosen = i
                break
        u, v = candidates.pop(chosen)
        weights.pop(chosen)
        topo.add_link(u, v)
    return topo


def grid_topology(
    rows: int, cols: int, spacing: float = 100.0, name: str = "grid"
) -> Topology:
    """A ``rows x cols`` grid with unit link costs (planar embedding)."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    topo = Topology(name)
    for r in range(rows):
        for c in range(cols):
            topo.add_node(r * cols + c, Point(c * spacing, r * spacing))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                topo.add_link(node, node + 1)
            if r + 1 < rows:
                topo.add_link(node, node + cols)
    return topo


def ring_topology(n: int, radius: float = 500.0, name: str = "ring") -> Topology:
    """``n`` nodes on a circle, each linked to its two neighbors."""
    if n < 3:
        raise TopologyError("a ring needs at least 3 nodes")
    topo = Topology(name)
    cx = cy = radius * 2
    for i in range(n):
        angle = 2 * math.pi * i / n
        topo.add_node(i, Point(cx + radius * math.cos(angle), cy + radius * math.sin(angle)))
    for i in range(n):
        topo.add_link(i, (i + 1) % n)
    return topo


def star_topology(n_leaves: int, radius: float = 400.0, name: str = "star") -> Topology:
    """A hub (node 0) with ``n_leaves`` spokes — the extreme tree-branch case."""
    if n_leaves < 1:
        raise TopologyError("a star needs at least 1 leaf")
    topo = Topology(name)
    topo.add_node(0, Point(radius, radius))
    for i in range(1, n_leaves + 1):
        angle = 2 * math.pi * (i - 1) / n_leaves
        topo.add_node(i, Point(radius + radius * math.cos(angle), radius + radius * math.sin(angle)))
        topo.add_link(0, i)
    return topo


def random_planar_delaunay_like(
    n_nodes: int,
    rng: random.Random,
    name: str = "planar",
    area: float = DEFAULT_AREA,
) -> Topology:
    """A connected planar embedded graph (MST + crossing-free local links).

    Used by tests of the planar-graph forwarding rule (§III-B): starts from
    the Euclidean MST and greedily adds short links that cross nothing.
    """
    positions = random_positions(n_nodes, rng, area)
    topo = Topology(name)
    for node, pos in positions.items():
        topo.add_node(node, pos)
    for u, v in _euclidean_mst_edges(positions):
        topo.add_link(u, v)

    pairs = [
        (positions[u].distance_to(positions[v]), u, v)
        for u in range(n_nodes)
        for v in range(u + 1, n_nodes)
        if not topo.has_link(u, v)
    ]
    pairs.sort()
    from ..geometry import Segment, segments_cross

    existing = [topo.segment(link) for link in topo.links()]
    for dist, u, v in pairs[: 3 * n_nodes]:
        seg = Segment(positions[u], positions[v])
        if any(segments_cross(seg, other) for other in existing):
            continue
        topo.add_link(u, v)
        existing.append(seg)
    return topo
