"""Embedded network topologies.

The paper models the network as an undirected graph of routers and links
(§II-A) where

* every node has plane coordinates known to all routers,
* link costs may be asymmetric (``c_ij != c_ji``),
* routing uses shortest paths on the link costs (the evaluation uses hop
  count, i.e. unit costs).

:class:`Topology` is the single source of truth for all of this, plus the
per-link *cross-link* sets that §III-C says routers precompute.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Set, TYPE_CHECKING

from ..errors import TopologyError, UnknownLinkError, UnknownNodeError
from ..geometry import Point, Segment, compute_cross_links

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from .csr import CSRView


class Link(NamedTuple):
    """Canonical identity of an undirected link.

    Endpoints are stored in sorted order so that ``Link.of(4, 11)`` and
    ``Link.of(11, 4)`` compare equal — the paper's ``e_{i,j}`` names an
    undirected link even though its two directed costs may differ.
    """

    u: int
    v: int

    @classmethod
    def of(cls, a: int, b: int) -> "Link":
        """The canonical link between nodes ``a`` and ``b``."""
        if a == b:
            raise TopologyError(f"self-loop link at node {a} is not allowed")
        return cls(a, b) if a < b else cls(b, a)

    def other(self, node: int) -> int:
        """The endpoint that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise TopologyError(f"node {node} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"e{self.u},{self.v}"


class Topology:
    """An undirected graph embedded in the plane.

    Nodes are integer ids with coordinates; links are undirected with a cost
    per direction.  Links additionally get a dense integer *index* in
    insertion order — the 16-bit link id that RTR and FCP record in packet
    headers (§III-B), used by the byte-accounting in
    :mod:`repro.simulator.stats`.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._coords: Dict[int, Point] = {}
        self._adjacency: Dict[int, Dict[int, float]] = {}
        self._link_index: Dict[Link, int] = {}
        self._links: List[Link] = []
        #: Optional per-link capacity annotations (demand units/s).  Pure
        #: metadata for the traffic layer: capacities never affect routing,
        #: so mutating them does not bump the version or the CSR view.
        self._capacities: Dict[Link, float] = {}
        self._cross_links: Optional[Dict[Link, Set[Link]]] = None
        #: Bumped on every structural mutation; keys the CSR view cache.
        self._version: int = 0
        self._csr: Optional["CSRView"] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: int, position: Point) -> None:
        """Add a node at ``position``; re-adding an existing node moves it."""
        if node in self._coords and self._adjacency[node]:
            # Moving a connected node would silently invalidate the embedding.
            raise TopologyError(f"node {node} already exists with incident links")
        self._coords[node] = position
        self._adjacency.setdefault(node, {})
        self._cross_links = None
        self._version += 1

    def add_link(
        self, a: int, b: int, cost: float = 1.0, reverse_cost: Optional[float] = None
    ) -> Link:
        """Add an undirected link with per-direction costs.

        ``cost`` applies to direction ``a -> b``; ``reverse_cost`` defaults to
        ``cost`` (symmetric link).  Returns the canonical :class:`Link`.
        """
        for node in (a, b):
            if node not in self._coords:
                raise UnknownNodeError(node)
        if cost <= 0 or (reverse_cost is not None and reverse_cost <= 0):
            raise TopologyError(f"link costs must be positive: {a}-{b}")
        link = Link.of(a, b)
        if link in self._link_index:
            raise TopologyError(f"link {link} already exists")
        self._adjacency[a][b] = float(cost)
        self._adjacency[b][a] = float(cost if reverse_cost is None else reverse_cost)
        self._link_index[link] = len(self._links)
        self._links.append(link)
        self._cross_links = None
        self._version += 1
        return link

    def remove_link(self, a: int, b: int) -> None:
        """Remove the link between ``a`` and ``b``.

        Link indices of the remaining links are preserved (the removed index
        is retired), matching how deployed routers keep stable link ids
        across topology changes.
        """
        link = Link.of(a, b)
        if link not in self._link_index:
            raise UnknownLinkError(link)
        del self._adjacency[a][b]
        del self._adjacency[b][a]
        index = self._link_index.pop(link)
        self._links[index] = None  # type: ignore[call-overload]
        self._capacities.pop(link, None)
        self._cross_links = None
        self._version += 1

    # ------------------------------------------------------------------
    # Compact view
    # ------------------------------------------------------------------

    def csr(self) -> "CSRView":
        """The flat-array adjacency view of this snapshot (cached).

        Rebuilt lazily after any structural mutation; all routing kernels
        (Dijkstra, incremental SPT updates, connectivity) run on this view.
        """
        csr = self._csr
        if csr is None or csr.version != self._version:
            from .csr import CSRView

            csr = CSRView(self, self._version)
            self._csr = csr
        return csr

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._coords)

    @property
    def link_count(self) -> int:
        """Number of links."""
        return len(self._link_index)

    def nodes(self) -> Iterator[int]:
        """All node ids."""
        return iter(self._coords)

    def links(self) -> Iterator[Link]:
        """All links, in insertion (index) order."""
        return (link for link in self._links if link is not None)

    def has_node(self, node: int) -> bool:
        """Whether ``node`` exists."""
        return node in self._coords

    def has_link(self, a: int, b: int) -> bool:
        """Whether a link between ``a`` and ``b`` exists."""
        return a != b and Link.of(a, b) in self._link_index

    def neighbors(self, node: int) -> Iterator[int]:
        """Neighbors of ``node``."""
        if node not in self._adjacency:
            raise UnknownNodeError(node)
        return iter(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Number of links incident to ``node``."""
        if node not in self._adjacency:
            raise UnknownNodeError(node)
        return len(self._adjacency[node])

    def position(self, node: int) -> Point:
        """Coordinates of ``node``."""
        try:
            return self._coords[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def cost(self, a: int, b: int) -> float:
        """Cost of the directed use ``a -> b`` of the link between them."""
        try:
            return self._adjacency[a][b]
        except KeyError:
            raise UnknownLinkError(Link.of(a, b)) from None

    def link_index(self, link: Link) -> int:
        """Dense integer index of ``link`` (the header link id)."""
        try:
            return self._link_index[link]
        except KeyError:
            raise UnknownLinkError(link) from None

    def link_at(self, index: int) -> Link:
        """Inverse of :meth:`link_index`."""
        if 0 <= index < len(self._links) and self._links[index] is not None:
            return self._links[index]
        raise UnknownLinkError(index)

    def segment(self, link: Link) -> Segment:
        """The embedded straight segment of ``link``."""
        return Segment(self.position(link.u), self.position(link.v))

    def incident_links(self, node: int) -> List[Link]:
        """Links incident to ``node``."""
        return [Link.of(node, nb) for nb in self.neighbors(node)]

    def euclidean_length(self, link: Link) -> float:
        """Length of the embedded link segment."""
        return self.segment(link).length()

    # ------------------------------------------------------------------
    # Capacity annotations (traffic layer)
    # ------------------------------------------------------------------

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Annotate ``link`` with a carrying capacity (demand units/s)."""
        if link not in self._link_index:
            raise UnknownLinkError(link)
        if capacity <= 0:
            raise TopologyError(f"link capacity must be positive: {link}")
        self._capacities[link] = float(capacity)

    def link_capacity(self, link: Link) -> Optional[float]:
        """Capacity of ``link``, or ``None`` when not provisioned."""
        if link not in self._link_index:
            raise UnknownLinkError(link)
        return self._capacities.get(link)

    def link_capacities(self) -> Dict[Link, float]:
        """Every provisioned capacity, keyed by link (a copy)."""
        return dict(self._capacities)

    def clear_link_capacities(self) -> None:
        """Drop every capacity annotation."""
        self._capacities.clear()

    # ------------------------------------------------------------------
    # Cross links (precomputed per §III-C)
    # ------------------------------------------------------------------

    def cross_links(self, link: Link) -> Set[Link]:
        """Links that geometrically cross ``link`` (cached after first call)."""
        if self._cross_links is None:
            pairs = [(lk, self.segment(lk)) for lk in self.links()]
            self._cross_links = compute_cross_links(pairs)
        try:
            return self._cross_links[link]
        except KeyError:
            raise UnknownLinkError(link) from None

    def all_cross_links(self) -> Dict[Link, Set[Link]]:
        """The complete precomputed crossing map."""
        if self._cross_links is None:
            pairs = [(lk, self.segment(lk)) for lk in self.links()]
            self._cross_links = compute_cross_links(pairs)
        return self._cross_links

    def is_planar_embedding(self) -> bool:
        """Whether no two links cross in this embedding."""
        return all(not s for s in self.all_cross_links().values())

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def component_of(
        self,
        start: int,
        excluded_nodes: Optional[Set[int]] = None,
        excluded_links: Optional[Set[Link]] = None,
    ) -> Set[int]:
        """Connected component containing ``start``, honouring exclusions."""
        if start not in self._adjacency:
            raise UnknownNodeError(start)
        if excluded_nodes and start in excluded_nodes:
            return set()
        csr = self.csr()
        node_excl = csr.node_flags(excluded_nodes) if excluded_nodes else None
        link_excl = csr.link_flags(excluded_links) if excluded_links else None
        indptr, nbr, lid, ids = csr.indptr, csr.nbr, csr.lid, csr.ids
        seen = bytearray(csr.n)
        root = csr.pos[start]
        seen[root] = 1
        stack = [root]
        members = {start}
        while stack:
            u = stack.pop()
            for i in range(indptr[u], indptr[u + 1]):
                v = nbr[i]
                if seen[v]:
                    continue
                if node_excl is not None and node_excl[v]:
                    continue
                if link_excl is not None and link_excl[lid[i]]:
                    continue
                seen[v] = 1
                members.add(ids[v])
                stack.append(v)
        return members

    def is_connected(self) -> bool:
        """Whether the whole topology is one connected component."""
        if self.node_count == 0:
            return True
        first = next(iter(self._coords))
        return len(self.component_of(first)) == self.node_count

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Topology":
        """A deep, independent copy."""
        clone = Topology(name or self.name)
        for node, pos in self._coords.items():
            clone._coords[node] = pos
            clone._adjacency[node] = {}
        for link in self.links():
            clone._adjacency[link.u][link.v] = self._adjacency[link.u][link.v]
            clone._adjacency[link.v][link.u] = self._adjacency[link.v][link.u]
            clone._link_index[link] = len(clone._links)
            clone._links.append(link)
        clone._capacities = dict(self._capacities)
        return clone

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, nodes={self.node_count}, "
            f"links={self.link_count})"
        )


def complete_graph_positions(n: int, scale: float = 1000.0) -> Dict[int, Point]:
    """Positions of ``n`` nodes evenly spaced on a circle (test helper)."""
    import math

    return {
        i: Point(
            scale + scale * math.cos(2 * math.pi * i / n),
            scale + scale * math.sin(2 * math.pi * i / n),
        )
        for i in range(n)
    }
