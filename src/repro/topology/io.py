"""Topology serialization.

Plain JSON, so topologies can be archived with experiment outputs and
re-loaded bit-for-bit (node ids, coordinates, per-direction costs, and link
insertion order — the order matters because it defines header link ids).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import TopologyError
from ..geometry import Point
from .graph import Topology

FORMAT_VERSION = 1


def topology_to_dict(topo: Topology) -> Dict[str, Any]:
    """A JSON-serializable representation of ``topo``."""
    return {
        "format": FORMAT_VERSION,
        "name": topo.name,
        "nodes": [
            {"id": node, "x": topo.position(node).x, "y": topo.position(node).y}
            for node in sorted(topo.nodes())
        ],
        "links": [
            {
                "u": link.u,
                "v": link.v,
                "cost": topo.cost(link.u, link.v),
                "reverse_cost": topo.cost(link.v, link.u),
            }
            for link in topo.links()
        ],
    }


def topology_from_dict(data: Dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise TopologyError(f"unsupported topology format: {data.get('format')!r}")
    topo = Topology(data.get("name", "topology"))
    for node in data["nodes"]:
        topo.add_node(int(node["id"]), Point(float(node["x"]), float(node["y"])))
    for link in data["links"]:
        topo.add_link(
            int(link["u"]),
            int(link["v"]),
            cost=float(link["cost"]),
            reverse_cost=float(link["reverse_cost"]),
        )
    return topo


def save_topology(topo: Topology, path: Union[str, Path]) -> None:
    """Write ``topo`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(topology_to_dict(topo), indent=2))


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology previously written by :func:`save_topology`."""
    return topology_from_dict(json.loads(Path(path).read_text()))
