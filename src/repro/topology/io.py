"""Topology serialization and public graph-format loading.

Two layers:

* the repo's own archival format — plain JSON, re-loaded bit-for-bit
  (node ids, coordinates, per-direction costs, and link insertion order
  — the order matters because it defines header link ids);
* :func:`load_graph_file` — a sniffing loader for the public formats
  large real topologies are distributed in: GraphML (topology-zoo
  style), whitespace edge lists (Rocketfuel ``weights.intra`` style),
  Rocketfuel ``.cch``, and the JSON format above.  Like the paper
  (§IV-A), loaded graphs get a seeded uniform-random embedding in the
  simulation area, and are restricted to their largest connected
  component, since routing evaluation requires connectivity.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from xml.etree import ElementTree

from ..errors import TopologyError
from ..geometry import Point
from .generators import DEFAULT_AREA
from .graph import Topology

FORMAT_VERSION = 1


def topology_to_dict(topo: Topology) -> Dict[str, Any]:
    """A JSON-serializable representation of ``topo``."""
    return {
        "format": FORMAT_VERSION,
        "name": topo.name,
        "nodes": [
            {"id": node, "x": topo.position(node).x, "y": topo.position(node).y}
            for node in sorted(topo.nodes())
        ],
        "links": [
            {
                "u": link.u,
                "v": link.v,
                "cost": topo.cost(link.u, link.v),
                "reverse_cost": topo.cost(link.v, link.u),
            }
            for link in topo.links()
        ],
    }


def topology_from_dict(data: Dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise TopologyError(f"unsupported topology format: {data.get('format')!r}")
    topo = Topology(data.get("name", "topology"))
    for node in data["nodes"]:
        topo.add_node(int(node["id"]), Point(float(node["x"]), float(node["y"])))
    for link in data["links"]:
        topo.add_link(
            int(link["u"]),
            int(link["v"]),
            cost=float(link["cost"]),
            reverse_cost=float(link["reverse_cost"]),
        )
    return topo


def save_topology(topo: Topology, path: Union[str, Path]) -> None:
    """Write ``topo`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(topology_to_dict(topo), indent=2))


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology previously written by :func:`save_topology`."""
    return topology_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Public graph formats
# ----------------------------------------------------------------------

_GRAPHML_NS = "{http://graphml.graphdrawing.org/xmlns}"

#: GraphML edge-data keys accepted as a link cost, in preference order.
_GRAPHML_WEIGHT_KEYS = ("weight", "cost", "metric", "igp_metric")


def parse_graphml(text: str) -> List[Tuple[str, str, float]]:
    """Parse GraphML into ``(source, target, weight)`` string edges.

    Handles both namespaced and bare-element documents.  An edge's cost
    comes from the first ``<data>`` bound to a ``<key>`` whose
    ``attr.name`` is one of :data:`_GRAPHML_WEIGHT_KEYS` (or whose id is
    such a name directly); everything else defaults to 1.
    """
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise TopologyError(f"malformed GraphML: {exc}") from exc
    ns = _GRAPHML_NS if root.tag.startswith(_GRAPHML_NS) else ""
    weight_ids = {}
    for key in root.iter(f"{ns}key"):
        attr_name = (key.get("attr.name") or key.get("id") or "").lower()
        if key.get("for", "edge") == "edge" and attr_name in _GRAPHML_WEIGHT_KEYS:
            weight_ids[key.get("id")] = _GRAPHML_WEIGHT_KEYS.index(attr_name)
    edges: List[Tuple[str, str, float]] = []
    for edge in root.iter(f"{ns}edge"):
        source, target = edge.get("source"), edge.get("target")
        if source is None or target is None:
            raise TopologyError("GraphML edge without source/target")
        weight, weight_rank = 1.0, len(_GRAPHML_WEIGHT_KEYS)
        for data in edge.findall(f"{ns}data"):
            rank = weight_ids.get(data.get("key"), None)
            if rank is None or rank >= weight_rank:
                continue
            try:
                value = float((data.text or "").strip())
            except ValueError:
                continue  # non-numeric annotation under a weight-like key
            if value > 0:
                weight, weight_rank = value, rank
        edges.append((source, target, weight))
    if not edges:
        raise TopologyError("GraphML document contains no edges")
    return edges


def sniff_graph_format(path: Path, text: str) -> str:
    """``json``, ``graphml``, ``cch``, or ``edges`` for a graph file."""
    suffix = path.suffix.lower()
    if suffix == ".json":
        return "json"
    if suffix in (".graphml", ".xml"):
        return "graphml"
    if suffix == ".cch":
        return "cch"
    head = text.lstrip()[:4096]
    if head.startswith("{"):
        return "json"
    if head.startswith("<") and "graphml" in head.lower():
        return "graphml"
    return "edges"


def load_graph_file(
    path: Union[str, Path],
    seed: int = 0,
    fmt: Optional[str] = None,
    area: float = DEFAULT_AREA,
) -> Topology:
    """Load a topology from any supported graph file format.

    ``fmt`` forces ``json``/``graphml``/``cch``/``edges``; by default the
    format is sniffed from the suffix and content.  Non-JSON formats are
    embedded uniformly at random in the simulation area using ``seed``
    (the repo's JSON format carries its own exact coordinates) and
    restricted to the largest connected component.
    """
    from . import rocketfuel

    target = Path(path)
    try:
        text = target.read_text()
    except OSError as exc:
        raise TopologyError(f"cannot read {target}: {exc}") from exc
    fmt = fmt or sniff_graph_format(target, text)
    if fmt == "json":
        return topology_from_dict(json.loads(text))
    if fmt == "graphml":
        edges = parse_graphml(text)
    elif fmt == "cch":
        edges = rocketfuel.parse_cch(text.splitlines())
    elif fmt == "edges":
        edges = rocketfuel.parse_edge_list(text.splitlines())
    else:
        raise TopologyError(f"unknown graph format {fmt!r}")
    rng = random.Random(seed)
    return rocketfuel.topology_from_edges(
        edges, rng=rng, name=target.stem, area=area
    )
