"""The ISP topology catalog of Table II.

The paper evaluates on eight Rocketfuel-derived ISP topologies (Table II).
This catalog reproduces each of them as a synthetic geometric topology with
**exactly** the published node and link counts (see DESIGN.md §2 for why
this substitution is faithful).  Two additional profiles (AS2914, AS3356)
appear only in the labels of Figs. 12-13; they are included as *extended*
profiles with documented representative sizes.

Profiles are deterministic: ``build(name, seed)`` always returns the same
topology for the same seed, so experiments are reproducible.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, NamedTuple

from ..errors import EvaluationError
from .graph import Topology
from .generators import geometric_isp


class IspProfile(NamedTuple):
    """Size and generator parameters for one AS of Table II."""

    name: str
    n_nodes: int
    n_links: int
    #: Waxman locality: lower = more geometric (short links).  Dense meshes
    #: like AS3549 need a higher value or the extra links pile up locally.
    locality: float
    #: Whether this AS appears in Table II (False for the Fig. 12-13 extras).
    in_table2: bool = True


#: Table II of the paper, in publication order.
TABLE2_PROFILES: List[IspProfile] = [
    IspProfile("AS209", 58, 108, 0.22),
    IspProfile("AS701", 83, 219, 0.22),
    IspProfile("AS1239", 52, 84, 0.20),
    IspProfile("AS3320", 70, 355, 0.30),
    IspProfile("AS3549", 61, 486, 0.35),
    IspProfile("AS3561", 92, 329, 0.28),
    IspProfile("AS4323", 51, 161, 0.25),
    IspProfile("AS7018", 115, 148, 0.18),
]

#: ASes named only in the CDF labels of Figs. 12-13; sizes are representative
#: Rocketfuel-scale guesses (documented substitution, DESIGN.md §2).
EXTENDED_PROFILES: List[IspProfile] = [
    IspProfile("AS2914", 110, 180, 0.20, in_table2=False),
    IspProfile("AS3356", 63, 285, 0.30, in_table2=False),
]

ALL_PROFILES: List[IspProfile] = TABLE2_PROFILES + EXTENDED_PROFILES

_PROFILE_BY_NAME: Dict[str, IspProfile] = {p.name: p for p in ALL_PROFILES}


def profile(name: str) -> IspProfile:
    """The profile for AS ``name`` (e.g. ``"AS1239"``)."""
    try:
        return _PROFILE_BY_NAME[name]
    except KeyError:
        raise EvaluationError(
            f"unknown ISP profile {name!r}; known: {sorted(_PROFILE_BY_NAME)}"
        ) from None


def names(include_extended: bool = False) -> List[str]:
    """Catalog AS names, Table II order."""
    profiles = ALL_PROFILES if include_extended else TABLE2_PROFILES
    return [p.name for p in profiles]


def build(name: str, seed: int = 0) -> Topology:
    """Build the catalog topology for AS ``name`` with the given seed.

    The returned topology is connected, has exactly the Table II node and
    link counts, unit link costs (the paper routes on hop count), and nodes
    placed in the 2000 x 2000 simulation area.
    """
    prof = profile(name)
    # zlib.crc32 is stable across processes (unlike hash(), which is salted).
    rng = random.Random(zlib.crc32(name.encode()) * 1_000_003 + seed)
    topo = geometric_isp(
        prof.n_nodes,
        prof.n_links,
        rng,
        name=f"{prof.name}-seed{seed}",
        locality=prof.locality,
    )
    assert topo.is_connected()
    return topo


def build_all(seed: int = 0, include_extended: bool = False) -> Dict[str, Topology]:
    """Build every catalog topology (Table II order)."""
    return {n: build(n, seed) for n in names(include_extended)}


def summary_rows(include_extended: bool = False) -> List[Dict[str, object]]:
    """Rows of Table II: AS name, node count, link count."""
    profiles = ALL_PROFILES if include_extended else TABLE2_PROFILES
    return [
        {"topology": p.name, "nodes": p.n_nodes, "links": p.n_links}
        for p in profiles
    ]
