"""Numpy mirror of the flat-array CSR view.

The pure-Python :class:`~repro.topology.csr.CSRView` keeps its parallel
*lists* — they are what the reference kernels index, and every golden
byte is pinned to their iteration order.  This module adds a cached
numpy mirror of exactly those arrays so the vectorized kernels
(:mod:`repro.routing.kernels`) can run whole-array sweeps over
contiguous buffers instead of per-element Python bytecode:

* ``indptr``/``nbr``/``lid`` as ``int64`` and ``wfwd``/``wrev`` as
  ``float64``, bit-for-bit the same values as the list view;
* ``exact`` — whether every directed cost is a strictly positive
  integer small enough that any simple-path sum stays below 2**53.
  Sums of such float64 costs are exact (no rounding) and every
  tolerance-window comparison in the reference kernel collapses to an
  exact comparison, which is the precondition under which the sweep
  kernels are provably bit-identical to the heap-based reference (see
  DESIGN.md §12).  All built-in generators (catalog, grid, ring, scale)
  emit unit costs, so the flag is almost always true; a loaded topology
  with fractional or zero costs simply keeps the Python kernels;
* ``unit`` — whether every directed cost is exactly 1.0, which turns
  Dijkstra into BFS and unlocks the O(arcs) frontier-wave kernel.

The mirror can also *wrap* externally owned buffers (the shared-memory
handoff of :mod:`repro.topology.shm` attaches worker-side views without
copying); in that case the arrays alias the shared segment.

Everything degrades gracefully without numpy: :func:`numpy_or_none`
returns ``None`` and no mirror is ever built.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

try:  # numpy is an optional extra (``pip install repro[fast]``)
    import numpy as _np
except Exception:  # pragma: no cover - exercised via REPRO_KERNEL tests
    _np = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .csr import CSRView


def numpy_or_none():
    """The numpy module when importable, else ``None`` (never raises)."""
    return _np


class NumpyCSR:
    """Contiguous numpy buffers mirroring one :class:`CSRView`.

    Attributes mirror the list view field for field; ``node_arc`` maps
    each arc to the dense index of the node that owns its slice (the
    gather side of the sweep kernels), and ``deg`` is the per-node arc
    count.  ``exact`` marks integer-valued costs (see module docstring).
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "nbr",
        "wfwd",
        "wrev",
        "lid",
        "node_arc",
        "deg",
        "ids",
        "exact",
        "unit",
        "lid_size",
    )

    def __init__(
        self,
        n: int,
        indptr,
        nbr,
        wfwd,
        wrev,
        lid,
        ids,
        lid_size: int,
    ) -> None:
        np = _np
        assert np is not None, "NumpyCSR requires numpy"
        self.n = n
        self.m = int(len(nbr))
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.nbr = np.ascontiguousarray(nbr, dtype=np.int64)
        self.wfwd = np.ascontiguousarray(wfwd, dtype=np.float64)
        self.wrev = np.ascontiguousarray(wrev, dtype=np.float64)
        self.lid = np.ascontiguousarray(lid, dtype=np.int64)
        self.ids = np.ascontiguousarray(ids, dtype=np.int64)
        self.lid_size = lid_size
        self.deg = np.diff(self.indptr)
        self.node_arc = np.repeat(
            np.arange(self.n, dtype=np.int64), self.deg
        )
        if self.m:
            # Strictly positive integers whose worst-case simple-path sum
            # (n hops of the largest cost) stays exactly representable.
            integral = bool(
                np.isfinite(self.wfwd).all()
                and np.isfinite(self.wrev).all()
                and (self.wfwd == np.floor(self.wfwd)).all()
                and (self.wrev == np.floor(self.wrev)).all()
                and float(self.wfwd.min()) >= 1.0
                and float(self.wrev.min()) >= 1.0
            )
            if integral:
                worst = max(float(self.wfwd.max()), float(self.wrev.max()))
                integral = worst * max(n, 1) < 2.0**53
            self.exact = integral
            self.unit = bool(
                self.exact
                and (self.wfwd == 1.0).all()
                and (self.wrev == 1.0).all()
            )
        else:
            self.exact = True
            self.unit = True

    @classmethod
    def from_view(cls, view: "CSRView") -> "NumpyCSR":
        """Build the mirror from a list-backed CSR view (one copy)."""
        return cls(
            view.n,
            view.indptr,
            view.nbr,
            view.wfwd,
            view.wrev,
            view.lid,
            view.ids,
            view.lid_size,
        )

    def node_flags(self, flags: Optional[bytearray]):
        """A ``bool`` array view of a node exclusion flag array (or None)."""
        if flags is None:
            return None
        return _np.frombuffer(bytes(flags), dtype=_np.uint8).astype(bool)

    def link_flags(self, flags: Optional[bytearray]):
        """A ``bool`` array view of a link exclusion flag array (or None)."""
        if flags is None:
            return None
        return _np.frombuffer(bytes(flags), dtype=_np.uint8).astype(bool)

    def __repr__(self) -> str:
        return f"NumpyCSR(nodes={self.n}, arcs={self.m}, exact={self.exact})"


def numpy_view(view: "CSRView") -> Optional[NumpyCSR]:
    """The cached numpy mirror of ``view`` (``None`` without numpy).

    The mirror is built once per CSR view (hence once per topology
    version) and cached on the view itself; a prebuilt mirror installed
    by the shared-memory attach path is honoured as-is.
    """
    if _np is None:
        return None
    cached = view.np_cache
    if cached is None:
        cached = NumpyCSR.from_view(view)
        view.np_cache = cached
    return cached
