"""Loading Rocketfuel-style topology files.

The paper derives its topologies from the Rocketfuel project and then
*randomly places the nodes in a 2000 x 2000 area* (§IV-A) — Rocketfuel
maps carry no usable coordinates.  This module does the same for users
who have the data files (they are not redistributable, which is why the
catalog ships synthetic equivalents instead — DESIGN.md §2):

* **edge lists** (the widely shared ``weights.intra``-style format):
  one ``<node> <node> [weight]`` triple per line, ``#`` comments;
* **cch files** (Rocketfuel's native ``<asn>.cch``): per-line router
  records ``uid ... -> <nbr1> <nbr2> ... ``; we extract the router id and
  its ``<...>`` neighbor ids and ignore external (negative/euid) links.

Node names are mapped to dense integer ids in first-seen order.  Parallel
edges and self-loops are dropped.  The embedding is uniform random in the
paper's simulation area, seeded by the caller for reproducibility.
"""

from __future__ import annotations

import random
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import TopologyError
from ..geometry import Point
from .generators import DEFAULT_AREA
from .graph import Topology

_CCH_NEIGHBOR = re.compile(r"<(\d+)>")


def parse_edge_list(lines: Iterable[str]) -> List[Tuple[str, str, float]]:
    """Parse ``node node [weight]`` lines into string-keyed edges."""
    edges: List[Tuple[str, str, float]] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) < 2:
            raise TopologyError(f"line {lineno}: expected 'node node [weight]'")
        weight = 1.0
        if len(parts) >= 3:
            try:
                weight = float(parts[2])
            except ValueError:
                raise TopologyError(
                    f"line {lineno}: bad weight {parts[2]!r}"
                ) from None
        if weight <= 0:
            raise TopologyError(f"line {lineno}: non-positive weight {weight}")
        edges.append((parts[0], parts[1], weight))
    return edges


def parse_cch(lines: Iterable[str]) -> List[Tuple[str, str, float]]:
    """Parse Rocketfuel ``.cch`` router records into unit-weight edges.

    Each backbone line starts with a numeric uid and lists internal
    neighbors as ``<uid>`` tokens after ``->``.  External links
    (``{-euid}``) and non-router lines are ignored.
    """
    edges: List[Tuple[str, str, float]] = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head = line.split()[0]
        if not head.lstrip("-").isdigit():
            continue
        uid = head
        if uid.startswith("-"):
            continue  # external node record
        _, _, tail = line.partition("->")
        if not tail:
            continue
        for match in _CCH_NEIGHBOR.finditer(tail):
            edges.append((uid, match.group(1), 1.0))
    return edges


def topology_from_edges(
    edges: List[Tuple[str, str, float]],
    rng: Optional[random.Random] = None,
    name: str = "rocketfuel",
    area: float = DEFAULT_AREA,
    largest_component_only: bool = True,
) -> Topology:
    """Build an embedded topology from parsed edges.

    Duplicate edges keep the first weight; self-loops are dropped; node
    names map to dense ids in first-seen order; nodes are placed uniformly
    at random in the simulation area (§IV-A).  With
    ``largest_component_only`` the result is restricted to the largest
    connected component, as routing evaluation requires connectivity.
    """
    if not edges:
        raise TopologyError("no edges parsed")
    rng = rng or random.Random(0)
    ids: Dict[str, int] = {}

    def node_id(name_: str) -> int:
        if name_ not in ids:
            ids[name_] = len(ids)
        return ids[name_]

    unique: Dict[Tuple[int, int], float] = {}
    for a, b, w in edges:
        if a == b:
            continue
        u, v = node_id(a), node_id(b)
        key = (min(u, v), max(u, v))
        unique.setdefault(key, w)

    topo = Topology(name)
    for _name, nid in ids.items():
        topo.add_node(nid, Point(rng.uniform(0, area), rng.uniform(0, area)))
    for (u, v), w in unique.items():
        topo.add_link(u, v, cost=w)

    if largest_component_only and not topo.is_connected():
        best: set = set()
        seen: set = set()
        for node in topo.nodes():
            if node in seen:
                continue
            component = topo.component_of(node)
            seen |= component
            if len(component) > len(best):
                best = component
        restricted = Topology(name)
        for node in sorted(best):
            restricted.add_node(node, topo.position(node))
        for link in topo.links():
            if link.u in best and link.v in best:
                restricted.add_link(link.u, link.v, cost=topo.cost(link.u, link.v))
        return restricted
    return topo


def load_rocketfuel(
    path: Union[str, Path],
    rng: Optional[random.Random] = None,
    fmt: Optional[str] = None,
    area: float = DEFAULT_AREA,
) -> Topology:
    """Load a Rocketfuel file as an embedded topology.

    ``fmt`` is ``"edges"`` or ``"cch"``; by default ``.cch`` files parse
    as cch and everything else as an edge list.
    """
    target = Path(path)
    lines = target.read_text().splitlines()
    if fmt is None:
        fmt = "cch" if target.suffix == ".cch" else "edges"
    if fmt == "cch":
        edges = parse_cch(lines)
    elif fmt == "edges":
        edges = parse_edge_list(lines)
    else:
        raise TopologyError(f"unknown rocketfuel format {fmt!r}")
    return topology_from_edges(edges, rng=rng, name=target.stem, area=area)
