"""Internet-scale hierarchical ISP topology generator.

The Table II catalog tops out at 115 nodes and the geometric generator's
O(n^2) MST makes it unusable past a few thousand.  This generator builds
ISP-like topologies at 10k–100k nodes in O(n) with the three-tier
structure real carrier networks exhibit:

* **backbone** — a small core (ring plus random chords, so it is
  2-connected with O(log) diameter) spread uniformly over the
  simulation area;
* **PoPs** — each point of presence has two aggregation routers
  (a redundant pair, linked to each other) uplinked to two distinct
  backbone routers, placed at a random city point;
* **access** — the remaining routers, dual-homed to both aggregation
  routers of their PoP and jittered geographically around its center,
  so the paper's *regional* circle failures (§IV-A) knock out whole
  PoPs rather than scattered routers.

All link costs are 1 (pure hop-count IGP metric, like the catalog),
which keeps the graph on the exact/unit fast path of the vectorized
kernels, and the network diameter stays around a dozen hops at any
size.  Seeding is ``zlib.crc32`` on ``name:seed`` like the catalog, so
a ``(n, seed)`` pair is reproducible everywhere.
"""

from __future__ import annotations

import math
import random
import zlib

from ..errors import TopologyError
from ..geometry import Point
from .generators import DEFAULT_AREA
from .graph import Topology

#: Mean routers per PoP (2 aggregation + ~30 access).
_POP_SIZE = 32

#: Geographic spread of a PoP's routers around its center — comparable to
#: the paper's smallest failure radius (100), so a circle scenario that
#: hits a PoP center takes out most of the PoP.
_POP_JITTER = 60.0

MIN_NODES = 16
MAX_NODES = 1_000_000


def scale_topology(
    n: int,
    seed: int = 0,
    area: float = 0.0,
    name: str = "",
) -> Topology:
    """An ``n``-node hierarchical backbone/PoP/access topology.

    Deterministic in ``(n, seed)``; O(n) time and memory; every cost 1.
    ``area`` defaults to ``DEFAULT_AREA`` scaled by ``sqrt(n / 1000)``, so
    geographic link density (and hence cross-link counts, SRLG sizes, and
    circle-scenario blast radii relative to the map) stays constant as the
    network grows, like real footprints do.
    """
    if not MIN_NODES <= n <= MAX_NODES:
        raise TopologyError(
            f"scale topology size {n} out of range [{MIN_NODES}, {MAX_NODES}]"
        )
    if area <= 0.0:
        area = DEFAULT_AREA * max(1.0, math.sqrt(n / 1000.0))
    name = name or f"scale{n}"
    rng = random.Random(zlib.crc32(f"{name}:{seed}".encode("utf-8")))
    topo = Topology(name)

    # --- tier sizes -------------------------------------------------
    backbone = max(8, min(n // 4, n // 1000 + 8))
    remaining = n - backbone
    pops = max(1, remaining // _POP_SIZE)
    if remaining - 2 * pops < 0:  # tiny graphs: fewer, fatter PoPs
        pops = max(1, remaining // 2)
    access_total = remaining - 2 * pops

    # --- backbone: ring + chords ------------------------------------
    for i in range(backbone):
        topo.add_node(i, Point(rng.uniform(0, area), rng.uniform(0, area)))
    for i in range(backbone):
        topo.add_link(i, (i + 1) % backbone)
    chords = set()
    for i in range(backbone):
        j = rng.randrange(backbone)
        lo, hi = min(i, j), max(i, j)
        if hi - lo in (0, 1) or (lo == 0 and hi == backbone - 1):
            continue  # self-loop or already a ring edge
        if (lo, hi) not in chords:
            chords.add((lo, hi))
            topo.add_link(lo, hi)

    # --- PoPs -------------------------------------------------------
    # Access routers are spread round-robin so PoP sizes differ by at
    # most one; the rng still decides *which* backbone routers and
    # coordinates each PoP gets.
    next_id = backbone
    base, extra = divmod(access_total, pops)
    for p in range(pops):
        cx, cy = rng.uniform(0, area), rng.uniform(0, area)

        def jittered() -> Point:
            return Point(
                min(area, max(0.0, cx + rng.gauss(0.0, _POP_JITTER))),
                min(area, max(0.0, cy + rng.gauss(0.0, _POP_JITTER))),
            )

        agg1, agg2 = next_id, next_id + 1
        next_id += 2
        topo.add_node(agg1, jittered())
        topo.add_node(agg2, jittered())
        topo.add_link(agg1, agg2)
        up1 = rng.randrange(backbone)
        up2 = rng.randrange(backbone)
        if up2 == up1:
            up2 = (up1 + 1 + rng.randrange(backbone - 1)) % backbone
        topo.add_link(agg1, up1)
        topo.add_link(agg2, up2)

        count = base + (1 if p < extra else 0)
        for _ in range(count):
            node = next_id
            next_id += 1
            topo.add_node(node, jittered())
            topo.add_link(node, agg1)
            topo.add_link(node, agg2)
    return topo
