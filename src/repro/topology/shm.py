"""Zero-copy topology handoff over ``multiprocessing.shared_memory``.

``run_sharded`` workers used to rebuild their topology from its spec —
fine for 100-node catalog graphs, wasteful at 50k nodes where every pool
process pays the generation plus CSR-construction cost again.  This
module serializes a topology's flat arrays (coordinates, CSR adjacency,
link table, capacities) into **one** shared-memory block in the parent;
workers attach the block and wrap the arrays in place:

* the numpy CSR mirror (:class:`~repro.topology.npcsr.NumpyCSR`) aliases
  the shared buffers directly — the vectorized kernels in every worker
  run on the *same physical pages*, no copy, no pickle;
* the dict-level :class:`~repro.topology.graph.Topology` facade (needed
  by scenario generation and the pure-Python fallback paths) is rebuilt
  from the arrays in O(nodes + arcs) — cheaper than re-running a
  generator and identical in every order-sensitive detail, because the
  arrays preserve the parent's adjacency iteration order.

Lifecycle: :func:`export_topology` refcounts per (topology, version), so
overlapping users — e.g. consecutive pool-rebuild retry rounds inside
``run_sharded`` — share one block; :meth:`TopologyExport.release` drops
a reference and unlinks the block when the last one goes.  Workers
attach read-only-by-convention and never unlink (the parent owns the
block; attachments are memoized per process and unmapped at process
exit).  Everything degrades gracefully without numpy:
:func:`shm_supported` returns False and callers fall back to the
rebuild-by-spec path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

from .. import obs
from ..errors import TopologyError
from ..geometry import Point
from .graph import Link, Topology
from .npcsr import NumpyCSR, numpy_or_none

#: ``auto`` only hands off via shared memory at or above this node count —
#: below it, rebuilding from the spec is at least as fast as attaching.
SHM_MIN_NODES = 5000

#: Environment variable: ``auto`` (default), ``off``, or ``force``.
SHM_ENV = "REPRO_SHM"


@dataclass(frozen=True)
class ShmTopologySpec:
    """Picklable description of an exported topology block."""

    shm_name: str
    topo_name: str
    n_nodes: int
    n_arcs: int
    n_links: int  # link-table slots, retired ones included
    version: int


def _layout(spec: ShmTopologySpec):
    """(name -> (offset, dtype, count)) for the block's array segments."""
    np = numpy_or_none()
    n, m, nl = spec.n_nodes, spec.n_arcs, spec.n_links
    fields = (
        ("ids", np.int64, n),
        ("x", np.float64, n),
        ("y", np.float64, n),
        ("indptr", np.int64, n + 1),
        ("nbr", np.int64, m),
        ("lid", np.int64, m),
        ("wfwd", np.float64, m),
        ("wrev", np.float64, m),
        ("link_u", np.int64, nl),
        ("link_v", np.int64, nl),
        ("cap", np.float64, nl),
    )
    layout = {}
    offset = 0
    for name, dtype, count in fields:
        layout[name] = (offset, dtype, count)
        offset += int(np.dtype(dtype).itemsize) * count
    return layout, offset


def _arrays(spec: ShmTopologySpec, buf) -> Dict[str, "object"]:
    """Numpy views over a block's segments (zero copy)."""
    np = numpy_or_none()
    layout, total = _layout(spec)
    if len(buf) < total:
        raise TopologyError(
            f"shared topology block {spec.shm_name} too small: "
            f"{len(buf)} < {total} bytes"
        )
    return {
        name: np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
        for name, (offset, dtype, count) in layout.items()
    }


def shm_supported() -> bool:
    """Whether shared-memory handoff can be used in this process."""
    return numpy_or_none() is not None


def shm_mode() -> str:
    """The validated ``REPRO_SHM`` setting (``auto`` when unset)."""
    import os

    mode = os.environ.get(SHM_ENV, "auto").strip().lower() or "auto"
    if mode not in ("auto", "off", "force"):
        raise TopologyError(
            f"invalid {SHM_ENV}={mode!r}; expected auto, off, or force"
        )
    return mode


def shm_eligible(topo: Topology) -> bool:
    """Whether ``topo`` should be handed to workers via shared memory."""
    if not shm_supported():
        return False
    mode = shm_mode()
    if mode == "off":
        return False
    if mode == "force":
        return True
    return topo.node_count >= SHM_MIN_NODES


class TopologyExport:
    """Parent-side owner of one exported topology block (refcounted)."""

    def __init__(self, topo: Topology, spec: ShmTopologySpec, shm) -> None:
        self.topo = topo
        self.spec = spec
        self._shm = shm
        self.refcount = 1

    def release(self) -> None:
        """Drop one reference; unlink the block when the last one goes."""
        self.refcount -= 1
        if self.refcount > 0:
            return
        key = (id(self.topo), self.spec.version)
        _EXPORTS.pop(key, None)
        _EXPORTS_BY_NAME.pop(self.spec.shm_name, None)
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        if obs.enabled():
            obs.inc("shm.unlinks")


#: Live parent-side exports: (id(topo), version) -> TopologyExport.  The
#: export holds a strong reference to the topology, so an id() can never
#: be reused while its entry is alive.
_EXPORTS: Dict[Tuple[int, int], TopologyExport] = {}
_EXPORTS_BY_NAME: Dict[str, TopologyExport] = {}


def export_topology(topo: Topology) -> TopologyExport:
    """Serialize ``topo``'s arrays into a shared-memory block (refcounted).

    A second export of the same (topology, version) returns the existing
    block with its refcount bumped — callers must pair every call with
    :meth:`TopologyExport.release`.
    """
    np = numpy_or_none()
    if np is None:
        raise TopologyError("shared-memory handoff requires numpy")
    csr = topo.csr()
    key = (id(topo), csr.version)
    existing = _EXPORTS.get(key)
    if existing is not None:
        existing.refcount += 1
        return existing

    spec = ShmTopologySpec(
        shm_name="",
        topo_name=topo.name,
        n_nodes=csr.n,
        n_arcs=len(csr.nbr),
        n_links=len(topo._links),
        version=csr.version,
    )
    _, total = _layout(spec)
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    spec = ShmTopologySpec(
        shm_name=shm.name,
        topo_name=spec.topo_name,
        n_nodes=spec.n_nodes,
        n_arcs=spec.n_arcs,
        n_links=spec.n_links,
        version=spec.version,
    )
    arrays = _arrays(spec, shm.buf)
    arrays["ids"][:] = csr.ids
    arrays["x"][:] = [topo._coords[node].x for node in csr.ids]
    arrays["y"][:] = [topo._coords[node].y for node in csr.ids]
    arrays["indptr"][:] = csr.indptr
    arrays["nbr"][:] = csr.nbr
    arrays["lid"][:] = csr.lid
    arrays["wfwd"][:] = csr.wfwd
    arrays["wrev"][:] = csr.wrev
    arrays["link_u"][:] = [-1 if link is None else link.u for link in topo._links]
    arrays["link_v"][:] = [-1 if link is None else link.v for link in topo._links]
    arrays["cap"][:] = [
        math.nan if link is None else topo._capacities.get(link, math.nan)
        for link in topo._links
    ]
    export = TopologyExport(topo, spec, shm)
    _EXPORTS[key] = export
    _EXPORTS_BY_NAME[spec.shm_name] = export
    if obs.enabled():
        obs.inc("shm.exports")
        obs.gauge("shm.block_bytes", float(total))
    return export


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process memo: shm name -> (keepalive refs, Topology).  The mapping
#: must stay referenced as long as the topology's numpy mirror aliases
#: its buffer; both are dropped only at process exit.
_ATTACHED: Dict[str, Tuple[tuple, Topology]] = {}


def _neuter(shm) -> tuple:
    """Disarm a handle's destructor; return refs keeping the mapping alive.

    Worker attachments live for the whole process: at interpreter
    shutdown ``SharedMemory.__del__`` would try to close the mapping
    while numpy views still hold exported pointers into it, spewing an
    unfixable ``BufferError`` per worker.  Clearing the handle's buffer
    and mmap slots (after taking our own strong references) makes the
    destructor a no-op on them; the OS unmaps at process exit.
    """
    keepalive = (shm, shm._buf, shm._mmap)  # type: ignore[attr-defined]
    shm._buf = None  # type: ignore[attr-defined]
    shm._mmap = None  # type: ignore[attr-defined]
    return keepalive


def _attach_block(name: str):
    """Attach an existing block without adopting ownership of it.

    Python < 3.13 registers every attachment with the resource tracker,
    which would unlink the block when the *worker* exits; unregistering
    restores parent-owned semantics (3.13+ has ``track=False`` for this).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on python version
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        return shm


def attach_topology(spec: ShmTopologySpec) -> Topology:
    """The topology behind ``spec``, attached zero-copy (memoized).

    In the exporting process itself this returns the original topology
    object — the parent-side serial retry path needs no second copy.
    """
    export = _EXPORTS_BY_NAME.get(spec.shm_name)
    if export is not None:
        return export.topo
    memo = _ATTACHED.get(spec.shm_name)
    if memo is not None:
        return memo[1]

    shm = _attach_block(spec.shm_name)
    buf = shm.buf
    keepalive = _neuter(shm)
    arrays = _arrays(spec, buf)
    ids = arrays["ids"].tolist()
    xs, ys = arrays["x"].tolist(), arrays["y"].tolist()
    indptr = arrays["indptr"].tolist()
    nbr, wfwd = arrays["nbr"].tolist(), arrays["wfwd"].tolist()

    topo = Topology(spec.topo_name)
    topo._coords = {node: Point(x, y) for node, x, y in zip(ids, xs, ys)}
    # Adjacency slices preserve the parent's dict insertion order, so the
    # rebuilt CSR view — and every order-sensitive kernel outcome — is
    # identical to the parent's.
    topo._adjacency = {
        ids[i]: {
            ids[nbr[arc]]: wfwd[arc] for arc in range(indptr[i], indptr[i + 1])
        }
        for i in range(spec.n_nodes)
    }
    links = [
        None if u < 0 else Link(int(u), int(v))
        for u, v in zip(arrays["link_u"].tolist(), arrays["link_v"].tolist())
    ]
    topo._links = links
    topo._link_index = {
        link: index for index, link in enumerate(links) if link is not None
    }
    topo._capacities = {
        links[index]: cap
        for index, cap in enumerate(arrays["cap"].tolist())
        if links[index] is not None and not math.isnan(cap)
    }
    topo._version = spec.version

    csr = topo.csr()
    if csr.n != spec.n_nodes or len(csr.nbr) != spec.n_arcs:
        raise TopologyError(
            f"shared topology {spec.shm_name} is inconsistent: "
            f"{csr.n} nodes / {len(csr.nbr)} arcs, expected "
            f"{spec.n_nodes} / {spec.n_arcs}"
        )
    # The numpy mirror aliases the shared buffers — zero copy.
    csr.np_cache = NumpyCSR(
        spec.n_nodes,
        arrays["indptr"],
        arrays["nbr"],
        arrays["wfwd"],
        arrays["wrev"],
        arrays["lid"],
        arrays["ids"],
        spec.n_links,
    )
    _ATTACHED[spec.shm_name] = (keepalive, topo)
    if obs.enabled():
        obs.inc("shm.attaches")
    return topo


def attached_count() -> int:
    """Number of distinct blocks this process has attached (test hook)."""
    return len(_ATTACHED)
