"""One-string topology specs shared by the CLI, eval, and soak layers.

A spec is resolved in order:

* ``grid:RxC`` or ``grid:RxC:SPACING`` — a synthetic grid
  (:func:`~repro.topology.generators.grid_topology`), the fast option
  for soak smoke runs and tests;
* ``scale:N`` (``N`` supports a ``k`` suffix: ``scale:50k``) — an
  ``N``-node hierarchical backbone/PoP/access ISP topology
  (:func:`~repro.topology.scale.scale_topology`), the internet-scale
  profile; deterministic in ``(N, seed)``;
* ``file:PATH`` — any supported public graph format (GraphML, edge
  list, Rocketfuel ``.cch``, archival JSON) via
  :func:`~repro.topology.io.load_graph_file`;
* an ``AS`` name (``AS1239``) — built from the Table II catalog;
* anything else — a topology JSON path for
  :func:`~repro.topology.io.load_topology`.

Errors are always :class:`~repro.errors.EvaluationError` with a
one-line, user-facing message — the CLI prints them verbatim and exits
2 instead of dumping a traceback.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..errors import EvaluationError, ReproError
from .generators import grid_topology
from .graph import Topology
from . import isp_catalog
from .io import load_graph_file, load_topology
from .scale import scale_topology

_GRID_RE = re.compile(r"^grid:(\d+)x(\d+)(?::(\d+(?:\.\d+)?))?$", re.IGNORECASE)
_SCALE_RE = re.compile(r"^scale:(\d+)(k?)$", re.IGNORECASE)


def topology_from_spec(spec: str, seed: int = 0) -> Topology:
    """Resolve ``spec`` to a topology; raise ``EvaluationError`` if unusable."""
    spec = spec.strip()
    match = _GRID_RE.match(spec)
    if match:
        rows, cols = int(match.group(1)), int(match.group(2))
        if rows < 2 or cols < 2:
            raise EvaluationError(
                f"grid spec {spec!r} needs at least 2x2 nodes"
            )
        spacing = float(match.group(3)) if match.group(3) else 100.0
        return grid_topology(rows, cols, spacing=spacing)
    if spec.lower().startswith("grid:"):
        raise EvaluationError(
            f"malformed grid spec {spec!r}; expected grid:RxC or grid:RxC:SPACING"
        )
    match = _SCALE_RE.match(spec)
    if match:
        n = int(match.group(1)) * (1000 if match.group(2) else 1)
        try:
            return scale_topology(n, seed=seed)
        except ReproError as exc:
            raise EvaluationError(f"bad scale spec {spec!r}: {exc}") from exc
    if spec.lower().startswith("scale:"):
        raise EvaluationError(
            f"malformed scale spec {spec!r}; expected scale:N or scale:Nk"
        )
    if spec.lower().startswith("file:"):
        path = spec[5:]
        if not path:
            raise EvaluationError("empty file: topology spec")
        if not Path(path).exists():
            raise EvaluationError(f"topology file not found: {path}")
        try:
            return load_graph_file(path, seed=seed)
        except (ReproError, ValueError, KeyError, OSError) as exc:
            raise EvaluationError(f"cannot load topology {path!r}: {exc}") from exc
    if spec.upper().startswith("AS") and not Path(spec).exists():
        return isp_catalog.build(spec.upper(), seed=seed)
    if not Path(spec).exists():
        raise EvaluationError(
            f"unknown topology {spec!r}: not a grid/scale/file spec, not a "
            "catalog AS name, and no such file"
        )
    try:
        return load_topology(spec)
    except (ReproError, ValueError, KeyError, OSError) as exc:
        raise EvaluationError(f"cannot load topology {spec!r}: {exc}") from exc
