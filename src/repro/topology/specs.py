"""One-string topology specs shared by the CLI and the soak service.

A spec is resolved in order:

* ``grid:RxC`` or ``grid:RxC:SPACING`` — a synthetic grid
  (:func:`~repro.topology.generators.grid_topology`), the fast option
  for soak smoke runs and tests;
* an ``AS`` name (``AS1239``) — built from the Table II catalog;
* anything else — a topology JSON path for
  :func:`~repro.topology.io.load_topology`.

Errors are always :class:`~repro.errors.EvaluationError` with a
one-line, user-facing message — the CLI prints them verbatim and exits
2 instead of dumping a traceback.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..errors import EvaluationError, ReproError
from .generators import grid_topology
from .graph import Topology
from . import isp_catalog
from .io import load_topology

_GRID_RE = re.compile(r"^grid:(\d+)x(\d+)(?::(\d+(?:\.\d+)?))?$", re.IGNORECASE)


def topology_from_spec(spec: str, seed: int = 0) -> Topology:
    """Resolve ``spec`` to a topology; raise ``EvaluationError`` if unusable."""
    match = _GRID_RE.match(spec.strip())
    if match:
        rows, cols = int(match.group(1)), int(match.group(2))
        if rows < 2 or cols < 2:
            raise EvaluationError(
                f"grid spec {spec!r} needs at least 2x2 nodes"
            )
        spacing = float(match.group(3)) if match.group(3) else 100.0
        return grid_topology(rows, cols, spacing=spacing)
    if spec.lower().startswith("grid:"):
        raise EvaluationError(
            f"malformed grid spec {spec!r}; expected grid:RxC or grid:RxC:SPACING"
        )
    if spec.upper().startswith("AS") and not Path(spec).exists():
        return isp_catalog.build(spec.upper(), seed=seed)
    if not Path(spec).exists():
        raise EvaluationError(
            f"unknown topology {spec!r}: not a grid spec, not a catalog AS "
            "name, and no such file"
        )
    try:
        return load_topology(spec)
    except (ReproError, ValueError, KeyError, OSError) as exc:
        raise EvaluationError(f"cannot load topology {spec!r}: {exc}") from exc
