"""Topology validation and statistics.

Used by the catalog tests and by the Table II benchmark to check that the
synthetic ISP topologies are structurally sane before any experiment runs.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..errors import TopologyError
from .graph import Topology


def validate(topo: Topology) -> None:
    """Raise :class:`TopologyError` if ``topo`` violates a basic invariant.

    Checks: at least two nodes, connectivity, positive per-direction costs,
    consistent adjacency, and finite coordinates.
    """
    if topo.node_count < 2:
        raise TopologyError(f"{topo.name}: fewer than 2 nodes")
    if not topo.is_connected():
        raise TopologyError(f"{topo.name}: not connected")
    for node in topo.nodes():
        pos = topo.position(node)
        if not (math.isfinite(pos.x) and math.isfinite(pos.y)):
            raise TopologyError(f"{topo.name}: node {node} has non-finite position")
    for link in topo.links():
        for a, b in ((link.u, link.v), (link.v, link.u)):
            cost = topo.cost(a, b)
            if not (math.isfinite(cost) and cost > 0):
                raise TopologyError(f"{topo.name}: bad cost on {link}: {cost}")


def degree_histogram(topo: Topology) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    histogram: Dict[int, int] = {}
    for node in topo.nodes():
        d = topo.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def leaf_count(topo: Topology) -> int:
    """Number of degree-1 nodes (tips of the tree branches of §IV-B)."""
    return sum(1 for node in topo.nodes() if topo.degree(node) == 1)


def average_degree(topo: Topology) -> float:
    """Mean node degree (2m/n)."""
    if topo.node_count == 0:
        return 0.0
    return 2.0 * topo.link_count / topo.node_count


def average_link_length(topo: Topology) -> float:
    """Mean Euclidean link length in the embedding."""
    lengths = [topo.euclidean_length(link) for link in topo.links()]
    if not lengths:
        return 0.0
    return sum(lengths) / len(lengths)


def crossing_count(topo: Topology) -> int:
    """Number of unordered link pairs that properly cross."""
    return sum(len(s) for s in topo.all_cross_links().values()) // 2


def stats(topo: Topology) -> Dict[str, object]:
    """A summary dict used by reports and the Table II benchmark."""
    return {
        "name": topo.name,
        "nodes": topo.node_count,
        "links": topo.link_count,
        "average_degree": round(average_degree(topo), 3),
        "leaves": leaf_count(topo),
        "crossing_pairs": crossing_count(topo),
        "average_link_length": round(average_link_length(topo), 1),
        "connected": topo.is_connected(),
    }


def summarize_catalog(topologies: Dict[str, Topology]) -> List[Dict[str, object]]:
    """Stats rows for a whole catalog build."""
    return [stats(topo) for topo in topologies.values()]
