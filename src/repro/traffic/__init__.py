"""``repro.traffic`` — demand-driven workload engine.

The paper's evaluation probes each disrupted (source, destination) pair
once; this subsystem weights recovery by the *traffic* those pairs
carry, the way R3 treats the demand matrix as a first-class input and
the MRC line evaluates post-recovery link load:

* :mod:`repro.traffic.matrix` — :class:`TrafficMatrix`, deterministic
  demand per ordered OD pair;
* :mod:`repro.traffic.generators` — seeded gravity / uniform / hotspot
  demand models over a topology's coordinates and degrees;
* :mod:`repro.traffic.flows` — a synthetic flow population apportioned
  over pairs (largest remainder, exact and deterministic);
* :mod:`repro.traffic.capacity` — link capacity provisioning, batched
  per-root load accounting, overload detection;
* :mod:`repro.traffic.engine` — the flow-level batched simulator:
  millions of flows collapse to OD pairs, pairs collapse to recovery
  cases, cases run once through the existing pipeline;
* :mod:`repro.traffic.metrics` — traffic-weighted Table III rows,
  phase-1 window loss, congestion summaries.

See DESIGN.md §9 for the architecture and EXPERIMENTS.md for the
traffic-weighted Table III walkthrough.
"""

from .matrix import TrafficMatrix
from .generators import (
    DEFAULT_TOTAL_DEMAND,
    MATRIX_MODELS,
    generate_matrix,
    gravity_matrix,
    hotspot_matrix,
    uniform_matrix,
)
from .flows import FlowBatch, FlowSet, aggregate_flows
from .capacity import (
    DEFAULT_HEADROOM,
    LinkLoadMap,
    baseline_loads,
    provision_capacities,
)
from .engine import (
    DisruptedPair,
    PairClassification,
    TrafficEngine,
    classify_pairs,
)
from .metrics import (
    TrafficScenarioRecord,
    TrafficWeightedSummary,
    merge_scenario_records,
    safe_div,
    summarize_traffic,
)

__all__ = [
    "TrafficMatrix",
    "DEFAULT_TOTAL_DEMAND",
    "MATRIX_MODELS",
    "generate_matrix",
    "gravity_matrix",
    "hotspot_matrix",
    "uniform_matrix",
    "FlowBatch",
    "FlowSet",
    "aggregate_flows",
    "DEFAULT_HEADROOM",
    "LinkLoadMap",
    "baseline_loads",
    "provision_capacities",
    "DisruptedPair",
    "PairClassification",
    "TrafficEngine",
    "classify_pairs",
    "TrafficScenarioRecord",
    "TrafficWeightedSummary",
    "merge_scenario_records",
    "safe_div",
    "summarize_traffic",
]
