"""Link capacities, load accounting, and overload detection.

The MRC line of work (Enhanced Multiple Routing Configurations) judges a
recovery scheme by the *post-recovery link load*, not just reachability:
rerouted traffic piles onto surviving links and can congest them.  This
module provides

* :func:`provision_capacities` — annotate a topology with per-link
  capacities derived from its own pre-failure load (every link gets
  ``headroom ×`` its baseline demand, with a floor for idle links), so
  the intact network is never overloaded and post-failure utilization is
  meaningful;
* :func:`baseline_loads` — per-link demand of a matrix routed on the
  default (pre-failure) shortest paths, one batched reverse-SPT pass per
  destination;
* :class:`LinkLoadMap` — an accumulator for post-recovery loads with
  utilization and overload queries against the annotated capacities.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..routing import Path, RoutingTable
from ..topology import Link, Topology
from .matrix import TrafficMatrix

#: Default capacity headroom over the baseline load (2 = links run at
#: <= 50 % utilization before any failure).
DEFAULT_HEADROOM = 2.0

#: Fraction of the mean provisioned capacity granted to links that carry
#: no baseline demand at all (they still have physical capacity).
IDLE_CAPACITY_FRACTION = 0.25


def baseline_loads(
    topo: Topology, matrix: TrafficMatrix, routing: Optional[RoutingTable] = None
) -> Dict[Link, float]:
    """Per-link demand with every pair on its default shortest path.

    One :meth:`~repro.routing.RoutingTable.edge_loads_to` pass per
    destination (batched per-root reuse); destinations are visited in
    sorted order so float accumulation is deterministic.
    """
    routing = routing if routing is not None else RoutingTable(topo)
    loads: Dict[Link, float] = {}
    by_destination: Dict[int, Dict[int, float]] = {}
    for (src, dst), demand in matrix.items():
        by_destination.setdefault(dst, {})[src] = demand
    for dst in sorted(by_destination):
        for link, load in sorted(routing.edge_loads_to(dst, by_destination[dst]).items()):
            loads[link] = loads.get(link, 0.0) + load
    return loads


def provision_capacities(
    topo: Topology,
    matrix: TrafficMatrix,
    routing: Optional[RoutingTable] = None,
    headroom: float = DEFAULT_HEADROOM,
) -> Dict[Link, float]:
    """Annotate ``topo`` with capacities sized to its baseline load.

    ``capacity(link) = max(headroom * baseline_load, idle_floor)`` where
    the idle floor is :data:`IDLE_CAPACITY_FRACTION` of the mean loaded
    capacity — no link gets zero capacity.  Returns the capacity map and
    stores it on the topology via :meth:`Topology.set_link_capacity`.
    """
    if headroom <= 0.0:
        raise ValueError(f"headroom must be > 0, got {headroom}")
    loads = baseline_loads(topo, matrix, routing)
    loaded = [headroom * load for load in loads.values() if load > 0.0]
    mean_capacity = math.fsum(sorted(loaded)) / len(loaded) if loaded else 1.0
    floor = max(IDLE_CAPACITY_FRACTION * mean_capacity, 1e-9)
    capacities: Dict[Link, float] = {}
    for link in topo.links():
        capacity = max(headroom * loads.get(link, 0.0), floor)
        capacities[link] = capacity
        topo.set_link_capacity(link, capacity)
    return capacities


class LinkLoadMap:
    """Accumulated per-link traffic with utilization/overload queries."""

    __slots__ = ("topo", "_loads")

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self._loads: Dict[Link, float] = {}

    def add_path(self, path: Path, demand: float) -> None:
        """Route ``demand`` along every link of ``path``."""
        if demand <= 0.0:
            return
        for a, b in path.hops():
            link = Link.of(a, b)
            self._loads[link] = self._loads.get(link, 0.0) + demand

    def add_link(self, link: Link, demand: float) -> None:
        """Add ``demand`` to one link."""
        if demand <= 0.0:
            return
        self._loads[link] = self._loads.get(link, 0.0) + demand

    def merge_loads(self, loads: Dict[Link, float]) -> None:
        """Fold a per-link load dict in (sorted-key order, deterministic)."""
        for link in sorted(loads):
            self._loads[link] = self._loads.get(link, 0.0) + loads[link]

    def load(self, link: Link) -> float:
        """Accumulated demand on ``link``."""
        return self._loads.get(link, 0.0)

    def loads(self) -> Dict[Link, float]:
        """Every nonzero link load (a copy)."""
        return dict(self._loads)

    def utilization(self, link: Link) -> float:
        """Load over capacity (0.0 when the link has no capacity set)."""
        capacity = self.topo.link_capacity(link)
        if capacity is None or capacity <= 0.0:
            return 0.0
        return self._loads.get(link, 0.0) / capacity

    def max_utilization(self) -> float:
        """The highest utilization over all loaded links."""
        best = 0.0
        for link in sorted(self._loads):
            best = max(best, self.utilization(link))
        return best

    def overloaded_links(
        self, threshold: float = 1.0
    ) -> List[Tuple[Link, float]]:
        """Links with utilization > ``threshold``, worst first.

        Ordered by (utilization desc, link asc) — deterministic.
        """
        over = [
            (link, util)
            for link in sorted(self._loads)
            if (util := self.utilization(link)) > threshold
        ]
        over.sort(key=lambda item: (-item[1], item[0]))
        return over

    def overload_demand(self, threshold: float = 1.0) -> float:
        """Total demand above capacity on overloaded links (congestion mass)."""
        excess = []
        for link in sorted(self._loads):
            capacity = self.topo.link_capacity(link)
            if capacity is None or capacity <= 0.0:
                continue
            limit = threshold * capacity
            if self._loads[link] > limit:
                excess.append(self._loads[link] - limit)
        return math.fsum(excess)

    def top_links(self, n: int = 5) -> List[Tuple[Link, float, float]]:
        """The ``n`` most utilized links as (link, load, utilization)."""
        ranked = sorted(
            self._loads, key=lambda link: (-self.utilization(link), link)
        )
        return [
            (link, self._loads[link], self.utilization(link))
            for link in ranked[:n]
        ]

    def utilization_cdf(self) -> Tuple[int, ...]:
        """Fixed-bin utilization histogram over *every* topology link.

        Delegates to :func:`repro.te.metrics.utilization_histogram`;
        integer counts merge exactly across scenarios and shards.
        """
        from ..te.metrics import utilization_histogram

        return utilization_histogram(self)

    def __len__(self) -> int:
        return len(self._loads)


def total_demand(loads: Iterable[float]) -> float:
    """Fixed-order sum helper (callers pass sorted iterables)."""
    return math.fsum(loads)
