"""Flow-level batched traffic simulator over the recovery pipeline.

The per-packet engine (:mod:`repro.simulator.engine`) simulates one
probe at a time; running it once per user flow would cost millions of
walks that all repeat each other.  This engine exploits the two
aggregation levels the protocol itself induces:

1. **flows → OD pairs** — every flow of one (source, destination) pair
   shares a fate, so a :class:`~repro.traffic.flows.FlowSet` collapses
   the population to at most ``n·(n-1)`` batches;
2. **OD pairs → recovery cases** — disrupted pairs funnel into the
   router that first sees the broken next hop, and RTR's phase-1 walk,
   phase-2 trees, and the baselines' per-case state depend only on
   (initiator, destination, scenario).  Pairs sharing both collapse
   into one :class:`~repro.eval.cases.TestCase`, executed once through
   the existing :class:`~repro.eval.runner.EvaluationRunner` (which
   reuses the sweep-wide :class:`~repro.routing.SPTCache` and the CSR
   kernels underneath).

The outcome of each case is then multiplied back out by the demand and
flow counts of its member pairs, producing the traffic-weighted records
of :mod:`repro.traffic.metrics` — a sweep over millions of flows costs
the same shortest-path work as the unweighted evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..baselines import Oracle
from ..chaos import FaultPlan
from ..core import RTRConfig
from ..eval.cases import CaseSet, TestCase
from ..eval.metrics import CaseRecord
from ..eval.runner import EvaluationRunner
from ..failures import FailureScenario, LocalView
from ..routing import RoutingTable, SPTCache
from ..topology import Link, Topology
from .capacity import LinkLoadMap, provision_capacities
from .flows import FlowSet
from .metrics import TrafficScenarioRecord, safe_div

log = obs.get_logger(__name__)


@dataclass(frozen=True)
class DisruptedPair:
    """One OD pair whose default path broke with a live source."""

    source: int
    destination: int
    #: First router on the default path whose next hop became unreachable
    #: — the node that initiates recovery for this pair's traffic.
    initiator: int
    demand: float
    flows: int


@dataclass
class PairClassification:
    """How one scenario partitions the demand matrix."""

    disrupted: List[DisruptedPair]
    #: source -> demand, per destination, for pairs whose path survived.
    intact_by_destination: Dict[int, Dict[int, float]]
    failed_source_demand: float
    failed_source_flows: int
    #: Demand with no pre-failure route at all (disconnected snapshots).
    unrouted_demand: float


def classify_pairs(
    topo: Topology,
    routing: RoutingTable,
    scenario: FailureScenario,
    flow_set: FlowSet,
) -> PairClassification:
    """Partition every demand-carrying pair under one failure scenario.

    A pair is *disrupted* when its source is live and its default
    next-hop chain crosses a failed adjacency; the first router with the
    broken next hop is its recovery initiator.  The walk is memoized per
    destination (a node's verdict settles every pair routed through it),
    mirroring :func:`repro.eval.cases.count_failed_routing_paths`.
    """
    view = LocalView(scenario)
    disrupted: List[DisruptedPair] = []
    intact: Dict[int, Dict[int, float]] = {}
    failed_demand: List[float] = []
    failed_flows = 0
    unrouted: List[float] = []

    # verdict[v]: None = path from v survives; otherwise the initiator id.
    by_destination: Dict[int, List] = {}
    for batch in flow_set.batches():
        by_destination.setdefault(batch.destination, []).append(batch)

    # One batched multi-source kernel call computes every destination
    # tree the loop below would otherwise solve one heap run at a time
    # (bit-identical results; a no-op for already-cached trees).
    routing.warm(sorted(by_destination))

    for destination in sorted(by_destination):
        tree = routing.tree_to(destination)
        verdict: Dict[int, Optional[int]] = {
            destination: None if scenario.is_node_live(destination) else destination
        }
        # A failed destination never terminates a walk cleanly: every
        # adjacency into it is down, so the last live hop is the
        # initiator.  The sentinel above is never consulted in that case.
        for batch in by_destination[destination]:
            source = batch.source
            if not scenario.is_node_live(source):
                failed_demand.append(batch.demand)
                failed_flows += batch.flows
                continue
            if not tree.reaches(source):
                unrouted.append(batch.demand)
                continue
            chain: List[int] = []
            node = source
            outcome: Optional[int] = None
            while node not in verdict:
                chain.append(node)
                nxt = tree.next_hop(node)
                if nxt is None or not view.is_neighbor_reachable(node, nxt):
                    # nxt is None only at the tree root, and a live,
                    # reached destination is pre-seeded — so this is the
                    # first broken adjacency: ``node`` initiates recovery.
                    outcome = node
                    break
                node = nxt
            else:
                outcome = verdict[node]
            for visited in chain:
                verdict[visited] = outcome
            if outcome is None:
                intact.setdefault(destination, {})[source] = batch.demand
            else:
                disrupted.append(
                    DisruptedPair(
                        source=source,
                        destination=destination,
                        initiator=outcome,
                        demand=batch.demand,
                        flows=batch.flows,
                    )
                )
    return PairClassification(
        disrupted=disrupted,
        intact_by_destination=intact,
        failed_source_demand=math.fsum(failed_demand),
        failed_source_flows=failed_flows,
        unrouted_demand=math.fsum(unrouted),
    )


class TrafficEngine:
    """Runs traffic-weighted recovery sweeps over one topology.

    Owns the per-topology shared state (routing table, SPT pool,
    provisioned capacities) exactly like
    :class:`~repro.eval.runner.EvaluationRunner` owns the unweighted
    equivalent — one engine serves every scenario of a sweep.
    """

    def __init__(
        self,
        topo: Topology,
        flow_set: FlowSet,
        routing: Optional[RoutingTable] = None,
        approaches: Sequence[str] = ("RTR", "FCP"),
        cache: Optional[SPTCache] = None,
        rtr_config: Optional[RTRConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        provision: bool = True,
    ) -> None:
        self.topo = topo
        self.flow_set = flow_set
        self.matrix = flow_set.matrix
        self.cache = cache if cache is not None else SPTCache()
        self.routing = (
            routing if routing is not None else RoutingTable(topo, cache=self.cache)
        )
        self.approaches = tuple(approaches)
        self.rtr_config = rtr_config
        self.fault_plan = fault_plan
        # Always (re)provision: capacities are a deterministic function of
        # (topology, matrix), so overwriting keeps utilization numbers
        # independent of whatever sweep touched this shared topology
        # before.  Pass ``provision=False`` to keep custom capacities.
        if provision:
            provision_capacities(topo, self.matrix, self.routing)
        self.runner = EvaluationRunner(
            topo,
            routing=self.routing,
            approaches=self.approaches,
            rtr_config=rtr_config,
            fault_plan=fault_plan,
            sp_cache=self.cache,
        )

    # ------------------------------------------------------------------

    def run_scenario(
        self, scenario: FailureScenario, scenario_index: int = 0
    ) -> Dict[str, TrafficScenarioRecord]:
        """One failure event: classify, batch, recover, weight."""
        with obs.span("traffic.scenario", index=scenario_index):
            classification = classify_pairs(
                self.topo, self.routing, scenario, self.flow_set
            )
            obs.inc("traffic.pairs.disrupted", len(classification.disrupted))
            obs.inc(
                "traffic.flows.disrupted",
                sum(p.flows for p in classification.disrupted),
            )
            groups = self._group_pairs(classification.disrupted)
            cases = self._cases_for_groups(scenario, groups)
            case_set = CaseSet(
                topo=self.topo,
                routing=self.routing,
                scenarios=[scenario],
                cases=cases,
            )
            records = self.runner.run(case_set)
            out: Dict[str, TrafficScenarioRecord] = {}
            for approach in self.approaches:
                out[approach] = self._weight_records(
                    approach,
                    scenario_index,
                    classification,
                    groups,
                    records[approach],
                )
        return out

    def run_sweep(
        self, scenarios: Sequence[FailureScenario]
    ) -> Dict[str, List[TrafficScenarioRecord]]:
        """All scenarios in order; returns per-approach record lists."""
        results: Dict[str, List[TrafficScenarioRecord]] = {
            a: [] for a in self.approaches
        }
        for index, scenario in enumerate(scenarios):
            per_approach = self.run_scenario(scenario, index)
            for approach in self.approaches:
                results[approach].append(per_approach[approach])
        return results

    # ------------------------------------------------------------------

    @staticmethod
    def _group_pairs(
        disrupted: Sequence[DisruptedPair],
    ) -> Dict[Tuple[int, int], List[DisruptedPair]]:
        """Pairs keyed by their shared (initiator, destination) case."""
        groups: Dict[Tuple[int, int], List[DisruptedPair]] = {}
        for pair in disrupted:
            groups.setdefault((pair.initiator, pair.destination), []).append(pair)
        return groups

    def _cases_for_groups(
        self,
        scenario: FailureScenario,
        groups: Dict[Tuple[int, int], List[DisruptedPair]],
    ) -> List[TestCase]:
        """One :class:`TestCase` per group, classified by the oracle."""
        oracle = Oracle(self.topo, scenario, cache=self.cache)
        cases: List[TestCase] = []
        for initiator, destination in sorted(groups):
            trigger = self.routing.next_hop(initiator, destination)
            assert trigger is not None  # the walk crossed this adjacency
            optimal = oracle.optimal_cost(initiator, destination)
            cases.append(
                TestCase(
                    scenario_index=0,
                    initiator=initiator,
                    destination=destination,
                    trigger=trigger,
                    recoverable=optimal is not None,
                    optimal_cost=optimal,
                )
            )
        return cases

    def _weight_records(
        self,
        approach: str,
        scenario_index: int,
        classification: PairClassification,
        groups: Dict[Tuple[int, int], List[DisruptedPair]],
        case_records: Sequence[CaseRecord],
    ) -> TrafficScenarioRecord:
        """Multiply per-case outcomes by their member pairs' traffic."""
        by_case: Dict[Tuple[int, int], CaseRecord] = {
            (r.case.initiator, r.case.destination): r for r in case_records
        }
        disrupted_demand: List[float] = []
        recoverable_demand: List[float] = []
        irrecoverable_demand: List[float] = []
        delivered_demand: List[float] = []
        delivered_recoverable: List[float] = []
        optimal_demand: List[float] = []
        stretch_sum: List[float] = []
        stretch_weight: List[float] = []
        phase1_loss: List[float] = []
        fallback_demand: List[float] = []
        error_demand: List[float] = []
        max_stretch = 0.0
        disrupted_flows = 0
        delivered_flows = 0

        loads = LinkLoadMap(self.topo)
        # Surviving pairs keep their default paths: one batched tree pass
        # per destination, destinations in sorted order (deterministic).
        for destination in sorted(classification.intact_by_destination):
            loads.merge_loads(
                self.routing.edge_loads_to(
                    destination,
                    classification.intact_by_destination[destination],
                )
            )

        for key in sorted(groups):
            record = by_case[key]
            group = groups[key]
            group_demand = math.fsum(p.demand for p in group)
            group_flows = sum(p.flows for p in group)
            disrupted_demand.append(group_demand)
            disrupted_flows += group_flows
            if record.case.recoverable:
                recoverable_demand.append(group_demand)
            else:
                irrecoverable_demand.append(group_demand)
            result = record.result
            if result.delivered:
                delivered_demand.append(group_demand)
                delivered_flows += group_flows
                if record.case.recoverable:
                    delivered_recoverable.append(group_demand)
                stretch = record.stretch()
                if stretch is not None:
                    stretch_sum.append(group_demand * stretch)
                    stretch_weight.append(group_demand)
                    max_stretch = max(max_stretch, stretch)
                if record.is_optimal():
                    optimal_demand.append(group_demand)
            if result.status == "fallback":
                fallback_demand.append(group_demand)
            elif result.status == "error":
                error_demand.append(group_demand)
            # Traffic black-holed while the initiator's phase-1 walk was
            # still in flight (§IV-B delay model): rate × window.
            if result.phase1_duration > 0.0:
                phase1_loss.append(group_demand * result.phase1_duration)
            # Post-recovery load: the surviving prefix up to the initiator
            # carries the pair's traffic either way; the recovery path
            # carries it onward only when delivery succeeded.
            for pair in group:
                self._add_prefix_load(loads, pair)
            if result.delivered and result.path is not None:
                loads.add_path(result.path, group_demand)

        overloaded = loads.overloaded_links()
        record = TrafficScenarioRecord(
            approach=approach,
            scenario_index=scenario_index,
            total_demand=self.matrix.total_demand,
            total_flows=self.flow_set.n_flows,
            disrupted_pairs=len(classification.disrupted),
            disrupted_demand=math.fsum(disrupted_demand),
            disrupted_flows=disrupted_flows,
            failed_source_demand=classification.failed_source_demand,
            failed_source_flows=classification.failed_source_flows,
            recoverable_demand=math.fsum(recoverable_demand),
            irrecoverable_demand=math.fsum(irrecoverable_demand),
            delivered_demand=math.fsum(delivered_demand),
            delivered_flows=delivered_flows,
            delivered_recoverable_demand=math.fsum(delivered_recoverable),
            optimal_demand=math.fsum(optimal_demand),
            stretch_demand_sum=math.fsum(stretch_sum),
            stretch_demand_weight=math.fsum(stretch_weight),
            max_stretch=max_stretch,
            phase1_loss=math.fsum(phase1_loss),
            fallback_demand=math.fsum(fallback_demand),
            error_demand=math.fsum(error_demand),
            max_utilization=loads.max_utilization(),
            overloaded_links=len(overloaded),
            overload_demand=loads.overload_demand(),
        )
        obs.inc(f"traffic.demand.delivered.{approach}", record.delivered_demand)
        obs.observe("traffic.max_utilization", record.max_utilization)
        if overloaded:
            obs.inc("traffic.links.overloaded", len(overloaded))
        obs.gauge(
            f"traffic.delivered_fraction.{approach}",
            safe_div(record.delivered_demand, record.disrupted_demand),
        )
        return record

    def _add_prefix_load(self, loads: LinkLoadMap, pair: DisruptedPair) -> None:
        """Load the surviving default-path prefix source -> initiator."""
        if pair.source == pair.initiator:
            return
        tree = self.routing.tree_to(pair.destination)
        node = pair.source
        while node != pair.initiator:
            nxt = tree.next_hop(node)
            assert nxt is not None  # the classification walk got through
            loads.add_link(Link.of(node, nxt), pair.demand)
            node = nxt
