"""Flow-level batched traffic simulator over the recovery pipeline.

The per-packet engine (:mod:`repro.simulator.engine`) simulates one
probe at a time; running it once per user flow would cost millions of
walks that all repeat each other.  This engine exploits the two
aggregation levels the protocol itself induces:

1. **flows → OD pairs** — every flow of one (source, destination) pair
   shares a fate, so a :class:`~repro.traffic.flows.FlowSet` collapses
   the population to at most ``n·(n-1)`` batches;
2. **OD pairs → recovery cases** — disrupted pairs funnel into the
   router that first sees the broken next hop, and RTR's phase-1 walk,
   phase-2 trees, and the baselines' per-case state depend only on
   (initiator, destination, scenario).  Pairs sharing both collapse
   into one :class:`~repro.eval.cases.TestCase`, executed once through
   the existing :class:`~repro.eval.runner.EvaluationRunner` (which
   reuses the sweep-wide :class:`~repro.routing.SPTCache` and the CSR
   kernels underneath).

The outcome of each case is then multiplied back out by the demand and
flow counts of its member pairs, producing the traffic-weighted records
of :mod:`repro.traffic.metrics` — a sweep over millions of flows costs
the same shortest-path work as the unweighted evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs
from ..baselines import Oracle
from ..chaos import FaultPlan
from ..core import RTRConfig
from ..eval.cases import CaseSet, TestCase
from ..eval.metrics import CaseRecord
from ..eval.runner import EvaluationRunner
from ..failures import FailureScenario, LocalView
from ..routing import RoutingTable, SPTCache
from ..topology import Link, Topology
from ..te.metrics import overload_attribution
from ..te.penalty import LinkPenalty
from .capacity import DEFAULT_HEADROOM, LinkLoadMap, provision_capacities
from .flows import FlowSet
from .metrics import TrafficScenarioRecord, safe_div

log = obs.get_logger(__name__)


@dataclass(frozen=True)
class DisruptedPair:
    """One OD pair whose default path broke with a live source."""

    source: int
    destination: int
    #: First router on the default path whose next hop became unreachable
    #: — the node that initiates recovery for this pair's traffic.
    initiator: int
    demand: float
    flows: int


@dataclass
class PairClassification:
    """How one scenario partitions the demand matrix."""

    disrupted: List[DisruptedPair]
    #: source -> demand, per destination, for pairs whose path survived.
    intact_by_destination: Dict[int, Dict[int, float]]
    failed_source_demand: float
    failed_source_flows: int
    #: Demand with no pre-failure route at all (disconnected snapshots).
    unrouted_demand: float


def classify_pairs(
    topo: Topology,
    routing: RoutingTable,
    scenario: FailureScenario,
    flow_set: FlowSet,
) -> PairClassification:
    """Partition every demand-carrying pair under one failure scenario.

    A pair is *disrupted* when its source is live and its default
    next-hop chain crosses a failed adjacency; the first router with the
    broken next hop is its recovery initiator.  The walk is memoized per
    destination (a node's verdict settles every pair routed through it),
    mirroring :func:`repro.eval.cases.count_failed_routing_paths`.
    """
    view = LocalView(scenario)
    disrupted: List[DisruptedPair] = []
    intact: Dict[int, Dict[int, float]] = {}
    failed_demand: List[float] = []
    failed_flows = 0
    unrouted: List[float] = []

    # verdict[v]: None = path from v survives; otherwise the initiator id.
    by_destination: Dict[int, List] = {}
    for batch in flow_set.batches():
        by_destination.setdefault(batch.destination, []).append(batch)

    # One batched multi-source kernel call computes every destination
    # tree the loop below would otherwise solve one heap run at a time
    # (bit-identical results; a no-op for already-cached trees).
    routing.warm(sorted(by_destination))

    for destination in sorted(by_destination):
        tree = routing.tree_to(destination)
        verdict: Dict[int, Optional[int]] = {
            destination: None if scenario.is_node_live(destination) else destination
        }
        # A failed destination never terminates a walk cleanly: every
        # adjacency into it is down, so the last live hop is the
        # initiator.  The sentinel above is never consulted in that case.
        for batch in by_destination[destination]:
            source = batch.source
            if not scenario.is_node_live(source):
                failed_demand.append(batch.demand)
                failed_flows += batch.flows
                continue
            if not tree.reaches(source):
                unrouted.append(batch.demand)
                continue
            chain: List[int] = []
            node = source
            outcome: Optional[int] = None
            while node not in verdict:
                chain.append(node)
                nxt = tree.next_hop(node)
                if nxt is None or not view.is_neighbor_reachable(node, nxt):
                    # nxt is None only at the tree root, and a live,
                    # reached destination is pre-seeded — so this is the
                    # first broken adjacency: ``node`` initiates recovery.
                    outcome = node
                    break
                node = nxt
            else:
                outcome = verdict[node]
            for visited in chain:
                verdict[visited] = outcome
            if outcome is None:
                intact.setdefault(destination, {})[source] = batch.demand
            else:
                disrupted.append(
                    DisruptedPair(
                        source=source,
                        destination=destination,
                        initiator=outcome,
                        demand=batch.demand,
                        flows=batch.flows,
                    )
                )
    return PairClassification(
        disrupted=disrupted,
        intact_by_destination=intact,
        failed_source_demand=math.fsum(failed_demand),
        failed_source_flows=failed_flows,
        unrouted_demand=math.fsum(unrouted),
    )


class TrafficEngine:
    """Runs traffic-weighted recovery sweeps over one topology.

    Owns the per-topology shared state (routing table, SPT pool,
    provisioned capacities) exactly like
    :class:`~repro.eval.runner.EvaluationRunner` owns the unweighted
    equivalent — one engine serves every scenario of a sweep.
    """

    def __init__(
        self,
        topo: Topology,
        flow_set: FlowSet,
        routing: Optional[RoutingTable] = None,
        approaches: Sequence[str] = ("RTR", "FCP"),
        cache: Optional[SPTCache] = None,
        rtr_config: Optional[RTRConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        provision: bool = True,
        congestion_aware: bool = False,
        headroom: float = DEFAULT_HEADROOM,
        utilization_cap: Optional[float] = None,
    ) -> None:
        self.topo = topo
        self.flow_set = flow_set
        self.matrix = flow_set.matrix
        self.cache = cache if cache is not None else SPTCache()
        self.routing = (
            routing if routing is not None else RoutingTable(topo, cache=self.cache)
        )
        self.approaches = tuple(approaches)
        self.congestion_aware = congestion_aware
        if utilization_cap is not None and utilization_cap <= 0.0:
            raise ValueError(
                f"utilization_cap must be > 0, got {utilization_cap}"
            )
        if utilization_cap is not None and not congestion_aware:
            raise ValueError(
                "utilization_cap requires congestion_aware=True "
                "(admission control runs inside the live-load case loop)"
            )
        #: Admission control: a congestion-aware sweep refuses recoveries
        #: whose admitted demand would push any provisioned link past this
        #: utilization.  Rerouting alone cannot always stay below a bound —
        #: when the only surviving corridor is a bridge, every scheme that
        #: delivers everything overloads it — so congestion-*free* recovery
        #: (the R3/Enhanced-MRC guarantee) necessarily sheds the overflow.
        self.utilization_cap = utilization_cap
        if congestion_aware:
            # Congestion-aware sweeps flip the RTR phase-2 metric on and
            # feed live load snapshots to any scheme that accepts them.
            # Penalized detours stray from the shortest corridor and hit
            # failures phase 1 missed more often, so §III-D re-invocations
            # (learn the link from the drop, recompute) are enabled unless
            # the caller configured their own budget.
            base_config = rtr_config if rtr_config is not None else RTRConfig()
            rtr_config = replace(
                base_config,
                congestion_aware=True,
                max_phase2_reinvocations=max(
                    base_config.max_phase2_reinvocations, 3
                ),
            )
        self.rtr_config = rtr_config
        self.fault_plan = fault_plan
        # Always (re)provision: capacities are a deterministic function of
        # (topology, matrix), so overwriting keeps utilization numbers
        # independent of whatever sweep touched this shared topology
        # before.  Pass ``provision=False`` to keep custom capacities.
        if provision:
            provision_capacities(topo, self.matrix, self.routing, headroom=headroom)
        self.runner = EvaluationRunner(
            topo,
            routing=self.routing,
            approaches=self.approaches,
            rtr_config=rtr_config,
            fault_plan=fault_plan,
            sp_cache=self.cache,
        )

    # ------------------------------------------------------------------

    def run_scenario(
        self, scenario: FailureScenario, scenario_index: int = 0
    ) -> Dict[str, TrafficScenarioRecord]:
        """One failure event: classify, batch, recover, weight."""
        with obs.span("traffic.scenario", index=scenario_index):
            classification = classify_pairs(
                self.topo, self.routing, scenario, self.flow_set
            )
            obs.inc("traffic.pairs.disrupted", len(classification.disrupted))
            obs.inc(
                "traffic.flows.disrupted",
                sum(p.flows for p in classification.disrupted),
            )
            groups = self._group_pairs(classification.disrupted)
            cases = self._cases_for_groups(scenario, groups)
            case_set = CaseSet(
                topo=self.topo,
                routing=self.routing,
                scenarios=[scenario],
                cases=cases,
            )
            if self.congestion_aware:
                records = self._run_cases_congestion_aware(
                    scenario, cases, groups, classification
                )
            else:
                # One convergence window per scenario: planning schemes
                # have the whole window's walks executed through a single
                # WalkBatch inside the runner (DESIGN.md §15).
                records = self.runner.run(case_set)
            out: Dict[str, TrafficScenarioRecord] = {}
            for approach in self.approaches:
                out[approach] = self._weight_records(
                    approach,
                    scenario_index,
                    classification,
                    groups,
                    records[approach],
                )
        return out

    def run_sweep(
        self, scenarios: Sequence[FailureScenario]
    ) -> Dict[str, List[TrafficScenarioRecord]]:
        """All scenarios in order; returns per-approach record lists."""
        results: Dict[str, List[TrafficScenarioRecord]] = {
            a: [] for a in self.approaches
        }
        for index, scenario in enumerate(scenarios):
            per_approach = self.run_scenario(scenario, index)
            for approach in self.approaches:
                results[approach].append(per_approach[approach])
        return results

    # ------------------------------------------------------------------

    def _run_cases_congestion_aware(
        self,
        scenario: FailureScenario,
        cases: Sequence[TestCase],
        groups: Dict[Tuple[int, int], List[DisruptedPair]],
        classification: PairClassification,
    ) -> Dict[str, List[CaseRecord]]:
        """Run cases with live load feedback into path selection.

        Mirrors :meth:`EvaluationRunner.run` (same obs counters, same
        per-case error isolation) but runs each approach's cases
        sequentially against a *live* :class:`LinkLoadMap`: before every
        case, schemes exposing ``set_link_penalty`` (duck typed — RTR
        does) receive a fresh :class:`~repro.te.penalty.LinkPenalty`
        snapshot of everything routed so far, so each recovery steers
        around the links earlier ones loaded — including the same
        initiator's own previous recoveries.  State is per-scenario (the
        map starts from intact loads), which keeps serial and sharded
        sweeps identical.

        This path never batches walks: each case's route depends on the
        loads of every earlier delivery, so compiling a window of plans
        up front would read stale penalties.
        """
        config = self.rtr_config if self.rtr_config is not None else RTRConfig()
        for _ in cases:
            obs.inc("eval.cases")
        records: Dict[str, List[CaseRecord]] = {}
        for name in self.approaches:
            instance = self.runner.schemes[name].instantiate(scenario)
            set_penalty = getattr(instance.protocol, "set_link_penalty", None)
            loads = self._intact_loads(classification)
            out: List[CaseRecord] = []
            for case in cases:
                obs.inc(self.runner._case_counters[name])
                if set_penalty is not None:
                    set_penalty(
                        LinkPenalty.from_load_map(
                            loads,
                            alpha=config.penalty_alpha,
                            exponent=config.penalty_exponent,
                            clip=config.penalty_utilization_clip,
                        )
                    )
                result = self.runner._recover_one(instance, name, case)
                group = groups[(case.initiator, case.destination)]
                group_demand = math.fsum(p.demand for p in group)
                if (
                    self.utilization_cap is not None
                    and result.delivered
                    and result.path is not None
                    and self._exceeds_cap(loads, result.path, group_demand)
                ):
                    # Admission control: delivering this group would push a
                    # link past the cap, so the initiator sheds it instead
                    # (early discard — zero transmission waste).
                    obs.inc("traffic.admission.dropped")
                    result = replace(
                        result,
                        delivered=False,
                        path=None,
                        drop_hops=0,
                        drop_packet_bytes=0,
                        admission_dropped=True,
                    )
                out.append(CaseRecord(case=case, result=result))
                for pair in group:
                    self._add_prefix_load(loads, pair)
                if result.delivered and result.path is not None:
                    loads.add_path(result.path, group_demand)
            records[name] = out
        return records

    def _exceeds_cap(
        self, loads: LinkLoadMap, path, demand: float
    ) -> bool:
        """Would routing ``demand`` along ``path`` breach the cap anywhere?

        Links without a provisioned capacity are never capped (their
        utilization is undefined); a small tolerance keeps admitting
        demand that lands exactly on the cap.
        """
        cap = self.utilization_cap
        assert cap is not None
        for a, b in path.hops():
            link = Link.of(a, b)
            capacity = self.topo.link_capacity(link)
            if capacity is None or capacity <= 0.0:
                continue
            if (loads.load(link) + demand) / capacity > cap + 1e-12:
                return True
        return False

    def _intact_loads(self, classification: PairClassification) -> LinkLoadMap:
        """Default-path loads of the pairs the failure did not disrupt.

        One batched tree pass per destination, destinations in sorted
        order (deterministic float accumulation).
        """
        loads = LinkLoadMap(self.topo)
        for destination in sorted(classification.intact_by_destination):
            loads.merge_loads(
                self.routing.edge_loads_to(
                    destination,
                    classification.intact_by_destination[destination],
                )
            )
        return loads

    @staticmethod
    def _group_pairs(
        disrupted: Sequence[DisruptedPair],
    ) -> Dict[Tuple[int, int], List[DisruptedPair]]:
        """Pairs keyed by their shared (initiator, destination) case."""
        groups: Dict[Tuple[int, int], List[DisruptedPair]] = {}
        for pair in disrupted:
            groups.setdefault((pair.initiator, pair.destination), []).append(pair)
        return groups

    def _cases_for_groups(
        self,
        scenario: FailureScenario,
        groups: Dict[Tuple[int, int], List[DisruptedPair]],
    ) -> List[TestCase]:
        """One :class:`TestCase` per group, classified by the oracle."""
        oracle = Oracle(self.topo, scenario, cache=self.cache)
        cases: List[TestCase] = []
        for initiator, destination in sorted(groups):
            trigger = self.routing.next_hop(initiator, destination)
            assert trigger is not None  # the walk crossed this adjacency
            optimal = oracle.optimal_cost(initiator, destination)
            cases.append(
                TestCase(
                    scenario_index=0,
                    initiator=initiator,
                    destination=destination,
                    trigger=trigger,
                    recoverable=optimal is not None,
                    optimal_cost=optimal,
                )
            )
        return cases

    def _weight_records(
        self,
        approach: str,
        scenario_index: int,
        classification: PairClassification,
        groups: Dict[Tuple[int, int], List[DisruptedPair]],
        case_records: Sequence[CaseRecord],
    ) -> TrafficScenarioRecord:
        """Multiply per-case outcomes by their member pairs' traffic."""
        by_case: Dict[Tuple[int, int], CaseRecord] = {
            (r.case.initiator, r.case.destination): r for r in case_records
        }
        disrupted_demand: List[float] = []
        recoverable_demand: List[float] = []
        irrecoverable_demand: List[float] = []
        delivered_demand: List[float] = []
        delivered_recoverable: List[float] = []
        optimal_demand: List[float] = []
        stretch_sum: List[float] = []
        stretch_weight: List[float] = []
        phase1_loss: List[float] = []
        fallback_demand: List[float] = []
        error_demand: List[float] = []
        admission_dropped: List[float] = []
        max_stretch = 0.0
        disrupted_flows = 0
        delivered_flows = 0

        # Surviving pairs keep their default paths.
        loads = self._intact_loads(classification)

        for key in sorted(groups):
            record = by_case[key]
            group = groups[key]
            group_demand = math.fsum(p.demand for p in group)
            group_flows = sum(p.flows for p in group)
            disrupted_demand.append(group_demand)
            disrupted_flows += group_flows
            if record.case.recoverable:
                recoverable_demand.append(group_demand)
            else:
                irrecoverable_demand.append(group_demand)
            result = record.result
            if result.delivered:
                delivered_demand.append(group_demand)
                delivered_flows += group_flows
                if record.case.recoverable:
                    delivered_recoverable.append(group_demand)
                stretch = record.stretch()
                if stretch is not None:
                    stretch_sum.append(group_demand * stretch)
                    stretch_weight.append(group_demand)
                    max_stretch = max(max_stretch, stretch)
                if record.is_optimal():
                    optimal_demand.append(group_demand)
            if result.status == "fallback":
                fallback_demand.append(group_demand)
            elif result.status == "error":
                error_demand.append(group_demand)
            if result.admission_dropped:
                admission_dropped.append(group_demand)
            # Traffic black-holed while the initiator's phase-1 walk was
            # still in flight (§IV-B delay model): rate × window.
            if result.phase1_duration > 0.0:
                phase1_loss.append(group_demand * result.phase1_duration)
            # Post-recovery load: the surviving prefix up to the initiator
            # carries the pair's traffic either way; the recovery path
            # carries it onward only when delivery succeeded.
            for pair in group:
                self._add_prefix_load(loads, pair)
            if result.delivered and result.path is not None:
                loads.add_path(result.path, group_demand)

        overloaded = loads.overloaded_links()
        record = TrafficScenarioRecord(
            utilization_hist=loads.utilization_cdf(),
            overload_attribution=self._attribute_overloads(
                loads, overloaded, groups, by_case
            ),
            approach=approach,
            scenario_index=scenario_index,
            total_demand=self.matrix.total_demand,
            total_flows=self.flow_set.n_flows,
            disrupted_pairs=len(classification.disrupted),
            disrupted_demand=math.fsum(disrupted_demand),
            disrupted_flows=disrupted_flows,
            failed_source_demand=classification.failed_source_demand,
            failed_source_flows=classification.failed_source_flows,
            recoverable_demand=math.fsum(recoverable_demand),
            irrecoverable_demand=math.fsum(irrecoverable_demand),
            delivered_demand=math.fsum(delivered_demand),
            delivered_flows=delivered_flows,
            delivered_recoverable_demand=math.fsum(delivered_recoverable),
            optimal_demand=math.fsum(optimal_demand),
            stretch_demand_sum=math.fsum(stretch_sum),
            stretch_demand_weight=math.fsum(stretch_weight),
            max_stretch=max_stretch,
            phase1_loss=math.fsum(phase1_loss),
            fallback_demand=math.fsum(fallback_demand),
            error_demand=math.fsum(error_demand),
            max_utilization=loads.max_utilization(),
            overloaded_links=len(overloaded),
            overload_demand=loads.overload_demand(),
            admission_dropped_demand=math.fsum(admission_dropped),
        )
        obs.inc(f"traffic.demand.delivered.{approach}", record.delivered_demand)
        obs.observe("traffic.max_utilization", record.max_utilization)
        if overloaded:
            obs.inc("traffic.links.overloaded", len(overloaded))
        obs.gauge(
            f"traffic.delivered_fraction.{approach}",
            safe_div(record.delivered_demand, record.disrupted_demand),
        )
        return record

    def _attribute_overloads(
        self,
        loads: LinkLoadMap,
        overloaded: Sequence[Tuple[Link, float]],
        groups: Dict[Tuple[int, int], List[DisruptedPair]],
        by_case: Dict[Tuple[int, int], CaseRecord],
    ) -> Tuple:
        """Top-k overload attribution (empty when nothing is overloaded).

        A second pass over the disrupted groups charges each top
        overloaded link with the rerouted OD demands that crossed it —
        surviving prefixes and delivered recovery paths; intact
        background load is not a rerouting decision, so it is not
        attributed.
        """
        if not overloaded:
            return ()
        top = {link for link, _ in overloaded[:3]}
        contributions: Dict[Link, Dict[Tuple[int, int], float]] = {
            link: {} for link in top
        }

        def charge(link: Link, source: int, destination: int, demand: float) -> None:
            per_pair = contributions[link]
            key = (source, destination)
            per_pair[key] = per_pair.get(key, 0.0) + demand

        for key in sorted(groups):
            group = groups[key]
            for pair in group:
                for link in self._prefix_links(pair):
                    if link in top:
                        charge(link, pair.source, pair.destination, pair.demand)
            result = by_case[key].result
            if result.delivered and result.path is not None:
                for a, b in result.path.hops():
                    link = Link.of(a, b)
                    if link in top:
                        for pair in group:
                            charge(
                                link, pair.source, pair.destination, pair.demand
                            )
        return overload_attribution(loads, contributions)

    def _prefix_links(self, pair: DisruptedPair) -> Iterator[Link]:
        """Links of the surviving default-path prefix source -> initiator."""
        if pair.source == pair.initiator:
            return
        tree = self.routing.tree_to(pair.destination)
        node = pair.source
        while node != pair.initiator:
            nxt = tree.next_hop(node)
            assert nxt is not None  # the classification walk got through
            yield Link.of(node, nxt)
            node = nxt

    def _add_prefix_load(self, loads: LinkLoadMap, pair: DisruptedPair) -> None:
        """Load the surviving default-path prefix source -> initiator."""
        for link in self._prefix_links(pair):
            loads.add_link(link, pair.demand)
