"""Flow-level workload aggregation.

The north-star workload is "heavy traffic from millions of users", but a
packet-level simulation of millions of flows is pointless work: every
flow of one (source, destination) pair takes the same recovery path and
meets the same fate.  :func:`aggregate_flows` therefore apportions a
synthetic flow population over the demand matrix *once* — a largest-
remainder allocation proportional to demand — and the batched simulator
then pushes **one** probe per OD pair through the recovery pipeline and
multiplies the outcome by the pair's flow count and demand.

The allocation is exact (flow counts sum to ``n_flows``), deterministic
(sorted-pair iteration, fractional-part tie-break on pair order — no RNG
and no ``hash()`` anywhere), and O(pairs log pairs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..errors import EvaluationError
from .matrix import TrafficMatrix

Pair = Tuple[int, int]


@dataclass(frozen=True)
class FlowBatch:
    """All flows of one OD pair, collapsed into a single simulation unit."""

    source: int
    destination: int
    #: Number of user flows aggregated into this batch.
    flows: int
    #: Demand rate of the pair (the weight of every traffic metric).
    demand: float

    @property
    def pair(self) -> Pair:
        """The ordered (source, destination) pair."""
        return (self.source, self.destination)


class FlowSet:
    """A flow population apportioned over OD pairs."""

    __slots__ = ("matrix", "n_flows", "_batches", "_by_pair")

    def __init__(self, matrix: TrafficMatrix, batches: List[FlowBatch]) -> None:
        self.matrix = matrix
        self.n_flows = sum(b.flows for b in batches)
        self._batches = batches
        self._by_pair: Dict[Pair, FlowBatch] = {b.pair: b for b in batches}

    def batches(self) -> Iterator[FlowBatch]:
        """Batches in sorted (source, destination) order."""
        return iter(self._batches)

    def batch(self, source: int, destination: int) -> FlowBatch:
        """The batch of one pair (zero-flow batch when the pair is absent)."""
        batch = self._by_pair.get((source, destination))
        if batch is None:
            return FlowBatch(source, destination, 0, 0.0)
        return batch

    def flows_of(self, source: int, destination: int) -> int:
        """Flow count of one pair."""
        return self.batch(source, destination).flows

    @property
    def pair_count(self) -> int:
        """Number of OD pairs carrying at least one flow or demand."""
        return len(self._batches)

    def __len__(self) -> int:
        return len(self._batches)

    def __repr__(self) -> str:
        return f"FlowSet(pairs={len(self._batches)}, flows={self.n_flows})"


def aggregate_flows(matrix: TrafficMatrix, n_flows: int) -> FlowSet:
    """Apportion ``n_flows`` over the matrix pairs, proportional to demand.

    Largest-remainder (Hamilton) allocation: every pair gets the floor of
    its exact quota, and the leftover flows go to the pairs with the
    largest fractional parts, ties broken by sorted pair order.  The
    result is deterministic and sums to exactly ``n_flows``.
    """
    if n_flows < 0:
        raise EvaluationError(f"n_flows must be >= 0, got {n_flows}")
    total = matrix.total_demand
    if total <= 0.0:
        raise EvaluationError(
            f"cannot apportion flows over empty matrix {matrix.name!r}"
        )
    quotas: List[Tuple[Pair, int, float, float]] = []
    allocated = 0
    for pair, demand in matrix.items():
        exact = n_flows * (demand / total)
        base = math.floor(exact)
        quotas.append((pair, base, exact - base, demand))
        allocated += base
    leftover = n_flows - allocated
    # Rank by fractional part (descending), then pair order for stability.
    order = sorted(range(len(quotas)), key=lambda i: (-quotas[i][2], quotas[i][0]))
    bump = set(order[:leftover])
    batches = [
        FlowBatch(pair[0], pair[1], base + (1 if i in bump else 0), demand)
        for i, (pair, base, _frac, demand) in enumerate(quotas)
    ]
    return FlowSet(matrix, batches)
